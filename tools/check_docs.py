#!/usr/bin/env python
"""CI documentation checks (stdlib only): links + service docstrings.

Two gates, both designed to fail loudly with a file/symbol list:

1. **Intra-repo markdown links** — every relative link target in
   ``README.md`` and ``docs/*.md`` (plus the other root-level ``*.md``
   files) must exist on disk. External (``http``/``https``/``mailto``)
   links and pure anchors are skipped; fenced code blocks are ignored
   so protocol examples cannot trip the scanner.
2. **Public docstrings** — every class and function exported by
   ``repro.service`` (its ``__all__``) must carry a docstring, and so
   must each of their public methods and properties defined in this
   package. This is the teeth behind docs/API.md: a symbol without a
   docstring would generate an empty reference entry.

Run from the repository root::

    python tools/check_docs.py

Exit status 0 when clean, 1 with a findings list otherwise.
"""

from __future__ import annotations

import inspect
import os
import re
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Markdown link: ``[text](target)``; images share the syntax via ``!``.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Link schemes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files() -> list[str]:
    """Root-level ``*.md`` plus everything under ``docs/``."""
    files = [
        os.path.join(REPO_ROOT, name)
        for name in sorted(os.listdir(REPO_ROOT))
        if name.endswith(".md")
    ]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def check_links() -> list[str]:
    """Broken relative link targets, as ``file: target`` findings."""
    findings: list[str] = []
    for path in iter_markdown_files():
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        in_fence = False
        for lineno, line in enumerate(lines, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                target_path = target.split("#", 1)[0]
                if not target_path:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target_path)
                )
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, REPO_ROOT)
                    findings.append(f"{rel}:{lineno}: broken link -> {target}")
    return findings


def _needs_doc(obj: object) -> bool:
    return inspect.isclass(obj) or inspect.isfunction(obj)


def _missing_member_docs(cls: type) -> list[str]:
    """Public methods/properties of ``cls`` (defined in repro) lacking docs."""
    missing: list[str] = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            target = member.fget
        elif inspect.isfunction(member):
            target = member
        else:
            continue
        if target is None or getattr(target, "__module__", "").split(".")[0] != "repro":
            continue
        if not inspect.getdoc(target):
            missing.append(f"repro.service.{cls.__name__}.{name}")
    return missing


def check_docstrings() -> list[str]:
    """Exported repro.service symbols (and their members) without docs."""
    import repro.service as service

    findings: list[str] = []
    for name in service.__all__:
        obj = getattr(service, name, None)
        if obj is None:
            findings.append(f"repro.service.{name}: exported but missing")
            continue
        if not _needs_doc(obj):
            continue  # data exports (tables, type aliases) carry no __doc__
        if not inspect.getdoc(obj):
            findings.append(f"repro.service.{name}: missing docstring")
        if inspect.isclass(obj):
            findings.extend(
                f"{member}: missing docstring"
                for member in _missing_member_docs(obj)
            )
    return findings


def main() -> int:
    findings = check_links() + check_docstrings()
    if findings:
        print(f"check_docs: {len(findings)} finding(s)")
        for finding in findings:
            print(f"  {finding}")
        return 1
    n_files = len(iter_markdown_files())
    print(f"check_docs: OK ({n_files} markdown files, repro.service docstrings)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
