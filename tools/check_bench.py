#!/usr/bin/env python3
"""Benchmark regression gate: BENCH_*.json vs the committed baselines.

The benchmark scripts measure *ratios* (numpy-vs-python speedup, batched
HK vs sequential, binary codec vs JSON) with both arms interleaved on
the same machine, so the ratios — unlike absolute seconds — are
comparable across machines. This tool compares a freshly produced
``BENCH_core.json`` / ``BENCH_codec.json`` against the committed
snapshots in ``benchmarks/baselines/`` and fails when any gated ratio
regressed by more than ``--tolerance`` (default 25%).

It also enforces the structural invariants that must never regress at
all: the mixed-dialect ring drill in ``BENCH_codec.json`` must report
zero errors.

Refreshing a baseline is deliberate and explicit: run the benchmark
with the same flags CI uses and copy the artifact over the file in
``benchmarks/baselines/``, in its own commit, with the reason in the
message.

Usage::

    python tools/check_bench.py BENCH_core.json BENCH_codec.json
    python tools/check_bench.py --tolerance 0.5 BENCH_core.json

Exit status 0 when every metric holds, 1 on any regression, missing
metric, or violated invariant.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _core_metrics(doc: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for run in doc.get("runs", []):
        out[f"cold_route/{run['router']}/{run['size']}"] = run["speedup"]
    for run in doc.get("hk_runs", []):
        out[f"hk_batch/{run['workload']}/{run['size']}"] = run["speedup"]
    return out


def _core_invariants(doc: dict) -> list[str]:
    if not doc.get("runs") and not doc.get("skipped"):
        return ["no cold-route runs recorded"]
    return []


def _codec_metrics(doc: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    if "disk" in doc:
        out["disk_vs_json"] = doc["disk"]["speedup"]
    if "remote" in doc:
        out["remote_vs_json"] = doc["remote"]["speedup"]
    return out


def _codec_invariants(doc: dict) -> list[str]:
    mixed = doc.get("mixed")
    if mixed is None:
        return ["mixed-dialect ring drill missing from the artifact"]
    if mixed.get("total_errors") != 0:
        return [f"mixed-dialect ring drill errors: {mixed.get('total_errors')}"]
    return []


#: Artifact basename -> (ratio extractor, invariant checker).
EXTRACTORS = {
    "BENCH_core.json": (_core_metrics, _core_invariants),
    "BENCH_codec.json": (_codec_metrics, _codec_invariants),
}


def check_artifact(
    path: str, baseline_dir: str, tolerance: float
) -> list[str]:
    """All failures for one artifact (empty list = pass)."""
    name = os.path.basename(path)
    if name not in EXTRACTORS:
        return [f"{name}: no baseline schema registered for this artifact"]
    extract, invariants = EXTRACTORS[name]

    with open(path, encoding="utf-8") as fh:
        current_doc = json.load(fh)
    baseline_path = os.path.join(baseline_dir, name)
    if not os.path.exists(baseline_path):
        return [f"{name}: no committed baseline at {baseline_path}"]
    with open(baseline_path, encoding="utf-8") as fh:
        baseline_doc = json.load(fh)

    failures = [f"{name}: {msg}" for msg in invariants(current_doc)]
    current = extract(current_doc)
    baseline = extract(baseline_doc)
    for key, base_value in sorted(baseline.items()):
        floor = base_value * (1.0 - tolerance)
        got = current.get(key)
        if got is None:
            failures.append(
                f"{name}: metric {key} missing (baseline {base_value:.2f}x)"
            )
            continue
        status = "ok" if got >= floor else "REGRESSED"
        print(
            f"  {name} {key:28s} {got:6.2f}x "
            f"(baseline {base_value:.2f}x, floor {floor:.2f}x) {status}"
        )
        if got < floor:
            failures.append(
                f"{name}: {key} regressed to {got:.2f}x "
                f"(baseline {base_value:.2f}x, tolerance {tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifacts", nargs="+",
        help="benchmark JSON artifacts (basename selects the schema)",
    )
    parser.add_argument(
        "--baseline-dir", default="benchmarks/baselines",
        help="directory holding the committed baseline artifacts",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression of each gated ratio "
        "(default 0.25 = fail when a ratio drops more than 25%%)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    for path in args.artifacts:
        failures += check_artifact(path, args.baseline_dir, args.tolerance)
    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
