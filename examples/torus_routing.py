#!/usr/bin/env python
"""Routing on "grid-like" Cartesian products (paper Section IV-C).

Run:
    python examples/torus_routing.py [side]

The 3-phase locality-aware algorithm generalizes from ``P_m x P_n``
(the grid) to any Cartesian product ``G1 x G2`` by swapping the
odd-even-transposition phases for per-factor routers. This example
routes the same permutations on:

* the grid (paths x paths),
* the cylinder (paths x cycles),
* the torus (cycles x cycles),

showing how wrap-around edges shrink schedules, and demonstrates a
product with a complete-graph factor (a "path of fully-connected
modules", depth-2 routing inside each module).
"""

from __future__ import annotations

import sys

from repro import GridGraph, Permutation, random_permutation
from repro.graphs import CartesianProduct, complete_graph, cylinder_graph, path_graph, torus_graph
from repro.routing import CartesianRouter


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    grid = GridGraph(side, side)
    router = CartesianRouter()

    print(f"Random permutations on {side}x{side} topologies "
          "(mean depth over 3 seeds):")
    for label, graph in (
        ("grid", grid),
        ("cylinder", cylinder_graph(side, side)),
        ("torus", torus_graph(side, side)),
    ):
        depths = []
        for seed in range(3):
            perm = random_permutation(grid, seed=seed)
            sched = router.route(graph, perm)
            sched.verify(graph, perm)
            depths.append(sched.depth)
        print(f"  {label:9s} depth = {sum(depths) / len(depths):5.1f}")

    # Seam swaps: free on the torus, expensive on the grid.
    perm = Permutation.from_cycles(
        grid.n_vertices,
        [(grid.index(i, 0), grid.index(i, side - 1)) for i in range(side)],
    )
    d_grid = router.route(grid, perm).depth
    d_torus = router.route(torus_graph(side, side), perm).depth
    print(f"\nSwapping the first/last column pairwise: grid depth {d_grid}, "
          f"torus depth {d_torus} (wrap-around edges)")

    # Modular architecture: path of fully connected 4-qubit modules.
    modules = CartesianProduct(complete_graph(4), path_graph(side))
    perm = Permutation.random(modules.n_vertices, seed=7)
    sched = router.route(modules, perm)
    sched.verify(modules, perm)
    print(f"\nK4 x P{side} modular architecture, random permutation: "
          f"depth {sched.depth} (complete-graph phases route in <= 2 rounds)")


if __name__ == "__main__":
    main()
