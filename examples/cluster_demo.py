#!/usr/bin/env python
"""Cluster cache demo: two shards, one logical cache, a live join.

Run:
    python examples/cluster_demo.py

Builds a two-node consistent-hash ring **in process** (no sockets, no
subprocesses — each "node" is a :class:`~repro.service.RoutingService`
whose cache is a :class:`~repro.service.ClusterScheduleCache` wired to
the other node's local tier through
:class:`~repro.service.InProcessShardClient`), then shows the payoff:

1. node A computes a workload once (and replicates each schedule to
   the shard that owns it on the ring);
2. node B serves the *same* workload entirely from cache — partly from
   its own tier, partly as **remote hits** fetched from A — without
   computing anything;
3. node C **joins the ring at runtime** (one epoch-guarded
   :class:`~repro.service.ClusterTopology` mutation, no restarts) and
   is warmed by key-space handoff: the old primary owners stream the
   entries C now owns into its tier before it serves anything.

The real multi-host version is the same object graph with
:class:`~repro.service.RemoteShardClient` instead of the in-process
client: start daemons with ``repro serve --socket ... --peer ...`` and
scale them with ``repro topology join|leave`` (see docs/OPERATIONS.md,
and benchmarks/bench_cluster.py for a measured ring with the live join
drill).
"""

from __future__ import annotations

from repro import GridGraph, random_permutation
from repro.service import (
    ClusterScheduleCache,
    InProcessShardClient,
    RouteRequest,
    RoutingService,
)


def join_ring(svc: RoutingService, node_id: str, tiers: dict) -> None:
    """Swap the service's plain cache for a cluster cache on the ring.

    This is exactly what ``repro serve --peer`` / ``repro batch
    --cluster`` do, with in-process peers instead of remote daemons:
    the ``tiers`` registry plays the role of "dialable addresses", so
    members that join the topology later are wired up on demand.
    """
    cluster = ClusterScheduleCache(
        local=svc.cache,
        peers={nid: InProcessShardClient(t) for nid, t in tiers.items()
               if nid != node_id},
        node_id=node_id,
        replication=1,  # each key lives on exactly one shard
        client_factory=lambda nid: InProcessShardClient(tiers[nid]),
    )
    svc.cache = cluster
    svc.executor.cache = cluster
    svc.cluster_topology = cluster.topology


def main() -> None:
    node_a = RoutingService(cache_size=256, max_workers=1)
    node_b = RoutingService(cache_size=256, max_workers=1)
    tier_a, tier_b = node_a.cache, node_b.cache  # the local tiers
    tiers = {"node-A": tier_a, "node-B": tier_b}
    join_ring(node_a, "node-A", tiers)
    join_ring(node_b, "node-B", tiers)

    grid = GridGraph(8, 8)
    requests = [
        RouteRequest(grid, random_permutation(grid, seed=s)) for s in range(12)
    ]

    print("node A computes the workload once:")
    results_a = node_a.submit_batch(requests)
    print(f"  sources: {sorted({r.source for r in results_a})}")
    ring = node_a.cache.ring
    owners = [ring.owner(r.key.digest) for r in results_a]
    print(f"  ring ownership: {owners.count('node-A')} keys on node-A, "
          f"{owners.count('node-B')} on node-B")
    print(f"  local tiers: {len(tier_a)} entries on A "
          f"(it computed everything), {len(tier_b)} replicated to B")

    print("\nnode B serves the same workload from the cluster cache:")
    results_b = node_b.submit_batch(requests)
    cluster_b = node_b.cache.cluster_stats
    n_cache = sum(1 for r in results_b if r.source == "cache")
    print(f"  {n_cache}/{len(results_b)} served from cache, "
          f"{cluster_b.remote_hits} of them cross-shard remote hits "
          f"(zero recomputed)")

    assert all(r.source == "cache" for r in results_b), "expected a warm serve"
    assert cluster_b.remote_hits > 0, "expected at least one cross-shard hit"

    print("\nnode C joins the ring live (epoch bump + key-space handoff):")
    tier_c = RoutingService(cache_size=256, max_workers=1)
    tiers["node-C"] = tier_c.cache  # now "dialable" by the factory
    # Mutate each member's topology — what `repro topology join` does
    # over the wire, every member converging on the same bumped epoch.
    for node in (node_a, node_b):
        node.cluster_topology.join("node-C")
    assert node_a.cache.wait_for_handoff(timeout=30.0)
    assert node_b.cache.wait_for_handoff(timeout=30.0)
    moved = [
        r.key.digest
        for r in results_a
        if node_a.cache.ring.owner(r.key.digest) == "node-C"
    ]
    warm = sum(1 for digest in moved if digest in tier_c.cache)
    sent = (
        node_a.cache.cluster_stats.handoff_keys_sent
        + node_b.cache.cluster_stats.handoff_keys_sent
    )
    print(f"  epoch {node_a.cache.epoch} on every member, "
          f"{len(moved)} keys re-homed to node-C, "
          f"{warm} already in its tier via handoff ({sent} streamed)")
    assert node_a.cache.epoch == node_b.cache.epoch == 2
    assert warm == len(moved), "handoff should warm every re-homed key"

    print("\ncluster telemetry (node B):")
    for key, value in node_b.cache.as_dict()["cluster"].items():
        if key != "nodes":
            print(f"  {key:18s} {value}")

    node_a.close()
    node_b.close()
    tier_c.close()


if __name__ == "__main__":
    main()
