#!/usr/bin/env python
"""Spatially local Hamiltonian simulation — the paper's motivating workload.

Run:
    python examples/hamiltonian_simulation.py [grid_side] [steps]

Builds a Trotterized transverse-field Ising evolution on a 2-D lattice
and transpiles it onto a grid device of the same geometry:

* with the **geometric** (identity) mapping every interaction is already
  nearest-neighbour — zero SWAPs needed;
* with a **random** initial mapping (e.g. inherited from a previous
  program segment) the circuit needs real routing, and the permutations
  involved are *local* — exactly the regime where the locality-aware
  router beats both the naive decomposition and token swapping.

For a 2x3 lattice the script also verifies the transpiled circuit's
unitary against the logical one (up to the tracked qubit relocations).
"""

from __future__ import annotations

import sys

from repro import GridGraph, lattice_trotter, transpile
from repro.routing import LocalGridRouter, NaiveGridRouter
from repro.token_swap import TokenSwapRouter
from repro.transpile import verify_transpilation


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    grid = GridGraph(side, side)
    circuit = lattice_trotter(grid, steps=steps, dt=0.1)
    print(f"TFIM Trotter circuit on the {side}x{side} lattice: "
          f"{circuit.n_qubits} qubits, depth {circuit.depth()}, "
          f"{circuit.num_two_qubit_gates()} two-qubit gates\n")

    print("Geometric (identity) mapping — interactions already local:")
    res = transpile(circuit, grid, router="local", mapping="identity")
    print(f"  {res.summary()}")
    assert res.n_swaps == 0, "geometric mapping should need no routing"

    print("\nScrambled initial mapping — routing required:")
    for label, router in (
        ("local", LocalGridRouter()),
        ("naive", NaiveGridRouter()),
        ("ats", TokenSwapRouter()),
    ):
        res = transpile(circuit, grid, router=router, mapping="random", seed=1)
        print(f"  [{label:5s}] {res.summary()}")

    # Full unitary verification on a small instance.
    small = GridGraph(2, 3)
    small_circuit = lattice_trotter(small, steps=2, dt=0.2)
    res = transpile(small_circuit, small, router="local", mapping="random", seed=3)
    verify_transpilation(res, small)
    print("\n2x3 instance: transpiled unitary verified against the logical "
          "circuit (up to wire relocation).")


if __name__ == "__main__":
    main()
