#!/usr/bin/env python
"""Regenerate the paper's Figure 4 and Figure 5 as terminal tables.

Run:
    python examples/paper_figures.py [max_side] [n_seeds]

Sweeps square grids up to ``max_side`` (default 24; the paper-scale run
in benchmarks/ goes to 32) over random and block-local permutations with
the locality-aware router, the naive ACG baseline and approximate token
swapping, then prints:

* the Figure 4 series (mean schedule depth),
* the Figure 5 series (mean router wall-clock),
* the paper's qualitative claims evaluated as PASS/FAIL.
"""

from __future__ import annotations

import sys

from repro import LocalGridRouter, NaiveGridRouter, TokenSwapRouter
from repro.bench import check_claims, run_sweep, series_table


def main() -> None:
    max_side = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    n_seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    sizes = [s for s in (8, 12, 16, 24, 32) if s <= max_side] or [max_side]

    print(f"Sweeping grids {sizes} with {n_seeds} seeds per point "
          f"(ATS on the largest grids dominates the runtime)...\n")
    sweep = run_sweep(
        grid_sizes=sizes,
        workloads=["random", "block_local"],
        routers={
            "local": LocalGridRouter(),
            "naive": NaiveGridRouter(),
            "ats": TokenSwapRouter(),
        },
        seeds=range(n_seeds),
    )

    print(series_table(
        sweep, "depth",
        title="Figure 4 — depth of computed swap networks (mean)"))
    print(series_table(
        sweep, "seconds",
        title="Figure 5 — time spent finding swap networks (mean)"))

    print("Paper claims:")
    for check in check_claims(sweep):
        print(f"  {check}")


if __name__ == "__main__":
    main()
