#!/usr/bin/env python
"""Transpile the QFT onto grid devices — the paper's worst-case workload.

Run:
    python examples/qft_transpile.py [grid_side]

The QFT couples every qubit pair, so (as the paper notes for the path:
"per layer of the logical QFT circuit we need Omega(n) SWAP gates") it
is the routing stress test. The script transpiles QFT-n^2 onto an
n x n grid with each router, reports depth/SWAP overheads and router
time, writes the physical circuit to OpenQASM, and verifies the 2x3
instance's unitary end to end.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import GridGraph, qft, transpile
from repro.circuit import dumps
from repro.routing import LocalGridRouter, NaiveGridRouter
from repro.token_swap import TokenSwapRouter
from repro.transpile import verify_transpilation


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    grid = GridGraph(side, side)
    circuit = qft(grid.n_vertices)
    print(f"QFT-{circuit.n_qubits} onto the {side}x{side} grid "
          f"(logical depth {circuit.depth()}, "
          f"{circuit.num_two_qubit_gates()} two-qubit gates)\n")

    results = {}
    for label, router in (
        ("local", LocalGridRouter()),
        ("naive", NaiveGridRouter()),
        ("ats", TokenSwapRouter()),
    ):
        res = transpile(circuit, grid, router=router, mapping="identity")
        results[label] = res
        print(f"  [{label:5s}] {res.summary()}")

    out = Path("qft_physical.qasm")
    out.write_text(dumps(results["local"].physical), encoding="utf-8")
    print(f"\nPhysical circuit (local router) written to {out}")

    small = GridGraph(2, 3)
    res = transpile(qft(6), small, router="local", mapping="center")
    verify_transpilation(res, small)
    print("QFT-6 on 2x3: transpiled unitary verified end to end.")


if __name__ == "__main__":
    main()
