#!/usr/bin/env python
"""A worked 3x3 routing instance, in the spirit of the paper's Figure 2.

Run:
    python examples/worked_example.py

Walks through the locality-aware algorithm's internals on a small
permutation: the column multigraph, the windowed perfect-matching
discovery, the Delta weights and bottleneck row assignment, the three
routing phases, and the final schedule rendered layer by layer as ASCII
frames. Finishes by comparing against the provably optimal depth from
the exhaustive router.
"""

from __future__ import annotations

import numpy as np

from repro import GridGraph, Permutation
from repro.matching import ColumnMultigraph, windowed_decomposition
from repro.matching.bottleneck import bottleneck_assignment
from repro.routing import LocalGridRouter, optimal_depth
from repro.routing.grid_local import delta_weights
from repro.routing.serialize import render_grid_schedule


def main() -> None:
    grid = GridGraph(3, 3)
    # A permutation with one local 3-cycle in the top-left corner and a
    # cross-grid transposition — locality the naive decomposition wastes.
    perm = Permutation.from_cycles(
        9,
        [
            (grid.index(0, 0), grid.index(0, 1), grid.index(1, 0)),
            (grid.index(2, 0), grid.index(2, 2)),
        ],
    )
    print("Permutation (source -> destination), grid coordinates:")
    for v in range(9):
        if perm(v) != v:
            print(f"  {grid.coord(v)} -> {grid.coord(perm(v))}")

    print("\nColumn multigraph G[0, 2] (one edge per token):")
    mg = ColumnMultigraph(grid.shape, perm)
    left, right = mg.degrees()
    print(f"  column out-degrees {left.tolist()}, in-degrees {right.tolist()} "
          "(3-regular, as Hall/König require)")

    dec = windowed_decomposition(ColumnMultigraph(grid.shape, perm))
    print("\nWindowed perfect-matching discovery:")
    for k, (tokens, width) in enumerate(zip(dec.matchings, dec.window_widths)):
        moves = ", ".join(
            f"{grid.coord(int(t))}->{grid.coord(perm(int(t)))}" for t in tokens
        )
        print(f"  M{k} (window width {width}): {moves}")

    weights = delta_weights(dec.rows_used, 3)
    assignment, bottleneck = bottleneck_assignment(weights)
    print("\nDelta(M, r) weights (rows of the matrix are matchings):")
    for k in range(3):
        marks = ["*" if assignment[k] == r else " " for r in range(3)]
        cells = "  ".join(
            f"{int(weights[k, r]):2d}{marks[r]}" for r in range(3)
        )
        print(f"  M{k}:  {cells}")
    print(f"  bottleneck value: {bottleneck:.0f} "
          "(starred entries = MCBBM row assignment)")

    router = LocalGridRouter()
    sched, info = router.route_with_info(grid, perm)
    sched.verify(grid, perm)
    print(f"\nSchedule: depth {sched.depth}, {sched.size} swaps, "
          f"orientation={info.orientation}")
    print(render_grid_schedule(grid, sched))

    # 9 vertices exceeds the exact router's conservative default cap,
    # but BFS stops at the (shallow) goal long before exhausting 9!.
    opt = optimal_depth(grid, perm, max_vertices=9)
    print(f"\nExhaustive optimum for this instance: depth {opt} "
          f"(locality-aware achieved {sched.depth})")


if __name__ == "__main__":
    main()
