#!/usr/bin/env python
"""Quickstart: route a permutation on a grid and inspect the schedule.

Run:
    python examples/quickstart.py [grid_side]

Demonstrates the three routers of the paper's evaluation on one random
permutation, verifies every schedule, and prints the depth/size/time
comparison plus a peek at the first few swap layers.
"""

from __future__ import annotations

import sys
import time

from repro import (
    GridGraph,
    LocalGridRouter,
    NaiveGridRouter,
    TokenSwapRouter,
    depth_lower_bound,
    random_permutation,
    swap_count_lower_bound,
)


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    grid = GridGraph(side, side)
    perm = random_permutation(grid, seed=42)

    print(f"Routing a random permutation on the {side}x{side} grid "
          f"({grid.n_vertices} qubits)")
    print(f"  lower bounds: depth >= {depth_lower_bound(grid, perm)}, "
          f"swaps >= {swap_count_lower_bound(grid, perm)}\n")

    routers = [
        ("locality-aware (paper)", LocalGridRouter()),
        ("naive ACG baseline", NaiveGridRouter()),
        ("approx token swapping", TokenSwapRouter()),
    ]
    best = None
    for label, router in routers:
        t0 = time.perf_counter()
        schedule = router.route(grid, perm)
        dt = time.perf_counter() - t0
        schedule.verify(grid, perm)  # raises on any invalid layer/result
        print(f"  {label:24s} depth={schedule.depth:4d}  "
              f"swaps={schedule.size:5d}  time={dt * 1e3:7.1f} ms")
        if best is None or schedule.depth < best[1].depth:
            best = (label, schedule)

    assert best is not None
    label, schedule = best
    print(f"\nShallowest schedule from: {label}")
    for t, layer in enumerate(layer for layer in schedule if layer):
        coords = ", ".join(
            f"{grid.coord(u)}-{grid.coord(v)}" for u, v in layer[:4]
        )
        more = f" ... (+{len(layer) - 4})" if len(layer) > 4 else ""
        print(f"  layer {t:2d}: {len(layer):3d} swaps  [{coords}{more}]")
        if t >= 4:
            print(f"  ... {schedule.depth - t - 1} more layers")
            break


if __name__ == "__main__":
    main()
