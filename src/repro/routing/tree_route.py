"""Routing on trees (and other irregular factors) via token swapping.

The paper's Cartesian-product extension replaces odd–even transposition
with "routing algorithms for G1 and G2". For factor graphs without a
special-purpose router (trees, stars, arbitrary connected graphs) we use
the approximate token swapping primitive followed by ASAP
parallelization — correct on any connected graph, and on trees the ATS
approximation analysis is strongest (the problem remains NP-hard even on
trees, but happy-swap chains along tree paths behave exactly as in the
Miltzow et al. analysis).

A dedicated ``TreeRouter`` name is kept (rather than aliasing ``"ats"``)
so transpilers selecting per-factor routers by structure read naturally;
it also validates that its input really is a tree, catching wiring bugs
in product-router composition early.
"""

from __future__ import annotations

from ..errors import RoutingError
from ..graphs.base import Graph
from ..perm.permutation import Permutation
from ..token_swap.ats import approximate_token_swapping
from .base import Router, register_router
from .schedule import Schedule

__all__ = ["TreeRouter"]


@register_router("tree", families=("tree",))
class TreeRouter(Router):
    """Token-swapping-based routing restricted to tree coupling graphs.

    Parameters
    ----------
    trials:
        Randomized ATS restarts (best kept).
    seed:
        Restart seed.
    validate:
        Verify the final schedule.
    """

    name = "tree"

    def __init__(
        self, trials: int = 1, seed: int | None = 0, validate: bool = False
    ) -> None:
        self.trials = trials
        self.seed = seed
        self.validate = validate

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        self._check_sizes(graph, perm)
        n = graph.n_vertices
        if graph.n_edges != n - 1 or not graph.is_connected():
            raise RoutingError(
                f"{self.name} router requires a tree, got {graph.name} "
                f"({n} vertices, {graph.n_edges} edges)"
            )
        swaps = approximate_token_swapping(
            graph, perm, trials=self.trials, seed=self.seed
        )
        sched = Schedule.from_serial_swaps(n, swaps).compact()
        if self.validate:
            sched.verify(graph, perm)
        return sched
