"""Best-of routers.

Section V of the paper: "Our locality-aware algorithm can always be made
to produce a routing scheme with a smaller or equal depth as opposed to
the naive grid routing algorithm. Otherwise, we can replace the output of
the locality aware algorithm by that of the naive algorithm. This has
virtually no computational overhead."

:class:`BestOfRouter` generalizes that observation: run any set of
routers, keep the shallowest valid schedule. The registered ``"hybrid"``
router combines the locality-aware and naive grid routers (optionally
also ATS, which is *not* free — it dominates the running time — but
provides the depth floor of all implemented methods).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import RoutingError
from ..graphs.base import Graph
from ..kernels import KernelBackend
from ..perm.permutation import Permutation
from .base import Router, register_router
from .schedule import Schedule

__all__ = ["BestOfRouter", "make_hybrid_router"]


class BestOfRouter(Router):
    """Run several routers; return the schedule with the smallest depth.

    Ties are broken by smaller size (swap count), then by the order the
    routers were supplied in.

    Parameters
    ----------
    routers:
        Non-empty sequence of routers to race.
    name:
        Registry/reporting name.
    """

    def __init__(self, routers: Sequence[Router], name: str = "best-of") -> None:
        if not routers:
            raise RoutingError("BestOfRouter needs at least one router")
        self.routers = list(routers)
        self.name = name

    def set_backend(self, spec: KernelBackend | str | None) -> None:
        """Pin the backend on this router and every raced child."""
        super().set_backend(spec)
        for router in self.routers:
            router.set_backend(spec)

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        self._check_sizes(graph, perm)
        best: Schedule | None = None
        for router in self.routers:
            sched = router.route(graph, perm)
            if best is None or (sched.depth, sched.size) < (best.depth, best.size):
                best = sched
        assert best is not None
        return best


@register_router("hybrid", families=("grid",), kernel_backends=True)
def make_hybrid_router(include_ats: bool = False, validate: bool = False) -> BestOfRouter:
    """The paper's free fallback: best of locality-aware and naive grid
    routing (optionally also ATS — no longer free, but the depth floor)."""
    from ..token_swap.parallel import TokenSwapRouter
    from .grid_local import LocalGridRouter
    from .grid_naive import NaiveGridRouter

    routers: list[Router] = [
        LocalGridRouter(validate=validate),
        NaiveGridRouter(transpose_strategy=True, validate=validate),
    ]
    if include_ats:
        routers.append(TokenSwapRouter(validate=validate))
    return BestOfRouter(routers, name="hybrid")
