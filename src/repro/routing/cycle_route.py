"""Routing on cycles (factor graphs for "grid-like" products, e.g. tori).

The paper's Cartesian-product extension needs a routing primitive per
factor graph. For cycles we reduce to path routing: ignore ("cut") one
cycle edge and run odd–even transposition on the remaining path. Any cut
yields a correct schedule of depth at most ``L``; cuts differ in quality,
so the router evaluates several candidate cuts (all of them by default up
to a size threshold) and keeps the shallowest schedule. The extra cost is
a multiplicative number of OET dry-runs, each ``O(L^2)`` on tiny factor
graphs — negligible next to the product routing itself.
"""

from __future__ import annotations

import numpy as np

from ..errors import RoutingError
from ..graphs.base import Graph
from ..perm.permutation import Permutation
from .base import Router, register_router
from .path_oet import oet_rounds
from .schedule import Schedule

__all__ = ["CycleRouter", "cycle_order"]


def cycle_order(graph: Graph) -> list[int] | None:
    """The vertices of a cycle graph in traversal order, or ``None``.

    Starts at vertex 0 and walks to its smaller-labelled neighbour first,
    giving a deterministic orientation.
    """
    n = graph.n_vertices
    if n < 3 or graph.n_edges != n:
        return None
    if any(graph.degree(v) != 2 for v in range(n)):
        return None
    order = [0]
    prev, cur = -1, 0
    for _ in range(n - 1):
        a, b = graph.neighbors(cur)
        nxt = b if a == prev else a
        order.append(nxt)
        prev, cur = cur, nxt
    # Closed walk check: last vertex must link back to the start.
    if not graph.has_edge(order[-1], order[0]) or len(set(order)) != n:
        return None
    return order


@register_router("cycle", families=("cycle",))
class CycleRouter(Router):
    """Route permutations on cycle graphs via best-cut path reduction.

    Parameters
    ----------
    max_cuts:
        Number of candidate cut edges to evaluate (evenly spaced around
        the cycle). ``None`` evaluates all ``L`` cuts for ``L <= 64`` and
        16 evenly spaced cuts beyond.
    optimize_parity:
        Try both OET starting parities per cut.
    validate:
        Verify the final schedule.
    """

    name = "cycle"

    def __init__(
        self,
        max_cuts: int | None = None,
        optimize_parity: bool = True,
        validate: bool = False,
    ) -> None:
        self.max_cuts = max_cuts
        self.optimize_parity = optimize_parity
        self.validate = validate

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        self._check_sizes(graph, perm)
        order = cycle_order(graph)
        if order is None:
            raise RoutingError(
                f"{self.name} router requires a cycle graph, got {graph.name}"
            )
        L = len(order)
        if self.max_cuts is None:
            n_cuts = L if L <= 64 else 16
        else:
            n_cuts = max(1, min(self.max_cuts, L))
        cut_positions = np.unique(np.linspace(0, L - 1, n_cuts, dtype=int))

        pos_of = {v: p for p, v in enumerate(order)}
        base_dest = [pos_of[perm(v)] for v in order]

        best_rounds: list[list[int]] | None = None
        best_cut = 0
        for cut in cut_positions:
            # Path order after cutting the edge (order[cut], order[cut+1]):
            # positions shift so the path starts at cut+1.
            dest = [
                (base_dest[(cut + 1 + p) % L] - (cut + 1)) % L for p in range(L)
            ]
            rounds = oet_rounds(dest, optimize_parity=self.optimize_parity)
            if best_rounds is None or len(rounds) < len(best_rounds):
                best_rounds = rounds
                best_cut = int(cut)
        assert best_rounds is not None

        path_vertices = [order[(best_cut + 1 + p) % L] for p in range(L)]
        layers = [
            [(path_vertices[i], path_vertices[i + 1]) for i in rnd]
            for rnd in best_rounds
        ]
        sched = Schedule(L, layers)
        if self.validate:
            sched.verify(graph, perm)
        return sched
