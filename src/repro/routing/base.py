"""Router protocol and registry.

Every routing algorithm in this package — the paper's locality-aware grid
router, the ACG baseline, the token-swapping baseline, the Cartesian
product generalization — implements the same tiny interface: consume a
coupling graph and a permutation, produce a :class:`~repro.routing.schedule.Schedule`.
This is the "drop-in primitive" property the paper emphasizes ("our routing
algorithm can be used in any transpiler that uses the above framework").

The registry maps short names (``"local"``, ``"naive"``, ``"ats"``,
``"hybrid"``, ...) to router factories so benchmarks and the transpiler can
select routers from configuration strings; :func:`describe_routers` exposes
the structured metadata behind those names (supported graph families,
kernel-backend support).

Routers dispatch their hot primitives through a pluggable
:class:`~repro.kernels.KernelBackend` (see :mod:`repro.kernels`): pass
``backend=`` to :func:`make_router`/:func:`route`, set the
``REPRO_KERNEL_BACKEND`` environment variable, or let the ambient default
pick numpy when available.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import RoutingError
from ..graphs.base import Graph
from ..kernels import KernelBackend, get_backend
from ..perm.permutation import Permutation

# Re-exported so service-layer code can install a per-request profiler
# around any Router call without importing the top-level module itself.
# The implementation lives in ``repro.profiling`` (stdlib only) because
# ``repro.matching`` instruments its own phases and must not import the
# routing package back.
from ..profiling import StageProfiler, profile, stage
from .schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..perm.partial import PartialPermutation

__all__ = [
    "Router",
    "RouterInfo",
    "register_router",
    "make_router",
    "available_routers",
    "describe_routers",
    "route",
    "StageProfiler",
    "profile",
    "stage",
]


class Router(ABC):
    """Abstract routing algorithm: permutation in, swap schedule out."""

    #: Short human-readable identifier (used in benchmark tables).
    name: str = "router"

    #: Kernel-backend pin; ``None`` means "resolve the ambient default at
    #: call time" so an unpinned router follows ``REPRO_KERNEL_BACKEND``.
    _backend: KernelBackend | None = None

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend this router dispatches hot primitives to.

        Unpinned routers resolve the ambient default on every access
        (cheap: a dict lookup), so they track environment changes; use
        :meth:`set_backend` (or ``make_router(..., backend=...)``) to pin.
        """
        return get_backend(self._backend)

    @backend.setter
    def backend(self, spec: KernelBackend | str | None) -> None:
        self.set_backend(spec)

    def set_backend(self, spec: KernelBackend | str | None) -> None:
        """Pin the kernel backend (name or instance); ``None`` unpins.

        Raises
        ------
        KernelError
            On an unknown backend name, or ``"numpy"`` without numpy.
        """
        self._backend = None if spec is None else get_backend(spec)

    @abstractmethod
    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        """Compute a swap schedule realizing ``perm`` on ``graph``.

        Implementations must return a schedule such that
        ``schedule.verify(graph, perm)`` passes.

        Raises
        ------
        RoutingError
            If the router does not support the given graph or fails to
            produce a valid schedule.
        """

    def __call__(self, graph: Graph, perm: Permutation) -> Schedule:
        return self.route(graph, perm)

    def route_partial(
        self,
        graph: Graph,
        partial: "PartialPermutation",
        completion: str = "minimal",
        profiler: StageProfiler | None = None,
    ) -> Schedule:
        """Route a partial permutation (the paper's ``f : S -> R``).

        The transpiler setting: only some qubits have destinations; the
        rest are don't-cares. The partial map is completed to a full
        permutation (strategy per
        :func:`repro.perm.partial.complete_partial`) and routed. The
        returned schedule moves every constrained token from its source
        to its destination; don't-care tokens end wherever the
        completion put them.

        Parameters
        ----------
        profiler:
            Optional :class:`StageProfiler` installed for the duration of
            the call. Relying solely on the ambient
            :func:`~repro.profiling.profile` context manager is
            deprecated in favour of this explicit kwarg; the ambient form
            keeps working.
        """
        from ..perm.partial import complete_partial

        if profiler is not None:
            with profile(profiler):
                return self.route_partial(graph, partial, completion)
        perm = complete_partial(partial, graph, strategy=completion)
        return self.route(graph, perm)

    def _check_sizes(self, graph: Graph, perm: Permutation) -> None:
        if graph.n_vertices != perm.size:
            raise RoutingError(
                f"{self.name}: permutation size {perm.size} does not match "
                f"graph size {graph.n_vertices}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class RouterInfo:
    """Structured registry metadata for one router.

    Attributes
    ----------
    name:
        Registry name (what :func:`make_router` accepts).
    summary:
        One-line description (first docstring line of the factory).
    families:
        Graph families the router supports (``"grid"``,
        ``"cartesian_product"``, ``"tree"``, ``"cycle"``, ``"complete"``,
        ``"any_connected"``).
    kernel_backends:
        Whether the router's hot path dispatches through the pluggable
        kernel backend (i.e. ``backend=`` changes what executes, and the
        produced schedule carries backend provenance metadata).
    """

    name: str
    summary: str
    families: tuple[str, ...]
    kernel_backends: bool


@dataclass(frozen=True)
class _Registration:
    factory: Callable[..., Router]
    families: tuple[str, ...]
    kernel_backends: bool


_REGISTRY: dict[str, _Registration] = {}


def register_router(
    name: str,
    *,
    families: tuple[str, ...] = (),
    kernel_backends: bool = False,
) -> Callable[[Callable[..., Router]], Callable[..., Router]]:
    """Class/factory decorator adding a router under ``name``.

    ``families`` and ``kernel_backends`` feed :func:`describe_routers`
    (see :class:`RouterInfo`).
    """

    def deco(factory: Callable[..., Router]) -> Callable[..., Router]:
        if name in _REGISTRY:
            raise RoutingError(f"router {name!r} already registered")
        _REGISTRY[name] = _Registration(
            factory=factory,
            families=tuple(families),
            kernel_backends=kernel_backends,
        )
        return factory

    return deco


_BAD_KWARG = re.compile(r"unexpected keyword argument '([^']+)'")


def make_router(
    name: str,
    backend: KernelBackend | str | None = None,
    **kwargs,
) -> Router:
    """Instantiate a registered router by name.

    Parameters
    ----------
    name:
        Registry name (see :func:`available_routers`).
    backend:
        Optional kernel backend (name or instance) to pin the router to;
        by default the router follows the ambient default
        (``REPRO_KERNEL_BACKEND``, then numpy-if-importable).
    **kwargs:
        Forwarded to the router factory.

    Raises
    ------
    RoutingError
        On an unknown name, or when the factory rejects an argument (the
        raw ``TypeError`` is wrapped, naming the router and the bad
        argument).
    KernelError
        On an unknown backend name, or ``backend="numpy"`` without numpy.
    """
    try:
        registration = _REGISTRY[name]
    except KeyError:
        raise RoutingError(
            f"unknown router {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    try:
        router = registration.factory(**kwargs)
    except TypeError as exc:
        match = _BAD_KWARG.search(str(exc))
        detail = (
            f"unknown argument {match.group(1)!r}" if match else str(exc)
        )
        raise RoutingError(f"router {name!r}: {detail}") from exc
    if backend is not None:
        router.set_backend(backend)
    return router


def available_routers() -> list[str]:
    """Registered router names, sorted."""
    return sorted(_REGISTRY)


def describe_routers() -> list[RouterInfo]:
    """Structured metadata for every registered router, sorted by name.

    The structured companion to :func:`available_routers` — use it to
    discover which graph families a router accepts and whether it
    honours the kernel-backend selection.
    """
    out: list[RouterInfo] = []
    for name in sorted(_REGISTRY):
        registration = _REGISTRY[name]
        doc = registration.factory.__doc__ or ""
        summary = doc.strip().splitlines()[0].strip() if doc.strip() else ""
        out.append(
            RouterInfo(
                name=name,
                summary=summary,
                families=registration.families,
                kernel_backends=registration.kernel_backends,
            )
        )
    return out


def route(
    graph: Graph,
    perm: Permutation,
    method: str = "local",
    *,
    profiler: StageProfiler | None = None,
    backend: KernelBackend | str | None = None,
    **kwargs,
) -> Schedule:
    """One-shot convenience: route ``perm`` on ``graph`` with router ``method``.

    Parameters
    ----------
    profiler:
        Optional :class:`StageProfiler` installed for the duration of the
        call. Relying solely on the ambient
        :func:`~repro.profiling.profile` context manager is deprecated in
        favour of this explicit kwarg; the ambient form keeps working.
    backend:
        Optional kernel backend (see :func:`make_router`).
    """
    router = make_router(method, backend=backend, **kwargs)
    if profiler is not None:
        with profile(profiler):
            return router.route(graph, perm)
    return router.route(graph, perm)
