"""Router protocol and registry.

Every routing algorithm in this package — the paper's locality-aware grid
router, the ACG baseline, the token-swapping baseline, the Cartesian
product generalization — implements the same tiny interface: consume a
coupling graph and a permutation, produce a :class:`~repro.routing.schedule.Schedule`.
This is the "drop-in primitive" property the paper emphasizes ("our routing
algorithm can be used in any transpiler that uses the above framework").

The registry maps short names (``"local"``, ``"naive"``, ``"ats"``,
``"hybrid"``, ...) to router factories so benchmarks and the transpiler can
select routers from configuration strings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from ..errors import RoutingError
from ..graphs.base import Graph
from ..perm.permutation import Permutation

# Re-exported so service-layer code can install a per-request profiler
# around any Router call without importing the top-level module itself.
# The implementation lives in ``repro.profiling`` (stdlib only) because
# ``repro.matching`` instruments its own phases and must not import the
# routing package back.
from ..profiling import StageProfiler, profile, stage
from .schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..perm.partial import PartialPermutation

__all__ = [
    "Router",
    "register_router",
    "make_router",
    "available_routers",
    "route",
    "StageProfiler",
    "profile",
    "stage",
]


class Router(ABC):
    """Abstract routing algorithm: permutation in, swap schedule out."""

    #: Short human-readable identifier (used in benchmark tables).
    name: str = "router"

    @abstractmethod
    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        """Compute a swap schedule realizing ``perm`` on ``graph``.

        Implementations must return a schedule such that
        ``schedule.verify(graph, perm)`` passes.

        Raises
        ------
        RoutingError
            If the router does not support the given graph or fails to
            produce a valid schedule.
        """

    def __call__(self, graph: Graph, perm: Permutation) -> Schedule:
        return self.route(graph, perm)

    def route_partial(
        self,
        graph: Graph,
        partial: "PartialPermutation",
        completion: str = "minimal",
    ) -> Schedule:
        """Route a partial permutation (the paper's ``f : S -> R``).

        The transpiler setting: only some qubits have destinations; the
        rest are don't-cares. The partial map is completed to a full
        permutation (strategy per
        :func:`repro.perm.partial.complete_partial`) and routed. The
        returned schedule moves every constrained token from its source
        to its destination; don't-care tokens end wherever the
        completion put them.
        """
        from ..perm.partial import complete_partial

        perm = complete_partial(partial, graph, strategy=completion)
        return self.route(graph, perm)

    def _check_sizes(self, graph: Graph, perm: Permutation) -> None:
        if graph.n_vertices != perm.size:
            raise RoutingError(
                f"{self.name}: permutation size {perm.size} does not match "
                f"graph size {graph.n_vertices}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, Callable[..., Router]] = {}


def register_router(name: str) -> Callable[[Callable[..., Router]], Callable[..., Router]]:
    """Class/factory decorator adding a router under ``name``."""

    def deco(factory: Callable[..., Router]) -> Callable[..., Router]:
        if name in _REGISTRY:
            raise RoutingError(f"router {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return deco


def make_router(name: str, **kwargs) -> Router:
    """Instantiate a registered router by name.

    Raises
    ------
    RoutingError
        On an unknown name.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise RoutingError(
            f"unknown router {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_routers() -> list[str]:
    """Registered router names, sorted."""
    return sorted(_REGISTRY)


def route(graph: Graph, perm: Permutation, method: str = "local", **kwargs) -> Schedule:
    """One-shot convenience: route ``perm`` on ``graph`` with router ``method``."""
    return make_router(method, **kwargs).route(graph, perm)
