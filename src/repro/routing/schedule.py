"""Swap schedules: sequences of matchings (the routing-via-matchings output).

In the routing-via-matchings model a routing schedule is an ordered list of
*layers*; each layer is a matching of the coupling graph, executed as a set
of parallel SWAP gates. The **depth** of the schedule (its number of
non-empty layers) is the quantity the paper's Figure 4 plots; the **size**
(total number of swaps) is the serial token-swapping objective.

:class:`Schedule` is the common output type of every router in this
package, so the benchmark harness and the transpiler treat the paper's
algorithm, the ACG baseline and the ATS baseline uniformly.

Key operations
--------------
* :meth:`Schedule.simulate` — the permutation a schedule actually realizes.
* :meth:`Schedule.verify` — assert validity (each layer a matching of the
  graph) *and* semantic correctness against a target permutation.
* :meth:`Schedule.compact` — ASAP re-timing: every swap moves to the
  earliest layer after the last use of either of its endpoints. This
  preserves the per-vertex order of swaps (hence the realized permutation)
  and never increases depth. It is how a serial ATS swap list becomes a
  parallel schedule, and how the three phases of grid routing are allowed
  to overlap at their boundaries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ScheduleError
from ..graphs.base import Graph, canonical_edge
from ..perm.permutation import Permutation

__all__ = ["Schedule"]


class Schedule:
    """An ordered sequence of swap layers over ``n_vertices`` vertices.

    Parameters
    ----------
    n_vertices:
        Size of the vertex set the schedule acts on.
    layers:
        Iterable of layers; each layer is an iterable of ``(u, v)`` swaps.
        Swaps are canonicalized to ``(min, max)``. Layers are validated to
        be vertex-disjoint within themselves (edge membership in a graph
        is checked separately by :meth:`check_against`/:meth:`verify`).

    Raises
    ------
    ScheduleError
        If a layer reuses a vertex or a swap is out of range / a self-loop.
    """

    __slots__ = ("_n", "_layers")

    def __init__(
        self,
        n_vertices: int,
        layers: Iterable[Iterable[tuple[int, int]]] = (),
    ) -> None:
        if n_vertices <= 0:
            raise ScheduleError(f"n_vertices must be positive, got {n_vertices}")
        self._n = int(n_vertices)
        built: list[tuple[tuple[int, int], ...]] = []
        for li, layer in enumerate(layers):
            seen: set[int] = set()
            canon: list[tuple[int, int]] = []
            for u, v in layer:
                u, v = int(u), int(v)
                if u == v:
                    raise ScheduleError(f"layer {li}: self-swap on vertex {u}")
                if not (0 <= u < self._n and 0 <= v < self._n):
                    raise ScheduleError(
                        f"layer {li}: swap ({u}, {v}) out of range"
                    )
                if u in seen or v in seen:
                    raise ScheduleError(
                        f"layer {li}: vertex reuse in swap ({u}, {v})"
                    )
                seen.add(u)
                seen.add(v)
                canon.append(canonical_edge(u, v))
            built.append(tuple(sorted(canon)))
        self._layers = tuple(built)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_vertices: int) -> "Schedule":
        """A schedule with no layers (realizes the identity)."""
        return cls(n_vertices, ())

    @classmethod
    def from_serial_swaps(
        cls, n_vertices: int, swaps: Sequence[tuple[int, int]]
    ) -> "Schedule":
        """One swap per layer, in order (use :meth:`compact` to parallelize)."""
        return cls(n_vertices, ([s] for s in swaps))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Vertex-set size."""
        return self._n

    @property
    def layers(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """The layers, each a sorted tuple of canonical swaps."""
        return self._layers

    @property
    def depth(self) -> int:
        """Number of non-empty layers (the paper's depth objective)."""
        return sum(1 for layer in self._layers if layer)

    @property
    def n_layers(self) -> int:
        """Total number of layers including empty ones."""
        return len(self._layers)

    @property
    def size(self) -> int:
        """Total number of swaps (the serial token-swapping objective)."""
        return sum(len(layer) for layer in self._layers)

    def serial_swaps(self) -> list[tuple[int, int]]:
        """All swaps flattened in layer order (within-layer order arbitrary
        but fixed; within-layer swaps commute since they are disjoint)."""
        return [s for layer in self._layers for s in layer]

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[tuple[tuple[int, int], ...]]:
        return iter(self._layers)

    def __getitem__(self, i: int) -> tuple[tuple[int, int], ...]:
        return self._layers[i]

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def simulate(self) -> Permutation:
        """The permutation realized by the schedule.

        Returns the map *start vertex of a token* → *its final vertex*.
        """
        occ = np.arange(self._n)  # occ[position] = token currently there
        for layer in self._layers:
            for u, v in layer:
                occ[u], occ[v] = occ[v], occ[u]
        realized = np.empty(self._n, dtype=np.int64)
        realized[occ] = np.arange(self._n)
        return Permutation(realized)

    def apply_to_occupancy(self, occ: np.ndarray) -> None:
        """In-place update of an occupancy array (position → token)."""
        if occ.shape != (self._n,):
            raise ScheduleError("occupancy array has wrong shape")
        for layer in self._layers:
            for u, v in layer:
                occ[u], occ[v] = occ[v], occ[u]

    def check_against(self, graph: Graph) -> None:
        """Raise unless every layer is a matching of ``graph``."""
        if graph.n_vertices != self._n:
            raise ScheduleError(
                f"schedule on {self._n} vertices vs graph on {graph.n_vertices}"
            )
        for li, layer in enumerate(self._layers):
            for u, v in layer:
                if not graph.has_edge(u, v):
                    raise ScheduleError(
                        f"layer {li}: swap ({u}, {v}) is not an edge of {graph.name}"
                    )
        # vertex-disjointness was enforced at construction

    def verify(self, graph: Graph, perm: Permutation) -> None:
        """Full validity check: matchings of ``graph`` realizing ``perm``.

        Raises
        ------
        ScheduleError
            On any structural or semantic violation.
        """
        self.check_against(graph)
        realized = self.simulate()
        if realized != perm:
            bad = int(np.flatnonzero(realized.targets != perm.targets)[0])
            raise ScheduleError(
                f"schedule realizes the wrong permutation "
                f"(first mismatch at vertex {bad}: token ends at "
                f"{realized(bad)}, expected {perm(bad)})"
            )

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def trimmed(self) -> "Schedule":
        """Copy with empty layers removed."""
        return Schedule(self._n, (l for l in self._layers if l))

    def compact(self) -> "Schedule":
        """ASAP re-timing (see module docstring). Depth never increases."""
        avail = np.zeros(self._n, dtype=np.int64)  # earliest free layer per vertex
        new_layers: list[list[tuple[int, int]]] = []
        for layer in self._layers:
            for u, v in layer:
                t = int(max(avail[u], avail[v]))
                while len(new_layers) <= t:
                    new_layers.append([])
                new_layers[t].append((u, v))
                avail[u] = avail[v] = t + 1
        return Schedule(self._n, new_layers)

    def inverse(self) -> "Schedule":
        """Layers reversed; realizes the inverse permutation."""
        return Schedule(self._n, reversed(self._layers))

    def concat(self, other: "Schedule") -> "Schedule":
        """This schedule followed by ``other``."""
        if other._n != self._n:
            raise ScheduleError("cannot concatenate schedules of different sizes")
        return Schedule(self._n, self._layers + other._layers)

    def __add__(self, other: "Schedule") -> "Schedule":
        return self.concat(other)

    def relabel(self, mapping: Sequence[int] | np.ndarray) -> "Schedule":
        """Rename vertices: swap ``(u, v)`` becomes ``(mapping[u], mapping[v])``.

        Used to pull a schedule computed on the transposed grid back to the
        original grid's vertex ids.
        """
        m = np.asarray(mapping, dtype=np.int64)
        if m.shape != (self._n,):
            raise ScheduleError("relabel mapping has wrong size")
        if len(set(m.tolist())) != self._n:
            raise ScheduleError("relabel mapping is not a bijection")
        return Schedule(
            self._n,
            ([(int(m[u]), int(m[v])) for u, v in layer] for layer in self._layers),
        )

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._n == other._n and self._layers == other._layers

    def __hash__(self) -> int:
        return hash((self._n, self._layers))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(n_vertices={self._n}, depth={self.depth}, "
            f"size={self.size})"
        )
