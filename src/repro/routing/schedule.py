"""Swap schedules: sequences of matchings (the routing-via-matchings output).

In the routing-via-matchings model a routing schedule is an ordered list of
*layers*; each layer is a matching of the coupling graph, executed as a set
of parallel SWAP gates. The **depth** of the schedule (its number of
non-empty layers) is the quantity the paper's Figure 4 plots; the **size**
(total number of swaps) is the serial token-swapping objective.

:class:`Schedule` is the common output type of every router in this
package, so the benchmark harness and the transpiler treat the paper's
algorithm, the ACG baseline and the ATS baseline uniformly.

Key operations
--------------
* :meth:`Schedule.simulate` — the permutation a schedule actually realizes.
* :meth:`Schedule.verify` — assert validity (each layer a matching of the
  graph) *and* semantic correctness against a target permutation.
* :meth:`Schedule.compact` — ASAP re-timing: every swap moves to the
  earliest layer after the last use of either of its endpoints. This
  preserves the per-vertex order of swaps (hence the realized permutation)
  and never increases depth. It is how a serial ATS swap list becomes a
  parallel schedule, and how the three phases of grid routing are allowed
  to overlap at their boundaries.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ScheduleError
from ..graphs.base import Graph, canonical_edge
from ..perm.permutation import Permutation

__all__ = ["Schedule"]


class FlatLayers:
    """Canonical layers as flat arrays (internal, kernel-backend payload).

    ``lo``/``hi`` hold the canonical ``(min, max)`` endpoints of every swap,
    concatenated across layers and sorted by ``(layer, lo, hi)``;
    ``counts[t]`` is the number of swaps in layer ``t``. Producers (the
    numpy kernel backend, :meth:`Schedule.relabel`) guarantee the same
    invariants the public :class:`Schedule` constructor enforces; the
    nested-tuple view is materialized lazily on first structural access,
    so schedules that are only compared by depth/size (e.g. the losing
    orientation candidate in a best-of race) never pay for tuple-building.
    """

    __slots__ = ("lo", "hi", "counts")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, counts: np.ndarray) -> None:
        self.lo = lo
        self.hi = hi
        self.counts = counts


class Schedule:
    """An ordered sequence of swap layers over ``n_vertices`` vertices.

    Parameters
    ----------
    n_vertices:
        Size of the vertex set the schedule acts on.
    layers:
        Iterable of layers; each layer is an iterable of ``(u, v)`` swaps.
        Swaps are canonicalized to ``(min, max)``. Layers are validated to
        be vertex-disjoint within themselves (edge membership in a graph
        is checked separately by :meth:`check_against`/:meth:`verify`).
    metadata:
        Optional provenance annotations (e.g. which kernel backend
        computed the schedule). Excluded from equality and hashing;
        preserved by the transformation methods.

    Raises
    ------
    ScheduleError
        If a layer reuses a vertex or a swap is out of range / a self-loop.
    """

    __slots__ = ("_n", "_layers", "_flat", "_meta")

    def __init__(
        self,
        n_vertices: int,
        layers: Iterable[Iterable[tuple[int, int]]] = (),
        metadata: Mapping[str, Any] | None = None,
    ) -> None:
        if n_vertices <= 0:
            raise ScheduleError(f"n_vertices must be positive, got {n_vertices}")
        self._n = int(n_vertices)
        built: list[tuple[tuple[int, int], ...]] = []
        for li, layer in enumerate(layers):
            seen: set[int] = set()
            canon: list[tuple[int, int]] = []
            for u, v in layer:
                u, v = int(u), int(v)
                if u == v:
                    raise ScheduleError(f"layer {li}: self-swap on vertex {u}")
                if not (0 <= u < self._n and 0 <= v < self._n):
                    raise ScheduleError(
                        f"layer {li}: swap ({u}, {v}) out of range"
                    )
                if u in seen or v in seen:
                    raise ScheduleError(
                        f"layer {li}: vertex reuse in swap ({u}, {v})"
                    )
                seen.add(u)
                seen.add(v)
                canon.append(canonical_edge(u, v))
            built.append(tuple(sorted(canon)))
        self._layers: tuple[tuple[tuple[int, int], ...], ...] | None = tuple(built)
        self._flat: FlatLayers | None = None
        self._meta: dict[str, Any] = dict(metadata) if metadata else {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_vertices: int) -> "Schedule":
        """A schedule with no layers (realizes the identity)."""
        return cls(n_vertices, ())

    @classmethod
    def _from_canonical(
        cls,
        n_vertices: int,
        layers: tuple[tuple[tuple[int, int], ...], ...] | FlatLayers,
        metadata: Mapping[str, Any] | None = None,
    ) -> "Schedule":
        """Trusted constructor: ``layers`` must already be canonical.

        Callers (kernel backends, :meth:`relabel`) guarantee the payload —
        nested tuples or a :class:`FlatLayers` array bundle — is validated,
        ``(min, max)``-canonical and sorted by ``(layer, lo, hi)``: the
        invariants the public constructor would otherwise re-establish.
        """
        sched = object.__new__(cls)
        sched._n = int(n_vertices)
        if isinstance(layers, FlatLayers):
            sched._layers = None
            sched._flat = layers
        else:
            sched._layers = layers
            sched._flat = None
        sched._meta = dict(metadata) if metadata else {}
        return sched

    @classmethod
    def from_serial_swaps(
        cls, n_vertices: int, swaps: Sequence[tuple[int, int]]
    ) -> "Schedule":
        """One swap per layer, in order (use :meth:`compact` to parallelize)."""
        return cls(n_vertices, ([s] for s in swaps))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Vertex-set size."""
        return self._n

    def _materialize(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Nested-tuple layers, built (once) from the flat arrays on demand."""
        layers = self._layers
        if layers is None:
            fl = self._flat
            assert fl is not None
            lo = fl.lo.tolist()
            hi = fl.hi.tolist()
            out: list[tuple[tuple[int, int], ...]] = []
            pos = 0
            for c in fl.counts.tolist():
                out.append(tuple(zip(lo[pos : pos + c], hi[pos : pos + c])))
                pos += c
            layers = self._layers = tuple(out)
        return layers

    @property
    def layers(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """The layers, each a sorted tuple of canonical swaps."""
        return self._materialize()

    @property
    def metadata(self) -> dict[str, Any]:
        """Provenance annotations (e.g. ``{"backend": "numpy"}``).

        Routers stamp the kernel backend that computed the schedule here
        so operators can see which implementation served a request.
        Excluded from :meth:`__eq__`/:meth:`__hash__` — two schedules
        with identical layers are equal regardless of provenance.
        """
        return self._meta

    def with_metadata(self, **entries: Any) -> "Schedule":
        """Copy (sharing layers) with ``entries`` merged into the metadata."""
        merged = dict(self._meta)
        merged.update(entries)
        sched = object.__new__(Schedule)
        sched._n = self._n
        sched._layers = self._layers
        sched._flat = self._flat
        sched._meta = merged
        return sched

    @property
    def depth(self) -> int:
        """Number of non-empty layers (the paper's depth objective)."""
        if self._layers is None:
            assert self._flat is not None
            return int(np.count_nonzero(self._flat.counts))
        return sum(1 for layer in self._layers if layer)

    @property
    def n_layers(self) -> int:
        """Total number of layers including empty ones."""
        if self._layers is None:
            assert self._flat is not None
            return len(self._flat.counts)
        return len(self._layers)

    @property
    def size(self) -> int:
        """Total number of swaps (the serial token-swapping objective)."""
        if self._layers is None:
            assert self._flat is not None
            return int(self._flat.lo.size)
        return sum(len(layer) for layer in self._layers)

    def serial_swaps(self) -> list[tuple[int, int]]:
        """All swaps flattened in layer order (within-layer order arbitrary
        but fixed; within-layer swaps commute since they are disjoint)."""
        if self._layers is None:
            assert self._flat is not None
            return list(zip(self._flat.lo.tolist(), self._flat.hi.tolist()))
        return [s for layer in self._layers for s in layer]

    def __len__(self) -> int:
        return self.n_layers

    def __iter__(self) -> Iterator[tuple[tuple[int, int], ...]]:
        return iter(self._materialize())

    def __getitem__(self, i: int) -> tuple[tuple[int, int], ...]:
        return self._materialize()[i]

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def _sweep_occupancy(self, occ: np.ndarray) -> None:
        """Apply every layer to ``occ`` in place (layers are matchings, so
        each layer's swaps are disjoint and apply in one vectorized step
        on the flat representation)."""
        if self._layers is None:
            assert self._flat is not None
            fl = self._flat
            pos = 0
            for c in fl.counts.tolist():
                if c:
                    los = fl.lo[pos : pos + c]
                    his = fl.hi[pos : pos + c]
                    tmp = occ[los].copy()
                    occ[los] = occ[his]
                    occ[his] = tmp
                pos += c
            return
        for layer in self._layers:
            for u, v in layer:
                occ[u], occ[v] = occ[v], occ[u]

    def simulate(self) -> Permutation:
        """The permutation realized by the schedule.

        Returns the map *start vertex of a token* → *its final vertex*.
        """
        occ = np.arange(self._n)  # occ[position] = token currently there
        self._sweep_occupancy(occ)
        realized = np.empty(self._n, dtype=np.int64)
        realized[occ] = np.arange(self._n)
        return Permutation(realized)

    def apply_to_occupancy(self, occ: np.ndarray) -> None:
        """In-place update of an occupancy array (position → token)."""
        if occ.shape != (self._n,):
            raise ScheduleError("occupancy array has wrong shape")
        self._sweep_occupancy(occ)

    def check_against(self, graph: Graph) -> None:
        """Raise unless every layer is a matching of ``graph``."""
        if graph.n_vertices != self._n:
            raise ScheduleError(
                f"schedule on {self._n} vertices vs graph on {graph.n_vertices}"
            )
        for li, layer in enumerate(self._materialize()):
            for u, v in layer:
                if not graph.has_edge(u, v):
                    raise ScheduleError(
                        f"layer {li}: swap ({u}, {v}) is not an edge of {graph.name}"
                    )
        # vertex-disjointness was enforced at construction

    def verify(self, graph: Graph, perm: Permutation) -> None:
        """Full validity check: matchings of ``graph`` realizing ``perm``.

        Raises
        ------
        ScheduleError
            On any structural or semantic violation.
        """
        self.check_against(graph)
        realized = self.simulate()
        if realized != perm:
            bad = int(np.flatnonzero(realized.targets != perm.targets)[0])
            raise ScheduleError(
                f"schedule realizes the wrong permutation "
                f"(first mismatch at vertex {bad}: token ends at "
                f"{realized(bad)}, expected {perm(bad)})"
            )

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def trimmed(self) -> "Schedule":
        """Copy with empty layers removed."""
        if self._layers is None:
            assert self._flat is not None
            fl = self._flat
            kept = fl.counts[fl.counts > 0]
            return Schedule._from_canonical(
                self._n, FlatLayers(fl.lo, fl.hi, kept), self._meta
            )
        return Schedule._from_canonical(
            self._n, tuple(l for l in self._layers if l), self._meta
        )

    def compact(self) -> "Schedule":
        """ASAP re-timing (see module docstring). Depth never increases."""
        if self._layers is None:
            assert self._flat is not None
            fl = self._flat
            if fl.lo.size == 0:
                return Schedule(self._n, (), metadata=self._meta)
            avail = np.zeros(self._n, dtype=np.int64)
            t = np.empty(fl.lo.size, dtype=np.int64)
            pos = 0
            for c in fl.counts.tolist():
                if c:
                    sl = slice(pos, pos + c)
                    los, his = fl.lo[sl], fl.hi[sl]
                    tt = np.maximum(avail[los], avail[his])
                    t[sl] = tt
                    avail[los] = tt + 1
                    avail[his] = tt + 1
                pos += c
            order = np.lexsort((fl.hi, fl.lo, t))
            counts = np.bincount(t, minlength=int(t.max()) + 1)
            return Schedule._from_canonical(
                self._n,
                FlatLayers(fl.lo[order], fl.hi[order], counts),
                self._meta,
            )
        avail = np.zeros(self._n, dtype=np.int64)  # earliest free layer per vertex
        new_layers: list[list[tuple[int, int]]] = []
        for layer in self._layers:
            for u, v in layer:
                t2 = int(max(avail[u], avail[v]))
                while len(new_layers) <= t2:
                    new_layers.append([])
                new_layers[t2].append((u, v))
                avail[u] = avail[v] = t2 + 1
        return Schedule(self._n, new_layers, metadata=self._meta)

    def inverse(self) -> "Schedule":
        """Layers reversed; realizes the inverse permutation."""
        return Schedule(self._n, reversed(self._materialize()), metadata=self._meta)

    def concat(self, other: "Schedule") -> "Schedule":
        """This schedule followed by ``other`` (metadata is not carried:
        the result has no single provenance)."""
        if other._n != self._n:
            raise ScheduleError("cannot concatenate schedules of different sizes")
        return Schedule._from_canonical(
            self._n, self._materialize() + other._materialize()
        )

    def __add__(self, other: "Schedule") -> "Schedule":
        return self.concat(other)

    def relabel(self, mapping: Sequence[int] | np.ndarray) -> "Schedule":
        """Rename vertices: swap ``(u, v)`` becomes ``(mapping[u], mapping[v])``.

        Used to pull a schedule computed on the transposed grid back to the
        original grid's vertex ids.
        """
        m = np.asarray(mapping, dtype=np.int64)
        if m.shape != (self._n,):
            raise ScheduleError("relabel mapping has wrong size")
        if np.unique(m).size != self._n:
            raise ScheduleError("relabel mapping is not a bijection")
        if self._layers is None:
            assert self._flat is not None
            fl = self._flat
            counts = fl.counts
            sizes = counts.tolist()
            a = m[fl.lo]
            b = m[fl.hi]
        else:
            sizes = [len(layer) for layer in self._layers]
            total = sum(sizes)
            if total == 0:
                return Schedule._from_canonical(self._n, self._layers, self._meta)
            flat = np.fromiter(
                (x for layer in self._layers for swap in layer for x in swap),
                dtype=np.int64,
                count=2 * total,
            ).reshape(-1, 2)
            counts = np.asarray(sizes, dtype=np.int64)
            a = m[flat[:, 0]]
            b = m[flat[:, 1]]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        if lo.size == 0:
            return Schedule._from_canonical(
                self._n, FlatLayers(lo, hi, counts), self._meta
            )
        if int(lo.min()) < 0 or int(hi.max()) >= self._n:
            raise ScheduleError("relabel mapping leaves the vertex range")
        # A bijection preserves self-swap-freeness and per-layer vertex
        # disjointness, so only canonical form must be re-established:
        # sort within each layer by (lo, hi). Disjointness makes
        # (layer, lo) unique, so when the packed (layer, lo, hi) key
        # fits in int64 a single non-stable argsort replaces the
        # 3-key lexsort.
        lid = np.repeat(np.arange(len(sizes), dtype=np.int64), counts)
        if len(sizes) * self._n * self._n < 2**62:
            order = np.argsort((lid * self._n + lo) * self._n + hi)
        else:  # pragma: no cover - astronomically large schedules
            order = np.lexsort((hi, lo, lid))
        return Schedule._from_canonical(
            self._n, FlatLayers(lo[order], hi[order], counts), self._meta
        )

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        if self._n != other._n:
            return False
        if self._layers is None and other._layers is None:
            a, b = self._flat, other._flat
            assert a is not None and b is not None
            return (
                np.array_equal(a.counts, b.counts)
                and np.array_equal(a.lo, b.lo)
                and np.array_equal(a.hi, b.hi)
            )
        return self._materialize() == other._materialize()

    def __hash__(self) -> int:
        return hash((self._n, self._materialize()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(n_vertices={self._n}, depth={self.depth}, "
            f"size={self.size})"
        )
