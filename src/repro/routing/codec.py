"""Zero-copy binary schedule codec (the serving hot-path format).

:func:`schedule_to_json` is the archival/interchange format — text,
self-describing, diffable. It is also what every warm cache hit used to
pay for: a disk-tier read parsed JSON into nested Python lists, and a
cluster ``cache_get`` round-tripped the same text over the wire. For a
large grid that is megabytes of number tokens per schedule.

This module is the binary alternative for the paths where both ends are
``repro``: a fixed little-endian header followed by the raw ``int64``
buffers of the :class:`~repro.routing.schedule.FlatLayers`
representation. Decoding slices the payload with a ``memoryview`` and
wraps the slices with ``np.frombuffer`` — no copy, no per-swap Python
objects — then hands the arrays straight to the lazy ``FlatLayers``
path of :class:`~repro.routing.schedule.Schedule`, so a decoded
schedule never materializes nested tuples unless a caller structurally
iterates it.

Wire layout (all integers little-endian)::

    offset  size  field
    0       8     magic  b"reproSC\\x01"  (version byte is the last byte)
    8       8     n_vertices   (int64, > 0)
    16      8     n_layers     (int64, >= 0)
    24      8     n_swaps      (int64, >= 0)
    32      8     meta_len     (int64, >= 0; UTF-8 JSON bytes, 0 = none)
    40      8*L   counts       (int64[n_layers])
    ..      8*S   lo           (int64[n_swaps])
    ..      8*S   hi           (int64[n_swaps])
    ..      M     metadata     (UTF-8 JSON object)

Decoding re-validates every invariant the public ``Schedule``
constructor enforces (range, canonical ``lo < hi`` order, per-layer
vertex-disjointness, ``(layer, lo, hi)`` sort order) with vectorized
checks, so a peer — or a corrupted disk file — can never plant an
invalid schedule. Any malformation raises
:class:`~repro.errors.ScheduleError`; callers on the cache path turn
that into a miss.
"""

from __future__ import annotations

import json
import os
import struct

import numpy as np

from ..errors import ScheduleError
from .schedule import FlatLayers, Schedule

__all__ = [
    "CODEC_VERSION",
    "MAGIC",
    "encode_schedule",
    "decode_schedule",
    "negotiated_version",
]

#: Binary format version (bumped on any layout change; the version byte
#: is baked into :data:`MAGIC` so old readers reject new frames at the
#: magic check instead of misparsing the header).
CODEC_VERSION = 1

#: Frame magic: ``b"reproSC"`` + the one-byte format version.
MAGIC = b"reproSC" + bytes([CODEC_VERSION])

#: Environment rollback lever: ``REPRO_CODEC=0`` makes this process
#: speak the pre-codec wire dialect (no binary advertisement, JSON
#: payloads, binary ``cache_put`` frames refused) without a downgrade.
_CODEC_ENV = "REPRO_CODEC"


def negotiated_version() -> int:
    """The codec version this process advertises, serves and accepts.

    Defaults to :data:`CODEC_VERSION`. ``REPRO_CODEC`` clamps it — ``0``
    forces the JSON-only wire dialect, which makes a daemon
    indistinguishable from a pre-codec build to its peers (the
    operational rollback lever when a ring is mid-upgrade and a binary
    incompatibility is suspected). Values above :data:`CODEC_VERSION`
    or garbage are ignored.
    """
    raw = os.environ.get(_CODEC_ENV, "").strip()
    if raw:
        try:
            return min(max(int(raw), 0), CODEC_VERSION)
        except ValueError:
            pass
    return CODEC_VERSION


_HEADER = struct.Struct("<8sqqqq")  # magic, n_vertices, n_layers, n_swaps, meta_len
_I64 = np.dtype("<i8")


def _flat_of(schedule: Schedule) -> FlatLayers:
    """The schedule's canonical flat arrays (built from tuples if needed)."""
    flat = schedule._flat
    if flat is not None:
        return flat
    layers = schedule.layers
    counts = np.asarray([len(layer) for layer in layers], dtype=np.int64)
    total = int(counts.sum())
    pairs = np.fromiter(
        (x for layer in layers for swap in layer for x in swap),
        dtype=np.int64,
        count=2 * total,
    ).reshape(-1, 2)
    return FlatLayers(
        np.ascontiguousarray(pairs[:, 0]),
        np.ascontiguousarray(pairs[:, 1]),
        counts,
    )


def encode_schedule(schedule: Schedule) -> bytes:
    """Serialize a schedule to the binary frame described above.

    Round-trips exactly through :func:`decode_schedule`, including the
    provenance metadata. Encoding from a flat-represented schedule (the
    kernel backends' native output) is three buffer copies and no
    per-swap Python work.
    """
    flat = _flat_of(schedule)
    counts = np.ascontiguousarray(flat.counts, dtype=_I64)
    lo = np.ascontiguousarray(flat.lo, dtype=_I64)
    hi = np.ascontiguousarray(flat.hi, dtype=_I64)
    meta = (
        json.dumps(schedule.metadata, separators=(",", ":")).encode("utf-8")
        if schedule.metadata
        else b""
    )
    header = _HEADER.pack(
        MAGIC, schedule.n_vertices, counts.size, lo.size, len(meta)
    )
    return b"".join((header, counts.tobytes(), lo.tobytes(), hi.tobytes(), meta))


def decode_schedule(data: bytes | bytearray | memoryview) -> Schedule:
    """Parse a frame produced by :func:`encode_schedule`.

    The three ``int64`` buffers are wrapped zero-copy (read-only views
    over ``data``) and become the schedule's ``FlatLayers`` payload
    directly — ``FlatLayers`` arrays are never mutated after
    construction, so sharing the caller's buffer is safe.

    Raises
    ------
    ScheduleError
        On truncated input, a bad magic/version, inconsistent header
        fields, or payload arrays violating any schedule invariant.
    """
    mv = memoryview(data)
    if mv.nbytes < _HEADER.size:
        raise ScheduleError(
            f"schedule frame truncated: {mv.nbytes} bytes < "
            f"{_HEADER.size}-byte header"
        )
    magic, n, n_layers, n_swaps, meta_len = _HEADER.unpack_from(mv)
    if magic != MAGIC:
        raise ScheduleError(
            f"not a schedule frame (magic {magic!r}, expected {MAGIC!r})"
        )
    if n <= 0 or n_layers < 0 or n_swaps < 0 or meta_len < 0:
        raise ScheduleError(
            f"corrupt schedule header: n_vertices={n}, n_layers={n_layers}, "
            f"n_swaps={n_swaps}, meta_len={meta_len}"
        )
    expected = _HEADER.size + 8 * (n_layers + 2 * n_swaps) + meta_len
    if mv.nbytes != expected:
        raise ScheduleError(
            f"schedule frame size mismatch: {mv.nbytes} bytes, "
            f"header implies {expected}"
        )
    off = _HEADER.size
    counts = np.frombuffer(mv, dtype=_I64, count=n_layers, offset=off)
    off += 8 * n_layers
    lo = np.frombuffer(mv, dtype=_I64, count=n_swaps, offset=off)
    off += 8 * n_swaps
    hi = np.frombuffer(mv, dtype=_I64, count=n_swaps, offset=off)
    off += 8 * n_swaps
    metadata = None
    if meta_len:
        try:
            metadata = json.loads(bytes(mv[off : off + meta_len]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ScheduleError(f"corrupt schedule metadata: {exc}") from exc
        if not isinstance(metadata, dict):
            raise ScheduleError("schedule metadata must be a JSON object")
    _validate_flat(n, counts, lo, hi)
    flat = FlatLayers(counts=counts, lo=lo, hi=hi)
    return Schedule._from_canonical(n, flat, metadata)


def _validate_flat(
    n: int, counts: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> None:
    """Vectorized re-validation of the canonical-layers invariants.

    Mirrors what the public ``Schedule`` constructor checks swap by swap:
    every endpoint in range, no self-swaps (implied by ``lo < hi``),
    per-layer vertex-disjointness, and the canonical sort order the
    trusted ``_from_canonical`` path assumes.
    """
    if counts.size and int(counts.min()) < 0:
        raise ScheduleError("corrupt schedule frame: negative layer count")
    if int(counts.sum()) != lo.size:
        raise ScheduleError(
            "corrupt schedule frame: layer counts do not sum to the swap count"
        )
    if lo.size == 0:
        return
    if int(lo.min()) < 0 or int(hi.max()) >= n:
        raise ScheduleError("corrupt schedule frame: swap endpoint out of range")
    if not bool(np.all(lo < hi)):
        raise ScheduleError("corrupt schedule frame: non-canonical swap order")
    lid = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    if counts.size * n * n < 2**62:
        key = (lid * n + lo) * n + hi
        if not bool(np.all(key[1:] > key[:-1])):
            raise ScheduleError(
                "corrupt schedule frame: layers not sorted canonically"
            )
        ends = np.concatenate((lid * n + lo, lid * n + hi))
    else:  # pragma: no cover - astronomically large schedules
        order = np.lexsort((hi, lo, lid))
        if not bool(np.all(order == np.arange(order.size))):
            raise ScheduleError(
                "corrupt schedule frame: layers not sorted canonically"
            )
        ends = np.concatenate((lid * np.int64(n) + lo, lid * np.int64(n) + hi))
    if np.unique(ends).size != ends.size:
        raise ScheduleError("corrupt schedule frame: vertex reuse inside a layer")
