"""Odd–even transposition routing on paths.

Both grid routing phases (column phases and the row phase) reduce to
routing many independent paths *in parallel*: each path carries a
permutation of destination indices, and odd–even transposition (OET) sorts
them with compare-exchange rounds that alternate between "even" pairs
``(0,1), (2,3), ...`` and "odd" pairs ``(1,2), (3,4), ...``. OET routes any
permutation of ``P_L`` in at most ``L`` rounds, and since each round is a
set of disjoint adjacent transpositions, every round is a matching of the
path — precisely the primitive the paper's ``GridRoute`` needs.

Two entry points:

* :func:`oet_rounds` — a single path; returns rounds of swap positions.
* :func:`oet_rounds_batched` — ``k`` paths of common length ``L``,
  **vectorized with numpy across the paths** (the guides' "vectorize the
  hot loop" advice: one compare/swap per round touches an ``(L/2, k)``
  block instead of Python-looping over ``k`` paths).

Both support choosing the starting parity; trying both parities and
keeping the shallower result ("parity optimization") costs a second pass
and saves a round roughly half the time.
"""

from __future__ import annotations

import numpy as np

from ..errors import RoutingError

__all__ = ["oet_rounds", "oet_rounds_batched", "oet_depth"]


def _check_permutation_columns(dest: np.ndarray) -> None:
    """Each column of ``dest`` must be a permutation of ``0..L-1``."""
    L = dest.shape[0]
    if not (np.sort(dest, axis=0) == np.arange(L)[:, None]).all():
        raise RoutingError("OET input columns must be permutations of 0..L-1")


def oet_rounds_batched(
    dest: np.ndarray, start_parity: int = 0, validate: bool = True
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Sort ``k`` destination-index columns simultaneously.

    Parameters
    ----------
    dest:
        ``(L, k)`` integer array; column ``c`` holds the destination index
        (within its path) of the token currently at each position of path
        ``c``. Each column must be a permutation of ``0..L-1``. The array
        is not modified.
    start_parity:
        0 starts with even pairs ``(0,1), (2,3), ...``; 1 with odd pairs.
    validate:
        Skip the permutation check when the caller guarantees it.

    Returns
    -------
    A list of rounds. Each round is a pair ``(positions, paths)`` of equal
    length arrays: swap ``(positions[i], positions[i]+1)`` happens on path
    ``paths[i]``. Rounds with no swaps are omitted (they contribute no
    layer), but the parity alternation is preserved internally.

    Raises
    ------
    RoutingError
        If a column is not a permutation, or sorting fails to converge in
        ``L + 1`` rounds (impossible for valid input; defensive).
    """
    D = np.asarray(dest)
    if D.ndim != 2:
        raise RoutingError(f"dest must be 2-D (L, k), got shape {D.shape}")
    L, k = D.shape
    if validate:
        _check_permutation_columns(D)
    if L <= 1 or k == 0:
        return []
    target = np.arange(L)[:, None]
    if (D == target).all():
        return []
    D = D.copy()
    rounds: list[tuple[np.ndarray, np.ndarray]] = []
    even_idx = np.arange(0, L - 1, 2)
    odd_idx = np.arange(1, L - 1, 2)
    for r in range(L + 1):
        idx = even_idx if (r + start_parity) % 2 == 0 else odd_idx
        if idx.size:
            mask = D[idx] > D[idx + 1]
            if mask.any():
                ii, cc = np.nonzero(mask)
                pos = idx[ii]
                D[pos, cc], D[pos + 1, cc] = D[pos + 1, cc], D[pos, cc]
                rounds.append((pos, cc))
                if (D == target).all():
                    return rounds
    if not (D == target).all():  # pragma: no cover - defensive
        raise RoutingError("odd-even transposition failed to converge")
    return rounds


def oet_rounds(
    dest: np.ndarray | list[int],
    start_parity: int = 0,
    optimize_parity: bool = True,
) -> list[list[int]]:
    """Route one path; returns rounds of swap positions ``i`` (meaning the
    adjacent transposition ``(i, i + 1)``).

    With ``optimize_parity`` both starting parities are tried and the
    shallower schedule returned (ties favour ``start_parity``).
    """
    d = np.asarray(dest).reshape(-1, 1)
    best: list[list[int]] | None = None
    parities = (start_parity, 1 - start_parity) if optimize_parity else (start_parity,)
    for p in parities:
        rounds = oet_rounds_batched(d, start_parity=p)
        as_lists = [sorted(pos.tolist()) for pos, _ in rounds]
        if best is None or len(as_lists) < len(best):
            best = as_lists
    return best if best is not None else []


def oet_depth(dest: np.ndarray | list[int], optimize_parity: bool = True) -> int:
    """Number of OET rounds needed to route one path (convenience)."""
    return len(oet_rounds(dest, optimize_parity=optimize_parity))
