"""``LocalGridRoute`` — the paper's locality-aware grid routing algorithm.

This is the primary contribution of the reproduced paper (Algorithms 1
and 2). It differs from the naive ACG router in exactly two places, both
in how the column-phase intermediates are chosen:

1. **Windowed matching search** (Algorithm 2, lines 3–18): perfect
   matchings of the column multigraph are peeled from row windows of
   doubling width, so each matching consists of tokens whose source rows
   are close together (see
   :func:`repro.matching.decompose.windowed_decomposition`).
2. **Bottleneck row assignment** (lines 19–23): each matching ``M`` is
   assigned the intermediate row ``r`` by a bottleneck-optimal perfect
   matching on the complete bipartite graph weighted by
   ``Delta(M, r) = sum_t |row(t) - r| + |row(pi(t)) - r|`` — tokens are
   parked in rows near both their sources and destinations, so phase 1
   and phase 3 stay shallow on local permutations.

The routing itself is the shared 3-phase ``GridRoute``; Algorithm 1 runs
it in both grid orientations and keeps the shallower schedule.

The router optionally falls back to the naive decomposition when that
happens to be shallower (``fallback_naive=True``), implementing the
paper's remark that the locality-aware router "can always be made to
produce a routing scheme with a smaller or equal depth as opposed to the
naive grid routing algorithm ... with virtually no computational
overhead".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import RoutingError
from ..graphs.base import Graph
from ..graphs.grid import GridGraph
from ..kernels import KernelBackend, get_backend
from ..matching.bottleneck import bottleneck_assignment
from ..matching.decompose import windowed_decomposition
from ..matching.multigraph import ColumnMultigraph
from ..perm.permutation import Permutation
from .base import Router, register_router, stage
from .grid_naive import (
    NaiveGridRouter,
    grid_route_with_sigmas,
    sigmas_from_decomposition,
)
from .schedule import Schedule

__all__ = ["LocalGridRouter", "LocalRouteInfo", "delta_weights"]


def delta_weights(
    rows_used: list[np.ndarray],
    n_rows: int,
    backend: KernelBackend | str | None = None,
) -> np.ndarray:
    """The ``Delta(M, r)`` weight matrix of Algorithm 2.

    Parameters
    ----------
    rows_used:
        Per matching, the ``2n`` source/destination rows of its tokens
        (as produced by
        :meth:`repro.matching.multigraph.ColumnMultigraph.matching_rows`).
    n_rows:
        Number of grid rows ``m``.
    backend:
        Kernel backend (instance, name, or ``None`` for the ambient
        default) computing the matrix.

    Returns
    -------
    ``(len(rows_used), n_rows)`` float array;
    ``W[k, r] = sum |rows_k - r|``.
    """
    kb = get_backend(backend)
    return np.asarray(kb.delta_weights(rows_used, n_rows), dtype=float)


@dataclass
class LocalRouteInfo:
    """Diagnostics from a :class:`LocalGridRouter` run (for ablations).

    Attributes
    ----------
    orientation:
        ``"primary"`` (column–row–column) or ``"transposed"``.
    depth:
        Depth of the returned schedule.
    depth_primary, depth_transposed:
        Depths of the two orientation candidates (``-1`` when an
        orientation was not attempted).
    window_widths:
        Window width at which each perfect matching was discovered, for
        the chosen orientation.
    bottleneck:
        The optimal MCBBM bottleneck value ``max_k Delta(M_k, r_k)``.
    used_naive_fallback:
        Whether the naive decomposition produced the returned schedule.
    """

    orientation: str
    depth: int
    depth_primary: int
    depth_transposed: int
    window_widths: list[int]
    bottleneck: float
    used_naive_fallback: bool = False


@register_router("local", families=("grid",), kernel_backends=True)
class LocalGridRouter(Router):
    """The paper's locality-aware router (Algorithms 1 + 2).

    Parameters
    ----------
    transpose_strategy:
        Run both orientations and keep the shallower result (Algorithm 1).
        Default True, as in the paper.
    optimize_parity:
        Try both OET starting parities per phase.
    compact:
        ASAP-compact the 3-phase schedule.
    fallback_naive:
        Also compute the naive-decomposition schedule and return it when
        shallower (the paper's free fallback).
    window_growth:
        ``"nested"`` (default) or ``"paper"`` — see
        :func:`repro.matching.decompose.windowed_decomposition`.
    assignment:
        How matchings are assigned to intermediate rows:

        * ``"mcbbm"`` (default) — the paper's bottleneck matching on the
          ``Delta`` weights (Algorithm 2, line 20);
        * ``"order"`` — matching ``k`` goes to row ``k`` (isolates the
          value of the MCBBM step for the ablation benchmark: windowed
          peeling alone vs peeling + bottleneck assignment).
    refine_assignment:
        Refine the bottleneck-optimal row assignment by total weight
        (see :func:`repro.matching.bottleneck.bottleneck_assignment`).
    validate:
        Re-simulate every produced schedule (for tests).
    """

    name = "local"

    def __init__(
        self,
        transpose_strategy: bool = True,
        optimize_parity: bool = True,
        compact: bool = True,
        fallback_naive: bool = False,
        window_growth: str = "nested",
        assignment: str = "mcbbm",
        refine_assignment: bool = True,
        validate: bool = False,
    ) -> None:
        if assignment not in ("mcbbm", "order"):
            raise RoutingError(f"unknown assignment strategy {assignment!r}")
        self.transpose_strategy = transpose_strategy
        self.optimize_parity = optimize_parity
        self.compact = compact
        self.fallback_naive = fallback_naive
        self.window_growth = window_growth
        self.assignment = assignment
        self.refine_assignment = refine_assignment
        self.validate = validate

    # ------------------------------------------------------------------
    def _route_oriented(
        self, grid: GridGraph, perm: Permutation
    ) -> tuple[Schedule, list[int], float]:
        """LocalGridRoute on a fixed orientation.

        Returns (schedule, window widths, MCBBM bottleneck).
        """
        kb = self.backend
        m, _ = grid.shape
        mg = ColumnMultigraph(grid.shape, perm)
        with stage("decomposition"):
            dec = windowed_decomposition(mg, growth=self.window_growth, backend=kb)
        with stage("bottleneck_assignment"):
            if self.assignment == "order":
                assignment = np.arange(m)
                bottleneck = float(
                    max(
                        float(np.abs(ru - r).sum())
                        for r, ru in enumerate(dec.rows_used)
                    )
                )
            else:
                weights = delta_weights(dec.rows_used, m, backend=kb)
                assignment, bottleneck = bottleneck_assignment(
                    weights, refine=self.refine_assignment, backend=kb
                )
        with stage("swap_scheduling"):
            sig = sigmas_from_decomposition(dec, assignment, grid.shape)
            sched = grid_route_with_sigmas(
                grid,
                perm,
                sig,
                optimize_parity=self.optimize_parity,
                compact=self.compact,
                validate=self.validate,
                backend=kb,
            )
        return sched, dec.window_widths, bottleneck

    def route_with_info(
        self, grid: GridGraph, perm: Permutation
    ) -> tuple[Schedule, LocalRouteInfo]:
        """Route and return diagnostics (see :class:`LocalRouteInfo`)."""
        if not isinstance(grid, GridGraph):
            raise RoutingError(
                f"{self.name} router requires a GridGraph, got {type(grid).__name__}"
            )
        self._check_sizes(grid, perm)

        sched_p, widths_p, bott_p = self._route_oriented(grid, perm)
        depth_transposed = -1
        sched, orientation, widths, bottleneck = sched_p, "primary", widths_p, bott_p

        if self.transpose_strategy:
            n_total = grid.n_vertices
            mapping = grid.transpose_vertices(np.arange(n_total))
            grid_t = grid.transpose()
            sched_tt, widths_t, bott_t = self._route_oriented(
                grid_t, perm.relabel(mapping)
            )
            sched_t = sched_tt.relabel(grid_t.transpose_vertices(np.arange(n_total)))
            depth_transposed = sched_t.depth
            if sched_t.depth < sched_p.depth:
                sched, orientation = sched_t, "transposed"
                widths, bottleneck = widths_t, bott_t

        info = LocalRouteInfo(
            orientation=orientation,
            depth=sched.depth,
            depth_primary=sched_p.depth,
            depth_transposed=depth_transposed,
            window_widths=widths,
            bottleneck=bottleneck,
        )

        if self.fallback_naive:
            naive = NaiveGridRouter(
                transpose_strategy=self.transpose_strategy,
                optimize_parity=self.optimize_parity,
                compact=self.compact,
                validate=self.validate,
            )
            naive.set_backend(self._backend)
            naive_sched = naive.route(grid, perm)
            if naive_sched.depth < sched.depth:
                sched = naive_sched
                info.depth = naive_sched.depth
                info.used_naive_fallback = True
        return sched, info

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        if not isinstance(graph, GridGraph):
            raise RoutingError(
                f"{self.name} router requires a GridGraph, got {type(graph).__name__}"
            )
        sched, _ = self.route_with_info(graph, perm)
        return sched
