"""Schedule serialization (JSON) and ASCII visualization.

Serialization lets schedules be cached, shipped to a device control
stack, or diffed between router versions. The visualizer renders a grid
schedule layer by layer as ASCII frames — invaluable when debugging a
router (every example in the paper's figures is effectively one of these
frames).

This is the *interchange* format: text, self-describing, stable. The
serving hot path (disk cache tier, pool-boundary crossings, cluster
``cache_get``/``cache_put``) uses the binary :mod:`repro.routing.codec`
frames instead, which decode zero-copy into the flat schedule
representation; both formats round-trip the same schedules exactly.
"""

from __future__ import annotations

import json

from ..errors import ScheduleError
from ..graphs.grid import GridGraph
from .schedule import Schedule

__all__ = [
    "schedule_to_json",
    "schedule_from_json",
    "render_grid_layer",
    "render_grid_schedule",
]

_FORMAT_VERSION = 1


def schedule_to_json(schedule: Schedule, indent: int | None = None) -> str:
    """Serialize a schedule to a JSON document.

    The document records the format version, vertex count and layers
    (plus the provenance metadata, when present — an optional key, so
    version 1 readers remain compatible); round-trips exactly through
    :func:`schedule_from_json`.
    """
    doc = {
        "format": "repro.schedule",
        "version": _FORMAT_VERSION,
        "n_vertices": schedule.n_vertices,
        "layers": [[[u, v] for (u, v) in layer] for layer in schedule],
    }
    if schedule.metadata:
        doc["metadata"] = dict(schedule.metadata)
    return json.dumps(doc, indent=indent)


def schedule_from_json(text: str) -> Schedule:
    """Parse a schedule serialized by :func:`schedule_to_json`.

    Raises
    ------
    ScheduleError
        On malformed documents or unsupported versions (the payload is
        re-validated by the :class:`~repro.routing.schedule.Schedule`
        constructor, so corrupt layers are rejected too).
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"invalid schedule JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro.schedule":
        raise ScheduleError("not a repro.schedule document")
    if doc.get("version") != _FORMAT_VERSION:
        raise ScheduleError(
            f"unsupported schedule format version {doc.get('version')!r}"
        )
    try:
        n = int(doc["n_vertices"])
        layers = [
            [(int(u), int(v)) for (u, v) in layer] for layer in doc["layers"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleError(f"malformed schedule document: {exc}") from exc
    meta = doc.get("metadata")
    if meta is not None and not isinstance(meta, dict):
        raise ScheduleError("malformed schedule document: metadata must be an object")
    return Schedule(n, layers, metadata=meta)


def render_grid_layer(grid: GridGraph, layer) -> str:
    """One layer as ASCII art: ``o`` vertices, ``===``/``#`` swapped edges.

    Horizontal swaps render as ``o===o``, vertical swaps as ``#`` between
    the rows; idle couplings are drawn faintly (``---`` / ``|``).
    """
    m, n = grid.shape
    horiz = set()
    vert = set()
    for u, v in layer:
        (iu, ju), (iv, jv) = grid.coord(u), grid.coord(v)
        if iu == iv:
            horiz.add((iu, min(ju, jv)))
        elif ju == jv:
            vert.add((min(iu, iv), ju))
        else:  # pragma: no cover - guarded by Schedule.check_against
            raise ScheduleError(f"swap ({u}, {v}) is not a grid edge")
    lines: list[str] = []
    for i in range(m):
        row = []
        for j in range(n):
            row.append("o")
            if j + 1 < n:
                row.append("===" if (i, j) in horiz else "---")
        lines.append("".join(row))
        if i + 1 < m:
            sep = []
            for j in range(n):
                sep.append("#" if (i, j) in vert else "|")
                if j + 1 < n:
                    sep.append("   ")
            lines.append("".join(sep))
    return "\n".join(lines)


def render_grid_schedule(grid: GridGraph, schedule: Schedule) -> str:
    """All non-empty layers of a schedule as sequential ASCII frames."""
    if schedule.n_vertices != grid.n_vertices:
        raise ScheduleError("schedule size does not match the grid")
    frames = []
    t = 0
    for layer in schedule:
        if not layer:
            continue
        frames.append(f"layer {t} ({len(layer)} swaps):")
        frames.append(render_grid_layer(grid, layer))
        t += 1
    if not frames:
        return "(empty schedule)"
    return "\n".join(frames)
