"""Routing on complete graphs: depth 2 via two involutions.

A classical fact (routing number of ``K_n`` is at most 2): every
permutation factors as a product of two involutions, and an involution is
a disjoint union of transpositions, i.e. a matching of ``K_n``. The
factorization is built per cycle from the two reflections generating the
dihedral group; see
:meth:`repro.perm.permutation.Permutation.two_involution_factorization`.

Included both as a routing primitive for Cartesian products with complete
factors and as an exactly-analyzable reference point in tests (depth is
provably <= 2, and exactly 2 iff the permutation is not itself an
involution... it is 1 when the permutation is a nontrivial involution and
0 for the identity).
"""

from __future__ import annotations

from ..errors import RoutingError
from ..graphs.base import Graph
from ..perm.permutation import Permutation
from .base import Router, register_router
from .schedule import Schedule

__all__ = ["CompleteRouter", "involution_matching"]


def involution_matching(p: Permutation) -> list[tuple[int, int]]:
    """The transpositions of an involution, as a matching of ``K_n``.

    Raises
    ------
    RoutingError
        If ``p`` is not an involution.
    """
    pairs: list[tuple[int, int]] = []
    for v in range(p.size):
        w = p(v)
        if p(w) != v:
            raise RoutingError("permutation is not an involution")
        if v < w:
            pairs.append((v, w))
    return pairs


@register_router("complete", families=("complete",))
class CompleteRouter(Router):
    """Depth-(<= 2) routing on complete graphs.

    Parameters
    ----------
    validate:
        Verify the produced schedule.
    """

    name = "complete"

    def __init__(self, validate: bool = False) -> None:
        self.validate = validate

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        self._check_sizes(graph, perm)
        n = graph.n_vertices
        if graph.n_edges != n * (n - 1) // 2:
            raise RoutingError(
                f"{self.name} router requires a complete graph, got {graph.name}"
            )
        first, second = perm.two_involution_factorization()
        layers = [
            m for m in (involution_matching(first), involution_matching(second)) if m
        ]
        sched = Schedule(n, layers)
        if self.validate:
            sched.verify(graph, perm)
        return sched
