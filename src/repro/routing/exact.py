"""Exact minimum-depth routing for small instances (test oracle).

Computing an optimal matching sequence is NP-hard in general (the paper
cites Banerjee & Richards), but for the tiny graphs used in tests a
breadth-first search over token configurations is perfectly feasible and
gives the true routing number ``rt(G, pi)``. The heuristic routers are
then judged against ground truth instead of hand-waved bounds:

* the grid routers' depth on 2x3 / 3x3 instances vs optimal;
* `CompleteRouter` is provably optimal (depth <= 2) — checked;
* OET's overhead on paths vs optimal.

Search design: states are occupancy tuples (position -> token); moves
are the maximal matchings of the graph (applying a non-maximal matching
is never better than some maximal one containing it, since unused
disjoint swaps can be dropped from the *next* layer instead — formally,
any schedule can be rewritten layer by layer so that each layer is a
subset of a maximal matching we also try; we therefore enumerate all
matchings, not just maximal ones, to keep the argument airtight, but
deduplicate states).  BFS from the identity composing matchings explores
``n!`` states worst case — the constructor enforces a size cap.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from math import factorial

from ..errors import RoutingError
from ..graphs.base import Graph
from ..perm.permutation import Permutation
from .schedule import Schedule

__all__ = ["ExactRouter", "all_matchings", "optimal_depth"]

_MAX_STATES = 400_000


def all_matchings(graph: Graph) -> list[tuple[tuple[int, int], ...]]:
    """Every non-empty matching of ``graph`` (exponential; small graphs).

    Enumerated by extension with a canonical edge ordering so each
    matching is produced exactly once.
    """
    edges = graph.edges
    out: list[tuple[tuple[int, int], ...]] = []

    def extend(start: int, current: list[tuple[int, int]], used: set[int]) -> None:
        for i in range(start, len(edges)):
            u, v = edges[i]
            if u in used or v in used:
                continue
            current.append((u, v))
            out.append(tuple(current))
            extend(i + 1, current, used | {u, v})
            current.pop()

    extend(0, [], set())
    return out


class ExactRouter:
    """Breadth-first optimal-depth router (small graphs only).

    Parameters
    ----------
    max_vertices:
        Safety cap; the default (8) keeps the state space under ``8!``.

    Examples
    --------
    >>> from repro.graphs import path_graph
    >>> from repro.perm import Permutation
    >>> router = ExactRouter()
    >>> sched = router.route(path_graph(3), Permutation([2, 1, 0]))
    >>> sched.depth
    3
    """

    name = "exact"

    def __init__(self, max_vertices: int = 8) -> None:
        self.max_vertices = max_vertices

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        """An optimal (minimum-depth) schedule realizing ``perm``.

        Raises
        ------
        RoutingError
            If the instance exceeds the size cap or is unreachable
            (disconnected graph components mixing tokens).
        """
        n = graph.n_vertices
        if perm.size != n:
            raise RoutingError(f"permutation size {perm.size} != graph size {n}")
        if n > self.max_vertices:
            raise RoutingError(
                f"exact routing capped at {self.max_vertices} vertices, got {n}"
            )
        if factorial(n) > _MAX_STATES:
            raise RoutingError("state space too large for exact routing")

        start = tuple(range(n))  # occ[position] = token
        # goal: token t ends at perm(t)  <=>  occ[perm(t)] == t
        inv = perm.inverse()
        goal = tuple(int(inv(pos)) for pos in range(n))
        if start == goal:
            return Schedule.empty(n)

        matchings = all_matchings(graph)
        parent: dict[tuple[int, ...], tuple[tuple[int, ...], tuple[tuple[int, int], ...]]] = {}
        seen = {start}
        queue: deque[tuple[int, ...]] = deque([start])
        while queue:
            state = queue.popleft()
            for matching in matchings:
                nxt = list(state)
                for u, v in matching:
                    nxt[u], nxt[v] = nxt[v], nxt[u]
                key = tuple(nxt)
                if key in seen:
                    continue
                seen.add(key)
                parent[key] = (state, matching)
                if key == goal:
                    layers: list[tuple[tuple[int, int], ...]] = []
                    cur = key
                    while cur != start:
                        prev, used = parent[cur]
                        layers.append(used)
                        cur = prev
                    sched = Schedule(n, reversed(layers))
                    sched.verify(graph, perm)
                    return sched
                queue.append(key)
        raise RoutingError(
            "goal unreachable — is the graph connected on the permuted tokens?"
        )


def optimal_depth(graph: Graph, perm: Permutation, max_vertices: int = 8) -> int:
    """The routing number ``rt(graph, perm)`` (minimum schedule depth)."""
    return ExactRouter(max_vertices=max_vertices).route(graph, perm).depth
