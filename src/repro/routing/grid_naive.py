"""The Alon–Chung–Graham 3-phase grid routing (``GridRoute``) and the naive
baseline router built on it.

``GridRoute(G, pi; sigma_1, ..., sigma_n)`` (paper Section IV) routes in
three rounds:

1. **Column phase** — inside every column ``j`` in parallel, move the token
   at row ``i`` to the intermediate row ``sigma_j(i)``.
2. **Row phase** — inside every row in parallel, move every token to its
   destination column. This is well-defined precisely because the
   ``sigma_j`` were derived from a perfect-matching decomposition of the
   column multigraph: after phase 1, each row holds exactly one token per
   destination column.
3. **Column phase** — inside every column in parallel, move every token to
   its destination row.

Each phase routes paths with odd–even transposition, so every round of the
schedule is a matching of the grid. The *naive* router instantiates the
decomposition arbitrarily (the original [ACG94] choice) and assigns the
``k``-th peeled matching to row ``k`` — exactly the baseline the paper's
locality-aware algorithm improves on.

This module also hosts :func:`route_both_orientations`, the paper's
Algorithm 1 wrapper: run a grid router in column–row–column orientation
and again on the transposed grid (row–column–row), keep the shallower
schedule.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import RoutingError
from ..graphs.base import Graph
from ..graphs.grid import GridGraph
from ..kernels import KernelBackend, get_backend
from ..matching.decompose import Decomposition, naive_decomposition
from ..matching.multigraph import ColumnMultigraph
from ..perm.permutation import Permutation
from .base import Router, register_router, stage
from .schedule import Schedule

__all__ = [
    "grid_route_with_sigmas",
    "sigmas_from_decomposition",
    "route_both_orientations",
    "NaiveGridRouter",
]


def sigmas_from_decomposition(
    dec: Decomposition, assignment: np.ndarray, shape: tuple[int, int]
) -> np.ndarray:
    """Build the intermediate-row matrix from a decomposition + row assignment.

    Parameters
    ----------
    dec:
        Perfect-matching decomposition of the column multigraph.
    assignment:
        ``assignment[k]`` = intermediate row assigned to matching ``k``.
    shape:
        ``(m, n)`` grid shape.

    Returns
    -------
    ``(m, n)`` array ``sig`` with ``sig[i, j]`` = the intermediate row of
    the token that starts at ``(i, j)``; every column is a permutation of
    ``0..m-1`` (validated).

    Raises
    ------
    RoutingError
        If the decomposition/assignment do not cover every token exactly
        once per (column, row) slot.
    """
    m, n = shape
    if len(dec.matchings) != m:
        raise RoutingError(
            f"expected {m} matchings, got {len(dec.matchings)}"
        )
    assignment = np.asarray(assignment, dtype=np.int64)
    if sorted(assignment.tolist()) != list(range(m)):
        raise RoutingError("assignment must be a bijection onto the rows")
    sig = np.full((m, n), -1, dtype=np.int64)
    for k, tokens in enumerate(dec.matchings):
        sig[tokens // n, tokens % n] = assignment[k]
    if not (np.sort(sig, axis=0) == np.arange(m)[:, None]).all():
        raise RoutingError(
            "decomposition does not induce a per-column permutation of rows"
        )
    return sig


def grid_route_with_sigmas(
    grid: GridGraph,
    perm: Permutation,
    sigmas: np.ndarray,
    *,
    optimize_parity: bool = True,
    compact: bool = True,
    validate: bool = False,
    backend: KernelBackend | str | None = None,
) -> Schedule:
    """The ``GridRoute`` subroutine: 3-phase routing given the ``sigma_j``.

    Parameters
    ----------
    grid:
        The ``m x n`` grid.
    perm:
        Permutation to route (token at ``v`` must reach ``perm(v)``).
    sigmas:
        ``(m, n)`` intermediate-row matrix (see
        :func:`sigmas_from_decomposition`).
    optimize_parity:
        Try both OET starting parities per phase, keep the shallower.
    compact:
        ASAP-compact the concatenated phases (lets phase boundaries
        overlap; never increases depth).
    validate:
        Additionally re-simulate and check the realized permutation
        (silent O(size) cost; routers expose it for tests).
    backend:
        Kernel backend (instance, name, or ``None`` for the ambient
        default) executing the OET and schedule-assembly primitives. The
        backend name is recorded in the schedule's metadata.

    Raises
    ------
    RoutingError
        On malformed ``sigmas`` or (with ``validate``) a semantic failure.
    """
    kb = get_backend(backend)
    m, n = grid.shape
    N = m * n
    if perm.size != N:
        raise RoutingError(f"permutation size {perm.size} != grid size {N}")
    sigmas = np.asarray(sigmas, dtype=np.int64)
    if sigmas.shape != (m, n):
        raise RoutingError(f"sigmas shape {sigmas.shape} != grid shape {(m, n)}")
    if not (np.sort(sigmas, axis=0) == np.arange(m)[:, None]).all():
        raise RoutingError("each sigmas column must be a permutation of rows")

    dst = perm.targets
    dst_row = dst // n
    dst_col = dst % n
    swap_layers: list[tuple[list[int], list[int]]] = []

    # ------------------------------------------------------------------
    # Phase 1: within columns, token at (i, j) -> row sigmas[i, j].
    # Paths are the n columns (length m); position p on column c is
    # vertex p*n + c, its downward neighbour p*n + c + n.
    # ------------------------------------------------------------------
    occ2d = np.arange(N).reshape(m, n)  # occ2d[i, j] = token at (i, j)
    swap_layers += kb.oet_swap_layers(
        sigmas, n, 1, n, optimize_parity=optimize_parity
    )
    new = np.empty_like(occ2d)
    new[sigmas, np.broadcast_to(np.arange(n), (m, n))] = occ2d
    occ2d = new

    # ------------------------------------------------------------------
    # Phase 2: within rows, token at (r, j) -> its destination column.
    # Paths are the m rows (length n); OET input is (n, m); position p on
    # row r is vertex r*n + p, its rightward neighbour r*n + p + 1.
    # ------------------------------------------------------------------
    dest_cols = dst_col[occ2d]  # (m, n): destination column per position
    if not (np.sort(dest_cols, axis=1) == np.arange(n)[None, :]).all():
        raise RoutingError(
            "phase-2 precondition violated: a row holds duplicate "
            "destination columns (invalid sigma decomposition)"
        )
    swap_layers += kb.oet_swap_layers(
        dest_cols.T, 1, n, 1, optimize_parity=optimize_parity
    )
    new = np.empty_like(occ2d)
    new[np.broadcast_to(np.arange(m)[:, None], (m, n)), dest_cols] = occ2d
    occ2d = new

    # ------------------------------------------------------------------
    # Phase 3: within columns, token at (i, j) -> its destination row.
    # ------------------------------------------------------------------
    dest_rows = dst_row[occ2d]
    if not (np.sort(dest_rows, axis=0) == np.arange(m)[:, None]).all():
        raise RoutingError(
            "phase-3 precondition violated: a column holds duplicate "
            "destination rows"
        )
    swap_layers += kb.oet_swap_layers(
        dest_rows, n, 1, n, optimize_parity=optimize_parity
    )
    new = np.empty_like(occ2d)
    new[dest_rows, np.broadcast_to(np.arange(n), (m, n))] = occ2d
    occ2d = new

    if validate and not np.array_equal(dst[occ2d.ravel()], np.arange(N)):
        raise RoutingError("grid routing realized the wrong permutation")

    layers = kb.assemble_layers(N, swap_layers, compact=compact)
    return Schedule._from_canonical(N, layers, {"backend": kb.name})


def route_both_orientations(
    oriented_route: Callable[[GridGraph, Permutation], Schedule],
    grid: GridGraph,
    perm: Permutation,
) -> tuple[Schedule, str]:
    """Algorithm 1: run both orientations, return the shallower schedule.

    ``oriented_route`` is executed on ``(grid, perm)`` (column–row–column)
    and on the transposed instance (equivalent to row–column–row on the
    original grid); the transposed schedule is relabelled back to the
    original grid's vertex ids.

    Returns
    -------
    (schedule, orientation):
        ``orientation`` is ``"primary"`` or ``"transposed"``.
    """
    s1 = oriented_route(grid, perm)
    N = grid.n_vertices
    mapping = grid.transpose_vertices(np.arange(N))
    perm_t = perm.relabel(mapping)
    grid_t = grid.transpose()
    s2_t = oriented_route(grid_t, perm_t)
    back = grid_t.transpose_vertices(np.arange(N))
    s2 = s2_t.relabel(back)
    if s1.depth <= s2.depth:
        return s1, "primary"
    return s2, "transposed"


@register_router("naive", families=("grid",), kernel_backends=True)
class NaiveGridRouter(Router):
    """ACG 3-phase grid routing with arbitrary matching decomposition.

    Parameters
    ----------
    transpose_strategy:
        Also try the transposed orientation and keep the shallower
        schedule (off by default: the historical baseline routes one way).
    optimize_parity, compact, validate:
        Forwarded to :func:`grid_route_with_sigmas`.
    """

    name = "naive"

    def __init__(
        self,
        transpose_strategy: bool = False,
        optimize_parity: bool = True,
        compact: bool = True,
        validate: bool = False,
    ) -> None:
        self.transpose_strategy = transpose_strategy
        self.optimize_parity = optimize_parity
        self.compact = compact
        self.validate = validate

    def _route_oriented(self, grid: GridGraph, perm: Permutation) -> Schedule:
        kb = self.backend
        mg = ColumnMultigraph(grid.shape, perm)
        with stage("decomposition"):
            dec = naive_decomposition(mg, backend=kb)
        with stage("swap_scheduling"):
            sig = sigmas_from_decomposition(
                dec, np.arange(grid.shape[0]), grid.shape
            )
            return grid_route_with_sigmas(
                grid,
                perm,
                sig,
                optimize_parity=self.optimize_parity,
                compact=self.compact,
                validate=self.validate,
                backend=kb,
            )

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        if not isinstance(graph, GridGraph):
            raise RoutingError(
                f"{self.name} router requires a GridGraph, got {type(graph).__name__}"
            )
        self._check_sizes(graph, perm)
        if self.transpose_strategy:
            sched, _ = route_both_orientations(self._route_oriented, graph, perm)
            return sched
        return self._route_oriented(graph, perm)
