"""3-phase routing on Cartesian products ``G1 □ G2`` (paper Section IV-C).

The grid algorithm generalizes verbatim: think of ``G = G1 □ G2`` as a
grid-like graph whose *columns* are copies of ``G1`` (one per vertex of
``G2``) and whose *rows* are copies of ``G2``. The Hall/König argument
behind the 3-phase scheme only concerns the bipartite multigraph over the
columns, so it is untouched; the per-phase path routing is replaced by a
routing algorithm for the relevant factor ("replacing the odd-even
transposition with routing algorithms for G1 and G2").

Locality extension: the ``Delta`` metric generalizes by replacing the row
metric ``|i - r|`` with the factor-graph distance ``d_{G1}(i, r)``; the
row-window banding of Algorithm 2 uses vertex-id order of ``G1``, which
coincides with the paper's row bands when ``G1`` is a path and remains a
useful (if weaker) band structure on "path-like" factors — the exact
regime the paper says the locality optimization is designed for.

Factor routers are selected by structure: paths get odd–even
transposition, cycles the best-cut reduction, complete graphs the 2-round
involution router, and anything else connected falls back to token
swapping (always correct).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import RoutingError
from ..graphs.base import Graph
from ..graphs.cartesian import CartesianProduct
from ..graphs.families import path_graph
from ..graphs.grid import GridGraph
from ..kernels import get_backend
from ..matching.bottleneck import bottleneck_assignment
from ..matching.decompose import naive_decomposition, windowed_decomposition
from ..matching.multigraph import ColumnMultigraph
from ..perm.permutation import Permutation
from .base import Router, register_router
from .complete_route import CompleteRouter
from .cycle_route import CycleRouter, cycle_order
from .grid_naive import sigmas_from_decomposition
from .path_oet import oet_rounds
from .schedule import Schedule

__all__ = [
    "FactorRouter",
    "PathFactorRouter",
    "CycleFactorRouter",
    "CompleteFactorRouter",
    "GenericFactorRouter",
    "factor_router_for",
    "path_order",
    "CartesianRouter",
]


def path_order(graph: Graph) -> list[int] | None:
    """Vertices of a path graph in endpoint-to-endpoint order, or ``None``.

    Deterministic: starts from the smallest-labelled endpoint.
    """
    n = graph.n_vertices
    if n == 1:
        return [0]
    if graph.n_edges != n - 1:
        return None
    degrees = [graph.degree(v) for v in range(n)]
    endpoints = [v for v in range(n) if degrees[v] == 1]
    if len(endpoints) != 2 or any(d > 2 for d in degrees):
        return None
    order = [min(endpoints)]
    prev = -1
    for _ in range(n - 1):
        cur = order[-1]
        nxt = [w for w in graph.neighbors(cur) if w != prev]
        if len(nxt) != 1:
            return None
        order.append(nxt[0])
        prev = cur
    return order if len(set(order)) == n else None


class FactorRouter(ABC):
    """Routing primitive for one factor graph of a Cartesian product.

    A factor router answers a single question: given that the token at
    factor-vertex ``x`` must reach factor-vertex ``dest[x]``, which rounds
    of factor-edge swaps realize it?
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    @abstractmethod
    def route_destinations(self, dest: np.ndarray) -> list[list[tuple[int, int]]]:
        """Rounds of disjoint factor-edge swaps realizing ``dest``."""


class PathFactorRouter(FactorRouter):
    """Odd–even transposition over the path's natural order."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        order = path_order(graph)
        if order is None:
            raise RoutingError(f"{graph.name} is not a path")
        self._order = order
        self._pos = {v: p for p, v in enumerate(order)}

    def route_destinations(self, dest: np.ndarray) -> list[list[tuple[int, int]]]:
        pdest = [self._pos[int(dest[v])] for v in self._order]
        rounds = oet_rounds(pdest, optimize_parity=True)
        order = self._order
        return [[(order[i], order[i + 1]) for i in rnd] for rnd in rounds]


class CycleFactorRouter(FactorRouter):
    """Best-cut cycle routing (see :class:`~repro.routing.cycle_route.CycleRouter`)."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        if cycle_order(graph) is None:
            raise RoutingError(f"{graph.name} is not a cycle")
        self._router = CycleRouter()

    def route_destinations(self, dest: np.ndarray) -> list[list[tuple[int, int]]]:
        sched = self._router.route(self.graph, Permutation(dest))
        return [list(layer) for layer in sched.layers if layer]


class CompleteFactorRouter(FactorRouter):
    """2-round involution routing on complete factors."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        n = graph.n_vertices
        if graph.n_edges != n * (n - 1) // 2:
            raise RoutingError(f"{graph.name} is not complete")
        self._router = CompleteRouter()

    def route_destinations(self, dest: np.ndarray) -> list[list[tuple[int, int]]]:
        sched = self._router.route(self.graph, Permutation(dest))
        return [list(layer) for layer in sched.layers if layer]


class GenericFactorRouter(FactorRouter):
    """Token-swapping fallback, correct on any connected factor."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        if not graph.is_connected():
            raise RoutingError(f"factor {graph.name} is disconnected")

    def route_destinations(self, dest: np.ndarray) -> list[list[tuple[int, int]]]:
        from ..token_swap.ats import approximate_token_swapping

        swaps = approximate_token_swapping(self.graph, Permutation(dest))
        sched = Schedule.from_serial_swaps(self.graph.n_vertices, swaps).compact()
        return [list(layer) for layer in sched.layers if layer]


def factor_router_for(graph: Graph) -> FactorRouter:
    """Select a factor router by structural inspection (see module doc)."""
    if path_order(graph) is not None:
        return PathFactorRouter(graph)
    if cycle_order(graph) is not None:
        return CycleFactorRouter(graph)
    n = graph.n_vertices
    if graph.n_edges == n * (n - 1) // 2 and n >= 2:
        return CompleteFactorRouter(graph)
    return GenericFactorRouter(graph)


def _merge_rounds(
    per_copy_rounds: list[list[list[tuple[int, int]]]],
    to_product,
) -> list[list[tuple[int, int]]]:
    """Merge per-copy factor rounds into product layers by round index.

    Copies live on disjoint vertex sets, so round ``r`` of every copy can
    execute simultaneously. ``to_product(copy_index, a, b)`` maps a factor
    edge to a product edge.
    """
    depth = max((len(r) for r in per_copy_rounds), default=0)
    layers: list[list[tuple[int, int]]] = []
    for r in range(depth):
        layer: list[tuple[int, int]] = []
        for copy, rounds in enumerate(per_copy_rounds):
            if r < len(rounds):
                for a, b in rounds[r]:
                    layer.append(to_product(copy, a, b))
        if layer:
            layers.append(layer)
    return layers


@register_router(
    "cartesian", families=("grid", "cartesian_product"), kernel_backends=True
)
class CartesianRouter(Router):
    """Locality-aware (or naive) 3-phase routing on ``G1 □ G2``.

    Parameters
    ----------
    locality:
        Use the windowed decomposition + bottleneck assignment (the
        paper's extension); otherwise the naive ACG decomposition.
    both_orientations:
        Also route on ``G2 □ G1`` (Algorithm 1's transpose trick,
        generalized to factor exchange) and keep the shallower schedule.
    compact:
        ASAP-compact the concatenated phases.
    validate:
        Verify every produced schedule.
    """

    name = "cartesian"

    def __init__(
        self,
        locality: bool = True,
        both_orientations: bool = True,
        compact: bool = True,
        window_growth: str = "nested",
        validate: bool = False,
    ) -> None:
        self.locality = locality
        self.both_orientations = both_orientations
        self.compact = compact
        self.window_growth = window_growth
        self.validate = validate

    # ------------------------------------------------------------------
    def _as_product(self, graph: Graph) -> CartesianProduct:
        if isinstance(graph, CartesianProduct):
            return graph
        if isinstance(graph, GridGraph):
            return CartesianProduct(
                path_graph(graph.n_rows), path_graph(graph.n_cols)
            )
        raise RoutingError(
            f"{self.name} router requires a CartesianProduct (or GridGraph), "
            f"got {type(graph).__name__}"
        )

    def _route_oriented(self, prod: CartesianProduct, perm: Permutation) -> Schedule:
        g1, g2 = prod.g1, prod.g2
        m, n = g1.n_vertices, g2.n_vertices
        N = m * n

        kb = self.backend
        mg = ColumnMultigraph((m, n), perm)
        if self.locality:
            dec = windowed_decomposition(mg, growth=self.window_growth, backend=kb)
            d1 = g1.distance_matrix()
            if (d1 < 0).any():
                raise RoutingError("factor G1 must be connected")
            weights = np.asarray(
                kb.factor_delta_weights(d1, dec.rows_used), dtype=float
            )
            assignment, _ = bottleneck_assignment(weights, backend=kb)
        else:
            dec = naive_decomposition(mg, backend=kb)
            assignment = np.arange(m)
        sig = sigmas_from_decomposition(dec, assignment, (m, n))

        r1 = factor_router_for(g1)
        r2 = factor_router_for(g2)

        dst = perm.targets
        dst_row = dst // n
        dst_col = dst % n
        occ2d = np.arange(N).reshape(m, n)
        layers: list[list[tuple[int, int]]] = []

        # Phase 1: within columns (copies of G1), token at (a, b) -> (sig[a,b], b).
        col_rounds = [r1.route_destinations(sig[:, b]) for b in range(n)]
        layers.extend(
            _merge_rounds(col_rounds, lambda b, a, a2: (a * n + b, a2 * n + b))
        )
        new = np.empty_like(occ2d)
        new[sig, np.broadcast_to(np.arange(n), (m, n))] = occ2d
        occ2d = new

        # Phase 2: within rows (copies of G2), token -> destination column.
        dest_cols = dst_col[occ2d]
        if not (np.sort(dest_cols, axis=1) == np.arange(n)[None, :]).all():
            raise RoutingError(
                "phase-2 precondition violated on product routing"
            )
        row_rounds = [r2.route_destinations(dest_cols[a]) for a in range(m)]
        layers.extend(
            _merge_rounds(row_rounds, lambda a, b, b2: (a * n + b, a * n + b2))
        )
        new = np.empty_like(occ2d)
        new[np.broadcast_to(np.arange(m)[:, None], (m, n)), dest_cols] = occ2d
        occ2d = new

        # Phase 3: within columns, token -> destination row.
        dest_rows = dst_row[occ2d]
        if not (np.sort(dest_rows, axis=0) == np.arange(m)[:, None]).all():
            raise RoutingError(
                "phase-3 precondition violated on product routing"
            )
        col_rounds = [r1.route_destinations(dest_rows[:, b]) for b in range(n)]
        layers.extend(
            _merge_rounds(col_rounds, lambda b, a, a2: (a * n + b, a2 * n + b))
        )
        new = np.empty_like(occ2d)
        new[dest_rows, np.broadcast_to(np.arange(n), (m, n))] = occ2d
        occ2d = new

        if not np.array_equal(dst[occ2d.ravel()], np.arange(N)):
            raise RoutingError("product routing realized the wrong permutation")

        # Layers from _merge_rounds are never empty, so the (u_seq, v_seq)
        # form assemble_layers expects loses nothing.
        swap_layers = [tuple(zip(*layer)) for layer in layers]
        canon = kb.assemble_layers(N, swap_layers, compact=self.compact)
        return Schedule._from_canonical(N, canon, {"backend": kb.name})

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        self._check_sizes(graph, perm)
        prod = self._as_product(graph)
        sched = self._route_oriented(prod, perm)
        if self.both_orientations:
            N = prod.n_vertices
            mapping = np.array(
                [prod.swap_factors_vertex(v) for v in range(N)], dtype=np.int64
            )
            swapped = prod.swap_factors()
            sched2 = self._route_oriented(swapped, perm.relabel(mapping))
            back = np.array(
                [swapped.swap_factors_vertex(v) for v in range(N)], dtype=np.int64
            )
            sched2 = sched2.relabel(back)
            if sched2.depth < sched.depth:
                sched = sched2
        if self.validate:
            sched.verify(prod if not isinstance(graph, GridGraph) else graph, perm)
        return sched
