"""Routing-via-matchings: schedules, primitives, grid and product routers."""

from .base import (
    Router,
    RouterInfo,
    available_routers,
    describe_routers,
    make_router,
    register_router,
    route,
)
from .cartesian_route import (
    CartesianRouter,
    CompleteFactorRouter,
    CycleFactorRouter,
    FactorRouter,
    GenericFactorRouter,
    PathFactorRouter,
    factor_router_for,
    path_order,
)
from .complete_route import CompleteRouter, involution_matching
from .cycle_route import CycleRouter, cycle_order
from .exact import ExactRouter, all_matchings, optimal_depth
from .grid_local import LocalGridRouter, LocalRouteInfo, delta_weights
from .grid_naive import (
    NaiveGridRouter,
    grid_route_with_sigmas,
    route_both_orientations,
    sigmas_from_decomposition,
)
from .hybrid import BestOfRouter, make_hybrid_router
from .path_oet import oet_depth, oet_rounds, oet_rounds_batched
from .schedule import Schedule
from .tree_route import TreeRouter

__all__ = [
    "Schedule",
    "Router",
    "register_router",
    "make_router",
    "available_routers",
    "describe_routers",
    "RouterInfo",
    "route",
    "oet_rounds",
    "oet_rounds_batched",
    "oet_depth",
    "grid_route_with_sigmas",
    "sigmas_from_decomposition",
    "route_both_orientations",
    "NaiveGridRouter",
    "LocalGridRouter",
    "LocalRouteInfo",
    "delta_weights",
    "CycleRouter",
    "cycle_order",
    "CompleteRouter",
    "involution_matching",
    "ExactRouter",
    "all_matchings",
    "optimal_depth",
    "TreeRouter",
    "BestOfRouter",
    "make_hybrid_router",
    "CartesianRouter",
    "FactorRouter",
    "PathFactorRouter",
    "CycleFactorRouter",
    "CompleteFactorRouter",
    "GenericFactorRouter",
    "factor_router_for",
    "path_order",
]
