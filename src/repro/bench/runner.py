"""Benchmark sweep runner.

Produces the data behind every figure reproduction: a cartesian sweep of
(grid size x workload x router x seed), recording schedule depth, size
and router wall-clock time per instance, with mean aggregation across
seeds. Used both by the pytest-benchmark targets under ``benchmarks/``
and by the runnable examples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import mean
from typing import Callable, Iterable, Sequence

from ..graphs.grid import GridGraph
from ..perm.generators import WORKLOADS
from ..perm.metrics import depth_lower_bound
from ..perm.permutation import Permutation
from ..routing.base import Router

__all__ = ["SweepRecord", "SweepResult", "run_sweep", "aggregate"]


@dataclass(frozen=True)
class SweepRecord:
    """One (grid, workload, router, seed) measurement."""

    rows: int
    cols: int
    workload: str
    router: str
    seed: int
    depth: int
    size: int
    seconds: float
    lower_bound: int

    @property
    def grid_label(self) -> str:
        """Human-readable grid size, e.g. ``"16x16"``."""
        return f"{self.rows}x{self.cols}"


@dataclass
class SweepResult:
    """All records of a sweep plus convenient group/aggregate access."""

    records: list[SweepRecord] = field(default_factory=list)

    def filter(
        self,
        workload: str | None = None,
        router: str | None = None,
        rows: int | None = None,
    ) -> list[SweepRecord]:
        """Records matching all given criteria."""
        out = self.records
        if workload is not None:
            out = [r for r in out if r.workload == workload]
        if router is not None:
            out = [r for r in out if r.router == router]
        if rows is not None:
            out = [r for r in out if r.rows == rows]
        return out

    def mean_depth(self, workload: str, router: str, rows: int) -> float:
        """Mean schedule depth across seeds for one configuration."""
        recs = self.filter(workload, router, rows)
        return mean(r.depth for r in recs) if recs else float("nan")

    def mean_seconds(self, workload: str, router: str, rows: int) -> float:
        """Mean router wall-clock across seeds for one configuration."""
        recs = self.filter(workload, router, rows)
        return mean(r.seconds for r in recs) if recs else float("nan")

    def grid_sizes(self) -> list[int]:
        """Distinct square-grid sizes present, ascending."""
        return sorted({r.rows for r in self.records})


def run_sweep(
    grid_sizes: Sequence[int],
    workloads: Sequence[str],
    routers: dict[str, Router],
    seeds: Iterable[int] = (0, 1, 2),
    workload_generators: dict[str, Callable[..., Permutation]] | None = None,
    verify: bool = False,
) -> SweepResult:
    """Run the full sweep on square grids.

    Parameters
    ----------
    grid_sizes:
        Square grid side lengths.
    workloads:
        Workload names (keys of :data:`repro.perm.generators.WORKLOADS`
        unless ``workload_generators`` overrides them).
    routers:
        Label -> router instance.
    seeds:
        Workload seeds; results are recorded per seed.
    workload_generators:
        Optional replacement/extension of the named generator registry.
    verify:
        Additionally verify every schedule (slower; for test sweeps).

    Returns
    -------
    :class:`SweepResult` with one record per configuration per seed.
    """
    gens = dict(WORKLOADS)
    if workload_generators:
        gens.update(workload_generators)
    result = SweepResult()
    for n in grid_sizes:
        grid = GridGraph(n, n)
        for wname in workloads:
            for seed in seeds:
                perm = gens[wname](grid, seed=seed)
                lb = depth_lower_bound(grid, perm)
                for rname, router in routers.items():
                    t0 = time.perf_counter()
                    sched = router.route(grid, perm)
                    dt = time.perf_counter() - t0
                    if verify:
                        sched.verify(grid, perm)
                    result.records.append(
                        SweepRecord(
                            rows=n,
                            cols=n,
                            workload=wname,
                            router=rname,
                            seed=seed,
                            depth=sched.depth,
                            size=sched.size,
                            seconds=dt,
                            lower_bound=lb,
                        )
                    )
    return result


def aggregate(
    result: SweepResult, value: str = "depth"
) -> dict[tuple[str, str], list[tuple[int, float]]]:
    """Series view: ``(workload, router) -> [(grid size, mean value)]``.

    ``value`` is ``"depth"``, ``"size"`` or ``"seconds"``.
    """
    series: dict[tuple[str, str], list[tuple[int, float]]] = {}
    keys = sorted(
        {(r.workload, r.router) for r in result.records}
    )
    for wname, rname in keys:
        points = []
        for n in result.grid_sizes():
            recs = result.filter(wname, rname, n)
            if not recs:
                continue
            points.append((n, mean(getattr(r, value) for r in recs)))
        series[(wname, rname)] = points
    return series
