"""Benchmark harness: sweeps, tables, claim checks."""

from .reporting import ClaimCheck, ascii_plot, check_claims, series_table, to_csv
from .runner import SweepRecord, SweepResult, aggregate, run_sweep

__all__ = [
    "SweepRecord",
    "SweepResult",
    "run_sweep",
    "aggregate",
    "series_table",
    "ascii_plot",
    "to_csv",
    "ClaimCheck",
    "check_claims",
]
