"""Text tables, CSV export and claim checks for figure reproductions.

The paper's figures are line plots; in a terminal-first reproduction we
print the same series as aligned tables (one row per grid size, one
column per (workload, router) series) plus explicit *claim checks* —
the qualitative statements the paper's evaluation makes, evaluated
against the measured data and printed as PASS/FAIL lines. These outputs
are what ``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass

from .runner import SweepResult, aggregate

__all__ = [
    "series_table",
    "ascii_plot",
    "to_csv",
    "ClaimCheck",
    "check_claims",
]


def series_table(
    result: SweepResult,
    value: str = "depth",
    workloads: list[str] | None = None,
    routers: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a sweep as an aligned text table of mean values."""
    series = aggregate(result, value)
    keys = sorted(series.keys())
    if workloads is not None:
        keys = [k for k in keys if k[0] in workloads]
    if routers is not None:
        keys = [k for k in keys if k[1] in routers]
    sizes = result.grid_sizes()

    headers = ["grid"] + [f"{w}/{r}" for (w, r) in keys]
    rows: list[list[str]] = []
    for n in sizes:
        row = [f"{n}x{n}"]
        for key in keys:
            val = dict(series[key]).get(n)
            if val is None:
                row.append("-")
            elif value == "seconds":
                row.append(f"{val * 1e3:.1f}ms")
            else:
                row.append(f"{val:.1f}")
        rows.append(row)

    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in rows:
        out.write("  ".join(c.rjust(w) for c, w in zip(r, widths)) + "\n")
    return out.getvalue()


_MARKERS = "ox+*#@%&"


def ascii_plot(
    result: SweepResult,
    value: str = "depth",
    workloads: list[str] | None = None,
    routers: list[str] | None = None,
    width: int = 64,
    height: int = 18,
    title: str | None = None,
) -> str:
    """Render sweep series as an ASCII line chart (figure-style view).

    One marker character per (workload, router) series; the y-axis is
    switched to log scale automatically when the value range spans more
    than a factor of 50 (as the paper's Figure 4 effectively needs).
    """
    series = aggregate(result, value)
    keys = sorted(series.keys())
    if workloads is not None:
        keys = [k for k in keys if k[0] in workloads]
    if routers is not None:
        keys = [k for k in keys if k[1] in routers]
    points = [(k, p) for k in keys for p in series[k] if not math.isnan(p[1])]
    if not points:
        return "(no data)\n"

    xs = sorted({p[0] for _, p in points})
    ys = [p[1] for _, p in points]
    y_min, y_max = min(ys), max(ys)
    log_y = y_min > 0 and y_max / max(y_min, 1e-12) > 50

    def y_coord(v: float) -> int:
        if log_y:
            lo, hi = math.log(y_min), math.log(y_max)
            t = (math.log(v) - lo) / (hi - lo) if hi > lo else 0.0
        else:
            t = (v - y_min) / (y_max - y_min) if y_max > y_min else 0.0
        return int(round((height - 1) * (1.0 - t)))

    def x_coord(x: float) -> int:
        lo, hi = xs[0], xs[-1]
        t = (x - lo) / (hi - lo) if hi > lo else 0.0
        return int(round((width - 1) * t))

    canvas = [[" "] * width for _ in range(height)]
    for idx, key in enumerate(keys):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, v in series[key]:
            if math.isnan(v):
                continue
            canvas[y_coord(v)][x_coord(x)] = marker

    def fmt(v: float) -> str:
        return f"{v:.3g}"

    out = io.StringIO()
    if title:
        out.write(title + ("  [log y]" if log_y else "") + "\n")
    label_top, label_bot = fmt(y_max), fmt(y_min)
    pad = max(len(label_top), len(label_bot))
    for r, row in enumerate(canvas):
        label = label_top if r == 0 else label_bot if r == height - 1 else ""
        out.write(f"{label:>{pad}} |" + "".join(row) + "\n")
    out.write(" " * pad + " +" + "-" * width + "\n")
    x_axis = f"{xs[0]}x{xs[0]}" + " " * max(1, width - 12) + f"{xs[-1]}x{xs[-1]}"
    out.write(" " * (pad + 2) + x_axis + "\n")
    for idx, (w, rname) in enumerate(keys):
        out.write(f"  {_MARKERS[idx % len(_MARKERS)]} = {w}/{rname}\n")
    return out.getvalue()


def to_csv(result: SweepResult) -> str:
    """Raw records as CSV text (one line per measurement)."""
    lines = ["rows,cols,workload,router,seed,depth,size,seconds,lower_bound"]
    for r in result.records:
        lines.append(
            f"{r.rows},{r.cols},{r.workload},{r.router},{r.seed},"
            f"{r.depth},{r.size},{r.seconds:.6f},{r.lower_bound}"
        )
    return "\n".join(lines) + "\n"


@dataclass
class ClaimCheck:
    """One qualitative paper claim evaluated against measured data."""

    claim: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim} — {self.detail}"


def check_claims(
    result: SweepResult,
    *,
    local: str = "local",
    ats: str = "ats",
    min_size_for_time: int = 16,
) -> list[ClaimCheck]:
    """Evaluate the paper's Figure 4/5 claims on a sweep.

    Checks (each on the largest grid sizes present):

    * F4a: locality-aware depth < ATS depth on random permutations;
    * F4b: locality-aware depth <= ~1.5x ATS depth on block-local
      permutations ("similar depths");
    * F5:  locality-aware is at least several times faster than ATS on
      grids of size >= ``min_size_for_time`` (the paper: an order of
      magnitude on larger grids).
    """
    checks: list[ClaimCheck] = []
    sizes = result.grid_sizes()
    if not sizes:
        return checks
    # The Fig5 speed claim is about "larger grids"; evaluate it only on
    # sizes inside that regime rather than extrapolating from toy sweeps.
    big = [n for n in sizes if n >= min_size_for_time]

    def have(workload: str, router: str) -> bool:
        return bool(result.filter(workload, router))

    if have("random", local) and have("random", ats):
        ok = all(
            result.mean_depth("random", local, n)
            < result.mean_depth("random", ats, n)
            for n in sizes
        )
        ratios = [
            result.mean_depth("random", ats, n)
            / result.mean_depth("random", local, n)
            for n in sizes
        ]
        checks.append(
            ClaimCheck(
                "Fig4: locality-aware beats ATS depth on random permutations",
                ok,
                f"ATS/local depth ratios by size: "
                + ", ".join(f"{n}:{q:.2f}" for n, q in zip(sizes, ratios)),
            )
        )
    if have("block_local", local) and have("block_local", ats):
        ok = all(
            result.mean_depth("block_local", local, n)
            <= 1.5 * result.mean_depth("block_local", ats, n)
            for n in sizes
        )
        checks.append(
            ClaimCheck(
                "Fig4: similar depth on disjoint-block-local permutations",
                ok,
                "local <= 1.5x ATS at every size",
            )
        )
    if big and have("random", local) and have("random", ats):
        speedups = [
            result.mean_seconds("random", ats, n)
            / max(result.mean_seconds("random", local, n), 1e-12)
            for n in big
        ]
        ok = all(s >= 3.0 for s in speedups) and max(speedups, default=0) >= 8.0
        checks.append(
            ClaimCheck(
                "Fig5: locality-aware much faster than ATS on larger grids",
                ok,
                "speedups: "
                + ", ".join(f"{n}: {s:.1f}x" for n, s in zip(big, speedups)),
            )
        )
    return checks
