"""Pluggable kernel backends for the routing core.

The hot primitives of the paper's algorithms — frontier/distance scoring,
Hopcroft–Karp matching, odd–even transposition, token displacement and
swap-schedule assembly — live behind the :class:`KernelBackend` protocol
with two built-in implementations:

* ``python`` — the pure-Python reference kernels (always available),
* ``numpy`` — vectorized kernels, the default whenever numpy imports.

Select a backend explicitly (``make_router("local", backend="numpy")``),
through the ``REPRO_KERNEL_BACKEND`` environment variable, or let
:func:`get_backend` resolve the ambient default. All backends are
result-identical by contract; only speed differs. See
:mod:`repro.kernels.base` for the resolution rules and the equivalence
contract.
"""

from .base import (
    ENV_VAR,
    KernelBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
)

__all__ = [
    "ENV_VAR",
    "KernelBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
]
