"""The kernel-backend protocol and its registry.

A :class:`KernelBackend` bundles the *hot primitives* of the routing core
— frontier/distance scoring, bipartite matching, odd–even transposition,
token displacement accounting and swap-schedule assembly — behind one
interface so the same routers can run on interchangeable implementations:

* ``python`` — the reference kernels, pure Python (plus the pre-existing
  reference modules they delegate to). Always available; this is the
  semantic ground truth the equivalence test suite pins the others to.
* ``numpy`` — vectorized kernels (batched BFS layering, frontier-batched
  Hopcroft–Karp augmentation that advances every augmenting path one
  level per array pass, array reductions, fancy-indexed schedule
  assembly). Selected by default when numpy is importable. The batched
  augmentation engages adaptively (dense, many-root phases) and can be
  disabled wholesale with ``REPRO_HK_BATCH=0``, which restores the
  sequential per-root DFS exactly.

**Equivalence contract.** Every backend must produce *identical* outputs
for identical inputs — not merely valid ones. Routers interleave kernel
calls with shared orchestration, so any divergence (a different matching,
a different tie-break) would change the emitted schedule. The hypothesis
suite in ``tests/test_kernels_equiv.py`` enforces byte-identical
schedules across backends for every router with a vectorized path.

Resolution order for :func:`get_backend`:

1. an explicit argument (a backend instance or name — unknown names and
   an explicitly requested ``numpy`` without numpy installed raise
   :class:`~repro.errors.KernelError`);
2. the ``REPRO_KERNEL_BACKEND`` environment variable (``numpy`` without
   numpy installed falls back to ``python``);
3. ``numpy`` when importable, else ``python``.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

from ..errors import KernelError

__all__ = [
    "ENV_VAR",
    "KernelBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
]

#: Environment variable naming the ambient default backend.
ENV_VAR = "REPRO_KERNEL_BACKEND"


class KernelBackend(ABC):
    """Hot routing primitives behind a swappable implementation.

    Array-typed parameters are numpy arrays (the shared orchestration in
    ``repro.routing`` / ``repro.matching`` is array-based); pure-Python
    backends convert at the boundary. Return values may be lists or
    arrays — callers normalize with ``np.asarray`` where needed — but
    their *values* must be backend-independent (see module docstring).
    """

    #: Registry name, also surfaced in ``Schedule`` metadata and metrics.
    name: str = "?"

    # ------------------------------------------------------------------
    # frontier / distance scoring
    # ------------------------------------------------------------------
    @abstractmethod
    def delta_weights(
        self, rows_used: Sequence[Any], n_rows: int
    ) -> Any:
        """The ``Delta(M, r)`` matrix: ``W[k, r] = sum |rows_k - r|``.

        ``rows_used[k]`` holds the ``2n`` source/destination rows of
        matching ``k``; the result is a ``(len(rows_used), n_rows)``
        float matrix.
        """

    @abstractmethod
    def factor_delta_weights(self, dist: Any, rows_used: Sequence[Any]) -> Any:
        """Generalized ``Delta`` for Cartesian products.

        ``dist`` is the ``(m, m)`` factor-graph distance matrix; the
        result is ``W[k, r] = sum_t dist[rows_k[t], r]``.
        """

    # ------------------------------------------------------------------
    # bipartite matching
    # ------------------------------------------------------------------
    @abstractmethod
    def hopcroft_karp(
        self, n_left: int, n_right: int, adj: Sequence[Sequence[int]]
    ) -> tuple[list[int], list[int], int]:
        """Maximum bipartite matching (``match_left, match_right, size``).

        Must be augmenting-order-equivalent to the reference
        implementation in :mod:`repro.matching.hopcroft_karp`: the BFS
        distance labels are canonical, and the DFS must consume ``adj``
        in the given order, so the returned matching is identical across
        backends for identical adjacency.
        """

    @abstractmethod
    def bottleneck_feasible(self, weights: Any, threshold: float) -> list[int] | None:
        """One feasibility probe of the bottleneck threshold search.

        Considers the square ``weights`` matrix restricted to entries
        ``<= threshold`` (adjacency in ascending column order per row)
        and returns the left-to-right assignment when a perfect matching
        exists, else ``None``.
        """

    @abstractmethod
    def peel_matching(
        self,
        tokens: Any,
        src_col: Any,
        dst_col: Any,
        cost: Any,
        n_cols: int,
    ) -> Sequence[int] | None:
        """One perfect-matching peel of the column multigraph window.

        For each (source column, destination column) pair, the cheapest
        token by ``(cost, token id)`` represents the pair; support-edge
        adjacency is ordered by first occurrence of the pair in ascending
        token order (the reference dict-insertion order). Returns the
        ``n_cols`` chosen token ids (index = source column) or ``None``
        when the support graph has no perfect matching.
        """

    # ------------------------------------------------------------------
    # path routing (odd–even transposition)
    # ------------------------------------------------------------------
    @abstractmethod
    def oet_swap_layers(
        self,
        dest: Any,
        pos_stride: int,
        path_stride: int,
        swap_offset: int,
        optimize_parity: bool = True,
        start_parity: int = 0,
    ) -> list[tuple[Any, Any]]:
        """Batched OET over parallel paths, mapped to graph vertex ids.

        ``dest`` is the ``(L, k)`` destination-index matrix (each column
        a permutation of ``0..L-1``). A compare-exchange at position
        ``p`` on path ``c`` becomes the vertex swap
        ``(u, u + swap_offset)`` with ``u = p * pos_stride +
        c * path_stride``. Returns one ``(u_seq, v_seq)`` pair per
        non-empty round; with ``optimize_parity`` both starting parities
        are tried and the shallower result returned (ties favour
        ``start_parity``).
        """

    # ------------------------------------------------------------------
    # token position/target tracking
    # ------------------------------------------------------------------
    @abstractmethod
    def total_displacement(self, dist: Any, dest: Sequence[int]) -> int:
        """``sum_v dist[v, dest[v]]`` — the token-swapping lower-bound mass."""

    # ------------------------------------------------------------------
    # schedule assembly
    # ------------------------------------------------------------------
    @abstractmethod
    def assemble_layers(
        self,
        n_vertices: int,
        swap_layers: Sequence[tuple[Any, Any]],
        compact: bool = True,
    ) -> Any:
        """Validate + canonicalize swap layers, optionally ASAP-compacted.

        ``swap_layers`` holds ``(u_seq, v_seq)`` pairs as produced by
        :meth:`oet_swap_layers` (concatenated across routing phases).
        The result is a canonical-layer payload accepted by
        ``Schedule._from_canonical``: either nested tuples — per layer,
        ``(min, max)`` swaps sorted ascending — or an equivalent
        :class:`~repro.routing.schedule.FlatLayers` array bundle (the
        numpy backend's choice; the Schedule materializes tuples
        lazily). Either way the resulting schedule must equal what
        ``Schedule(n, layers)`` (plus ``.compact()`` when requested)
        would produce.

        Raises
        ------
        ScheduleError
            On out-of-range endpoints, self-swaps, or vertex reuse
            within a layer.
        """

    @abstractmethod
    def compact_serial_swaps(
        self, n_vertices: int, swaps: Sequence[tuple[int, int]]
    ) -> tuple[tuple[tuple[int, int], ...], ...]:
        """ASAP-parallelize a serial swap list into canonical layers.

        Equivalent to
        ``Schedule.from_serial_swaps(n, swaps).compact().layers``.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_CACHE: dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name``.

    The factory is called lazily on first resolution and may raise
    :class:`~repro.errors.KernelError` when its dependencies are absent
    (that is how the ``numpy`` entry reports an uninstalled numpy).
    """
    if name in _FACTORIES:
        raise KernelError(f"kernel backend {name!r} already registered")
    _FACTORIES[name] = factory


def _load(name: str) -> KernelBackend:
    try:
        return _CACHE[name]
    except KeyError:
        pass
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KernelError(
            f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
        ) from None
    backend = factory()
    _CACHE[name] = backend
    return backend


def _python_factory() -> KernelBackend:
    from ._python import PythonKernelBackend

    return PythonKernelBackend()


def _numpy_factory() -> KernelBackend:
    try:
        from ._numpy import NumpyKernelBackend
    except ImportError as exc:
        raise KernelError(f"numpy kernel backend unavailable: {exc}") from exc
    return NumpyKernelBackend()


register_backend("python", _python_factory)
register_backend("numpy", _numpy_factory)


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def get_backend(spec: "KernelBackend | str | None" = None) -> KernelBackend:
    """Resolve a backend instance (see module docstring for the order).

    Parameters
    ----------
    spec:
        A :class:`KernelBackend` (returned as-is), a registered name, or
        ``None`` for the ambient default (``REPRO_KERNEL_BACKEND``, then
        numpy-if-importable, then python).

    Raises
    ------
    KernelError
        For an unknown name, or an *explicitly* requested ``numpy``
        backend when numpy is not importable. Ambient resolution falls
        back to ``python`` instead of raising.
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is not None:
        return _load(str(spec))
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        try:
            return _load(env)
        except KernelError:
            if env == "numpy":
                # Documented fallback: env-configured numpy without numpy
                # installed degrades to the reference backend.
                return _load("python")
            raise
    try:
        return _load("numpy")
    except KernelError:
        return _load("python")


def default_backend_name() -> str:
    """Name of the backend ambient resolution currently selects."""
    return get_backend().name


def available_backends() -> list[str]:
    """Names of registered backends that resolve successfully, sorted."""
    out = []
    for name in sorted(_FACTORIES):
        try:
            _load(name)
        except KernelError:
            continue
        out.append(name)
    return out
