"""The pure-Python reference kernel backend.

Semantics ground truth: these kernels either delegate to the original
reference modules (Hopcroft–Karp, :class:`~repro.routing.schedule.Schedule`
construction) or are direct loop transcriptions of the pre-backend code
paths. The ``numpy`` backend is pinned to this one by the equivalence
test suite, so any behavioral change here is a semantic change for every
backend.

Array arguments are converted to plain lists at the boundary; all inner
loops are numpy-free. This is also the fallback that serves when numpy
is not importable (see :func:`repro.kernels.get_backend`).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import KernelError
from .base import KernelBackend

__all__ = ["PythonKernelBackend"]


def _as_int_list(seq: Any) -> list[int]:
    """Materialize an array-like of integers as a plain list of ints."""
    if hasattr(seq, "tolist"):
        return seq.tolist()
    return [int(x) for x in seq]


def _oet_rounds(dest_rows: list[list[int]], start_parity: int) -> list[list[tuple[int, int]]]:
    """Pure-Python batched OET; mirrors ``oet_rounds_batched`` exactly.

    ``dest_rows`` is the ``(L, k)`` destination matrix as nested lists.
    Returns non-empty rounds of ``(position, path)`` swaps, in the same
    order the vectorized version emits them (position-major, then path).
    """
    L = len(dest_rows)
    k = len(dest_rows[0]) if L else 0
    if L <= 1 or k == 0:
        return []

    def is_sorted(D: list[list[int]]) -> bool:
        return all(D[i][c] == i for i in range(L) for c in range(k))

    if is_sorted(dest_rows):
        return []
    D = [row[:] for row in dest_rows]
    even_idx = range(0, L - 1, 2)
    odd_idx = range(1, L - 1, 2)
    rounds: list[list[tuple[int, int]]] = []
    for r in range(L + 1):
        idx = even_idx if (r + start_parity) % 2 == 0 else odd_idx
        swaps: list[tuple[int, int]] = []
        for i in idx:
            row, nxt = D[i], D[i + 1]
            for c in range(k):
                if row[c] > nxt[c]:
                    swaps.append((i, c))
        if swaps:
            for i, c in swaps:
                D[i][c], D[i + 1][c] = D[i + 1][c], D[i][c]
            rounds.append(swaps)
            if is_sorted(D):
                return rounds
    if not is_sorted(D):  # pragma: no cover - defensive
        raise KernelError("odd-even transposition failed to converge")
    return rounds


class PythonKernelBackend(KernelBackend):
    """Reference kernels in pure Python (always available)."""

    name = "python"

    # ------------------------------------------------------------------
    # frontier / distance scoring
    # ------------------------------------------------------------------
    def delta_weights(self, rows_used: Sequence[Any], n_rows: int) -> list[list[float]]:
        out: list[list[float]] = []
        for ru in rows_used:
            rows = _as_int_list(ru)
            out.append(
                [float(sum(abs(i - r) for i in rows)) for r in range(n_rows)]
            )
        return out

    def factor_delta_weights(
        self, dist: Any, rows_used: Sequence[Any]
    ) -> list[list[float]]:
        d = [_as_int_list(row) for row in dist]
        m = len(d)
        out: list[list[float]] = []
        for ru in rows_used:
            rows = _as_int_list(ru)
            out.append(
                [float(sum(d[i][r] for i in rows)) for r in range(m)]
            )
        return out

    # ------------------------------------------------------------------
    # bipartite matching
    # ------------------------------------------------------------------
    def hopcroft_karp(
        self, n_left: int, n_right: int, adj: Sequence[Sequence[int]]
    ) -> tuple[list[int], list[int], int]:
        # The reference implementation *is* the pure-Python one.
        from ..matching.hopcroft_karp import hopcroft_karp

        return hopcroft_karp(n_left, n_right, adj)

    def bottleneck_feasible(self, weights: Any, threshold: float) -> list[int] | None:
        rows = [
            [float(x) for x in row] if not hasattr(row, "tolist") else row.tolist()
            for row in weights
        ]
        k = len(rows)
        adj = [
            [j for j in range(k) if rows[i][j] <= threshold] for i in range(k)
        ]
        match_l, _, size = self.hopcroft_karp(k, k, adj)
        return match_l if size == k else None

    def peel_matching(
        self,
        tokens: Any,
        src_col: Any,
        dst_col: Any,
        cost: Any,
        n_cols: int,
    ) -> list[int] | None:
        toks = _as_int_list(tokens)
        sc = _as_int_list(src_col)
        dc = _as_int_list(dst_col)
        cs = cost.tolist() if hasattr(cost, "tolist") else [float(x) for x in cost]
        best: dict[tuple[int, int], tuple[float, int]] = {}
        for c, j, jp, t in zip(cs, sc, dc, toks):
            key = (j, jp)
            cand = (float(c), t)
            prev = best.get(key)
            if prev is None or cand < prev:
                best[key] = cand
        adj: list[list[int]] = [[] for _ in range(n_cols)]
        for (j, jp) in best:
            adj[j].append(jp)
        match_l, _, size = self.hopcroft_karp(n_cols, n_cols, adj)
        if size < n_cols:
            return None
        return [best[(j, match_l[j])][1] for j in range(n_cols)]

    # ------------------------------------------------------------------
    # path routing
    # ------------------------------------------------------------------
    def oet_swap_layers(
        self,
        dest: Any,
        pos_stride: int,
        path_stride: int,
        swap_offset: int,
        optimize_parity: bool = True,
        start_parity: int = 0,
    ) -> list[tuple[list[int], list[int]]]:
        D = [_as_int_list(row) for row in dest]
        parities = (
            (start_parity, 1 - start_parity) if optimize_parity else (start_parity,)
        )
        best: list[list[tuple[int, int]]] | None = None
        for p in parities:
            rounds = _oet_rounds(D, p)
            if best is None or len(rounds) < len(best):
                best = rounds
        assert best is not None
        layers: list[tuple[list[int], list[int]]] = []
        for swaps in best:
            u = [pos * pos_stride + c * path_stride for pos, c in swaps]
            layers.append((u, [x + swap_offset for x in u]))
        return layers

    # ------------------------------------------------------------------
    # token position/target tracking
    # ------------------------------------------------------------------
    def total_displacement(self, dist: Any, dest: Sequence[int]) -> int:
        rows = [_as_int_list(row) for row in dist]
        return int(sum(rows[v][d] for v, d in enumerate(_as_int_list(dest))))

    # ------------------------------------------------------------------
    # schedule assembly
    # ------------------------------------------------------------------
    def assemble_layers(
        self,
        n_vertices: int,
        swap_layers: Sequence[tuple[Any, Any]],
        compact: bool = True,
    ) -> tuple[tuple[tuple[int, int], ...], ...]:
        # Validation and canonicalization are exactly the reference
        # Schedule constructor; compaction the reference ASAP pass.
        from ..routing.schedule import Schedule

        sched = Schedule(
            n_vertices,
            (zip(_as_int_list(u), _as_int_list(v)) for u, v in swap_layers),
        )
        if compact:
            sched = sched.compact()
        return sched.layers

    def compact_serial_swaps(
        self, n_vertices: int, swaps: Sequence[tuple[int, int]]
    ) -> tuple[tuple[tuple[int, int], ...], ...]:
        from ..routing.schedule import Schedule

        return Schedule.from_serial_swaps(n_vertices, swaps).compact().layers
