"""The numpy-accelerated kernel backend.

Vectorization strategy per kernel:

* **Hopcroft–Karp** — the BFS layering runs level-synchronously over a
  CSR adjacency with one gather per level (``indices`` fancy-indexed by
  the frontier's edge ranges) instead of a Python queue. The augmenting
  pass is *frontier-batched*: every still-free root runs its reference
  DFS simultaneously as one array program (explicit per-root stacks,
  one vectorized frame-scan per tick), speculating against the
  phase-start state; a prefix-commit step then keeps the longest run of
  roots (in reference root order) whose reads are disjoint from earlier
  roots' writes, so the committed matching is byte-identical to running
  the reference DFS root by root. Deferred roots re-run against the
  updated state; small phases and collapsed batches fall back to the
  exact sequential DFS (also selectable via ``REPRO_HK_BATCH=0``).
* **Matching peel** — the best-token-per-column-pair reduction becomes a
  single ``lexsort`` by ``(pair, cost, token)``; the reference dict's
  insertion order (first occurrence of a pair in ascending token order)
  is reconstructed from ``np.unique(..., return_index=True)`` so the
  Hopcroft–Karp adjacency — and hence the peeled matching — is
  byte-identical.
* **Odd–even transposition** — delegates to the already-vectorized
  :func:`repro.routing.path_oet.oet_rounds_batched` and maps rounds to
  vertex-id swap arrays with array arithmetic.
* **Schedule assembly** — canonicalization, validation (range,
  self-swap, per-layer vertex-disjointness via one offset ``bincount``)
  and the ASAP re-timing all operate on flat swap arrays; within a
  layer swaps touch disjoint vertices, so the ASAP level
  ``t = max(avail[lo], avail[hi])`` is a gather/scatter per layer.

Small instances short-circuit to the reference implementation (same
results, less array overhead).

Why the batched augmentation is exact
-------------------------------------

Distance labels use the integer sentinel ``n_left + 1`` for
"unreached"/"dead" (real labels never exceed ``n_left - 1``). Within a
phase the DFS stack always holds one vertex per depth and
``dist[stack[d]] == d``, which yields two load-bearing facts:

1. *Level filtering is lossless.* For any edge ``(u, v)`` whose right
   vertex is matched at phase start, the BFS guarantees
   ``dist[match_r[v]] <= dist[u] + 1``. Augmentations re-match rights
   only to *shallower* lefts and never free a right mid-phase, so an
   edge failing ``dist[match_r[v]] == dist[u] + 1`` at phase start can
   never pass the DFS runtime check later in the phase. Dropping those
   edges changes nothing the reference DFS ever does.
2. *Speculation is safe to validate by read/write sets.* A root's DFS
   reads only ``match_r`` of scanned rights and ``dist`` of their
   partners; it writes only ``dist`` of vertices it exhausts and the
   match arrays along its augmenting path. A speculative run over the
   committed state is therefore identical to the reference run exactly
   when its read set misses every earlier root's write set — the
   prefix-commit rule. The first pending root always commits, so every
   pass makes progress.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Sequence

import numpy as np

from ..errors import ScheduleError
from ..profiling import stage
from .base import KernelBackend

__all__ = ["NumpyKernelBackend"]

#: Below this edge count Hopcroft–Karp delegates to the reference code.
_SMALL_E = 64

#: Below this many pending free roots a phase skips the level filter
#: entirely (its O(E) setup would outweigh the dead edges it skips).
_FILTER_MIN_ROOTS = 8

#: Below this many pending free roots a phase augments sequentially.
_MIN_BATCH_ROOTS = 64

#: Minimum mean filtered degree (level-graph edges per reachable left
#: vertex) for the lock-step pass to engage. Wide frames amortize the
#: fixed per-tick array cost over many edges; narrow ones make the
#: sequential DFS strictly cheaper (measured crossover ~2-8, winners
#: sit at 8+).
_MIN_BATCH_DEG = 6

#: Below this many still-running speculative roots the lock-step loop
#: finishes them one by one in Python (array ticks stop paying off).
_MIN_LOCKSTEP = 3

#: Initial speculation window: how many pending roots a pass runs
#: simultaneously. Adapted per pass (doubled on a full commit, shrunk
#: toward the observed conflict horizon otherwise) so contended phases
#: stop wasting speculative work that cannot commit.
_INIT_WINDOW = 128

#: Environment switch: ``0``/``false`` disables the batched augmentation
#: (sequential reference-order DFS, the pre-batching behaviour). The
#: results are identical either way; this is a rollback/benchmark lever.
_BATCH_ENV = "REPRO_HK_BATCH"


def _batch_enabled() -> bool:
    """Whether the frontier-batched augmentation pass is enabled."""
    flag = os.environ.get(_BATCH_ENV, "1").strip().lower()
    return flag not in {"0", "false", "off", "no"}


def _bfs_layers(
    n_left: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    src: np.ndarray,
    match_l: np.ndarray,
    match_r: np.ndarray,
) -> tuple[np.ndarray, bool]:
    """Level-synchronous BFS layering; returns (left distances, augmentable).

    Reproduces the reference queue BFS exactly: free left vertices are
    level 0, and a matched left vertex gets level ``d + 1`` when first
    reached from level ``d`` through its partner. ``found`` is True iff
    any explored edge ends at a free right vertex. ``src`` is the
    per-edge source vertex (``indptr`` expanded once per call, shared
    across phases). Distances are int64 with ``n_left + 1`` as the
    unreached sentinel (comparisons behave exactly like the reference's
    ``inf`` labels because finite labels never exceed ``n_left - 1``).
    """
    unreached = n_left + 1
    dist = np.full(n_left, unreached, dtype=np.int64)
    fmask = match_l == -1
    dist[fmask] = 0
    found = False
    d = 0
    while True:
        ws = match_r[indices[fmask[src]]]
        if not found and bool((ws == -1).any()):
            found = True
        cand = ws[ws >= 0]
        cand = cand[dist[cand] == unreached]
        if cand.size == 0:
            break
        d += 1
        dist[cand] = d
        fmask = np.zeros(n_left, dtype=bool)
        fmask[cand] = True
    return dist, found


def _bfs_layers_pr7(
    n_left: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    match_l: np.ndarray,
    match_r: np.ndarray,
) -> tuple[np.ndarray, bool]:
    """The PR-7 BFS layering, preserved verbatim for ``REPRO_HK_BATCH=0``.

    The rollback path must reproduce the pre-batching backend exactly —
    including its performance profile — so it keeps the original
    frontier-gather formulation rather than sharing :func:`_bfs_layers`.
    Results are identical; only the constant factors differ.
    """
    unreached = n_left + 1
    dist = np.full(n_left, unreached, dtype=np.int64)
    frontier = np.flatnonzero(match_l == -1)
    dist[frontier] = 0
    found = False
    d = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        ends = np.cumsum(counts)
        flat = np.arange(total) + np.repeat(starts - (ends - counts), counts)
        ws = match_r[indices[flat]]
        if not found and bool((ws == -1).any()):
            found = True
        cand = ws[ws >= 0]
        cand = cand[dist[cand] == unreached]
        if cand.size == 0:
            break
        d += 1
        dist[cand] = d
        frontier = np.unique(cand)
    return dist, found


def _augment_roots(
    roots: Iterable[int],
    adj: Sequence[Sequence[int]],
    dist: list[int],
    match_l: list[int],
    match_r: list[int],
    unreached: int,
) -> int:
    """Sequential augmenting DFS over ``roots``, identical to the reference.

    Operates on plain lists (the fast representation for a Python inner
    loop); ``dist`` entries are set to ``unreached`` on frame exhaustion
    exactly where the reference writes its infinity label.
    """
    size = 0
    for root in roots:
        if match_l[root] != -1:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        path: list[tuple[int, int]] = []
        augmented = False
        while stack:
            u, idx = stack[-1]
            au = adj[u]
            if idx >= len(au):
                dist[u] = unreached
                stack.pop()
                if path:
                    path.pop()
                continue
            stack[-1] = (u, idx + 1)
            v = au[idx]
            w = match_r[v]
            if w == -1:
                path.append((u, v))
                for pu, pv in path:
                    match_l[pu] = pv
                    match_r[pv] = pu
                augmented = True
                break
            if dist[w] == dist[u] + 1:
                path.append((u, v))
                stack.append((w, 0))
        if augmented:
            size += 1
    return size


def _greedy_phase(
    n_left: int,
    adj: Sequence[Sequence[int]],
    match_l: list[int],
    match_r: list[int],
) -> int:
    """Exact first phase: match each left vertex to its first free right.

    On an empty matching every left vertex is free, so the first BFS
    labels them all level 0. A right vertex matched *during* the phase
    is matched to one of those level-0 lefts, and the DFS descend check
    ``dist[match_r[v]] == dist[u] + 1`` compares 0 to 1 — it can never
    pass. The reference DFS therefore degenerates to first-free-right
    greedy, and this tight loop is byte-identical to it.
    """
    size = 0
    for u in range(n_left):
        for v in adj[u]:
            if match_r[v] == -1:
                match_l[u] = v
                match_r[v] = u
                size += 1
                break
    return size


def _level_filter(
    n_left: int,
    src: np.ndarray,
    indices: np.ndarray,
    dist: np.ndarray,
    match_r: np.ndarray,
    unreached: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Phase-start level-graph filter: CSR in, traversal-equivalent CSR out.

    Keeps edge ``(u, v)`` iff ``dist[u]`` is finite and ``v`` is free or
    its partner sits exactly one BFS level below ``u`` (see the module
    docstring for why dropped edges can never be traversed later in the
    phase). Skipped edges carry no reads that matter: their runtime
    check fails under every mid-phase state, so excluding them leaves
    the committed execution byte-identical.
    """
    du = dist[src]
    mr = match_r[indices]
    matched = mr >= 0
    dmr = np.where(matched, dist[np.where(matched, mr, 0)], 0)
    keep = du != unreached
    keep &= ~matched | (dmr == du + 1)
    f_indices = indices[keep]
    f_counts = np.bincount(src[keep], minlength=n_left)
    f_indptr = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(f_counts)))
    return f_indptr.astype(np.int64), f_indices


def _cat(parts: list[np.ndarray]) -> np.ndarray:
    """Concatenate int64 coordinate chunks (empty-safe)."""
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


class _ReadLog:
    """Sparse read/kill footprint of one speculative lock-step pass.

    Coordinate chunks, not dense ``(roots, vertices)`` bitmaps: the
    footprint of a pass is proportional to the edges its DFS frames
    actually examine, so validation cost follows the work done instead
    of ``O(roots * n)`` (which dominated the dense formulation).
    """

    __slots__ = ("rr_r", "rr_v", "lr_r", "lr_w", "pi_r", "pi_u")

    def __init__(self) -> None:
        self.rr_r: list[np.ndarray] = []  # (root, right) reads of match_r
        self.rr_v: list[np.ndarray] = []
        self.lr_r: list[np.ndarray] = []  # (root, left) reads of dist
        self.lr_w: list[np.ndarray] = []
        self.pi_r: list[np.ndarray] = []  # (root, left) private dead labels
        self.pi_u: list[np.ndarray] = []

    def add_rights(self, roots: np.ndarray, vs: np.ndarray) -> None:
        self.rr_r.append(roots)
        self.rr_v.append(vs)

    def add_lefts(self, roots: np.ndarray, ws: np.ndarray) -> None:
        self.lr_r.append(roots)
        self.lr_w.append(ws)

    def add_kills(self, roots: np.ndarray, us: np.ndarray) -> None:
        self.pi_r.append(roots)
        self.pi_u.append(us)

    def add_py(self, r: int, rv: list[int], lw: list[int], pu: list[int]) -> None:
        one = np.int64(r)
        if rv:
            self.add_rights(np.full(len(rv), one), np.asarray(rv, dtype=np.int64))
        if lw:
            self.add_lefts(np.full(len(lw), one), np.asarray(lw, dtype=np.int64))
        if pu:
            self.add_kills(np.full(len(pu), one), np.asarray(pu, dtype=np.int64))


def _finish_root(
    r: int,
    stack_u: np.ndarray,
    stack_idx: np.ndarray,
    chosen_v: np.ndarray,
    top: np.ndarray,
    running: np.ndarray,
    augmented: np.ndarray,
    aug_len: np.ndarray,
    reads: "_ReadLog",
    priv_inf: np.ndarray,
    f_indptr: np.ndarray,
    f_indices: np.ndarray,
    dist: np.ndarray,
    match_r: np.ndarray,
    unreached: int,
) -> None:
    """Finish one speculative root's DFS in Python (lock-step tail case).

    Continues the exact reference walk from the root's current stack,
    still recording reads and private dead labels so the prefix-commit
    validation sees the complete footprint.
    """
    t = int(top[r])
    su, si, cv = stack_u[r], stack_idx[r], chosen_v[r]
    pi = priv_inf[r]
    rv: list[int] = []
    lw: list[int] = []
    pu: list[int] = []
    while t >= 0:
        u = int(su[t])
        p = int(f_indptr[u]) + int(si[t])
        if p >= int(f_indptr[u + 1]):
            pi[u] = True
            pu.append(u)
            t -= 1
            continue
        si[t] += 1
        v = int(f_indices[p])
        rv.append(v)
        w = int(match_r[v])
        if w == -1:
            cv[t] = v
            augmented[r] = True
            aug_len[r] = t + 1
            break
        lw.append(w)
        dw = unreached if pi[w] else int(dist[w])
        if dw == t + 1:
            cv[t] = v
            t += 1
            su[t] = w
            si[t] = 0
    top[r] = t
    running[r] = False
    reads.add_py(r, rv, lw, pu)


def _augment_pass(
    active: np.ndarray,
    f_indptr: np.ndarray,
    f_indices: np.ndarray,
    dist: np.ndarray,
    match_l: np.ndarray,
    match_r: np.ndarray,
    width: int,
    unreached: int,
) -> tuple[int, int]:
    """One speculative lock-step pass over the pending free roots.

    Every root advances one DFS *frame scan* per tick: the remaining
    filtered adjacency of its stack top is examined in one vectorized
    sweep (reads recorded), the first admissible edge chosen, and the
    stack pushed/popped accordingly — so a tick costs a fixed number of
    array ops for all roots together instead of a Python iteration per
    edge. Admissibility evaluated at scan time equals admissibility at
    reference exam time because within a pass the committed state is
    frozen and a frame's candidate partners cannot be killed from
    deeper frames (one vertex per depth; see module docstring).

    Commits the longest valid prefix (reference root order) and returns
    ``(committed_roots, committed_augmentations)``; ``dist``/``match_l``
    /``match_r`` are mutated in place. Always commits at least one root.
    """
    n_roots = int(active.size)
    n_left = int(dist.size)
    n_right = int(match_r.size)
    stack_u = np.zeros((n_roots, width), dtype=np.int64)
    stack_idx = np.zeros((n_roots, width), dtype=np.int64)
    chosen_v = np.zeros((n_roots, width), dtype=np.int64)
    top = np.zeros(n_roots, dtype=np.int64)
    stack_u[:, 0] = active
    running = np.ones(n_roots, dtype=bool)
    augmented = np.zeros(n_roots, dtype=bool)
    aug_len = np.zeros(n_roots, dtype=np.int64)
    # Dense only where the hot path needs random access (the per-root
    # dead-label overlay); the validation footprint is sparse.
    priv_inf = np.zeros((n_roots, n_left), dtype=bool)
    reads = _ReadLog()

    rows = np.arange(n_roots)
    while rows.size:
        if rows.size < _MIN_LOCKSTEP:
            for r in rows.tolist():
                _finish_root(
                    r, stack_u, stack_idx, chosen_v, top, running,
                    augmented, aug_len, reads, priv_inf,
                    f_indptr, f_indices, dist, match_r, unreached,
                )
            break
        t = top[rows]
        u = stack_u[rows, t]
        start = f_indptr[u] + stack_idx[rows, t]
        cnt = f_indptr[u + 1] - start
        has = cnt > 0
        empty = rows[~has]
        if empty.size:
            # Frame already exhausted: the root's private dead label.
            priv_inf[empty, u[~has]] = True
            reads.add_kills(empty, u[~has])
            top[empty] -= 1
            running[empty[top[empty] < 0]] = False
        sr = rows[has]
        if sr.size:
            scnt = cnt[has]
            st = t[has]
            total = int(scnt.sum())
            ends = np.cumsum(scnt)
            seg = ends - scnt
            flat = np.arange(total) + np.repeat(start[has] - seg, scnt)
            v = f_indices[flat]
            local = np.repeat(np.arange(sr.size), scnt)
            rows_e = sr[local]
            w = match_r[v]
            wm = w >= 0
            wsafe = np.where(wm, w, 0)
            dw = np.where(priv_inf[rows_e, wsafe], unreached, dist[wsafe])
            adm = ~wm | (dw == st[local] + 1)
            pos = np.where(adm, np.arange(total), total)
            first = np.minimum.reduceat(pos, seg)
            found = first < total
            # Record reads *exactly* as the reference examines edges: up
            # to and including the chosen one (the whole remainder when
            # the frame exhausts). Anything beyond would be a phantom
            # read that only manufactures spurious commit conflicts.
            exam = np.arange(total) <= first[local]
            rows_x = rows_e[exam]
            vx = v[exam]
            wx = w[exam]
            reads.add_rights(rows_x, vx)
            wxm = wx >= 0
            if wxm.any():
                reads.add_lefts(rows_x[wxm], wx[wxm])
            nf = sr[~found]
            if nf.size:
                # Whole remaining frame scanned, nothing admissible.
                priv_inf[nf, u[has][~found]] = True
                reads.add_kills(nf, u[has][~found])
                top[nf] -= 1
                running[nf[top[nf] < 0]] = False
            if found.any():
                fr = sr[found]
                fpos = first[found]
                fv = v[fpos]
                ft = st[found]
                # Resume after the chosen edge when popping back.
                stack_idx[fr, ft] += fpos - seg[found] + 1
                chosen_v[fr, ft] = fv
                fw = w[fpos]
                free = fw == -1
                if free.any():
                    ar = fr[free]
                    augmented[ar] = True
                    aug_len[ar] = ft[free] + 1
                    running[ar] = False
                desc = ~free
                if desc.any():
                    dr = fr[desc]
                    dt = ft[desc] + 1
                    stack_u[dr, dt] = fw[desc]
                    stack_idx[dr, dt] = 0
                    top[dr] = dt
        rows = rows[running[rows]]

    # ---- prefix-commit validation -----------------------------------
    # Earliest writer per vertex, then one sparse lookup per recorded
    # read: root r conflicts iff it read a vertex some root < r wrote.
    # The minimal conflicting r only involves writers < r (all of which
    # commit), so the rule is exact, not merely conservative.
    rows_aug = np.flatnonzero(augmented)
    if rows_aug.size:
        lens = aug_len[rows_aug]
        wr_root = np.repeat(rows_aug, lens)
        pos = np.arange(int(lens.sum())) - np.repeat(np.cumsum(lens) - lens, lens)
        wr_v = chosen_v[wr_root, pos]
    else:
        wr_root = wr_v = np.empty(0, dtype=np.int64)
    k = n_roots
    rr_r, rr_v = _cat(reads.rr_r), _cat(reads.rr_v)
    if wr_v.size and rr_r.size:
        min_w = np.full(n_right, n_roots, dtype=np.int64)
        np.minimum.at(min_w, wr_v, wr_root)
        hit = rr_r[min_w[rr_v] < rr_r]
        if hit.size:
            k = int(hit.min())
    pi_r, pi_u = _cat(reads.pi_r), _cat(reads.pi_u)
    lr_r, lr_w = _cat(reads.lr_r), _cat(reads.lr_w)
    if pi_u.size and lr_r.size:
        min_k = np.full(n_left, n_roots, dtype=np.int64)
        np.minimum.at(min_k, pi_u, pi_r)
        hit = lr_r[min_k[lr_w] < lr_r]
        if hit.size:
            k = min(k, int(hit.min()))

    # ---- apply the committed prefix ---------------------------------
    dist[pi_u[pi_r < k]] = unreached
    committed_aug = rows_aug[rows_aug < k]
    n_aug = int(committed_aug.size)
    if n_aug:
        lens = aug_len[committed_aug]
        rep = np.repeat(committed_aug, lens)
        pos = np.arange(int(lens.sum())) - np.repeat(np.cumsum(lens) - lens, lens)
        path_l = stack_u[rep, pos]
        path_r = chosen_v[rep, pos]
        match_l[path_l] = path_r
        match_r[path_r] = path_l
    return k, n_aug


def _hk_csr_batched(
    n_left: int,
    n_right: int,
    adj: Sequence[Sequence[int]],
    indptr: np.ndarray,
    indices: np.ndarray,
) -> tuple[list[int], list[int], int]:
    """Hopcroft–Karp with the frontier-batched augmentation pass.

    Phase 1 is the exact greedy special case (:func:`_greedy_phase`);
    later phases run the speculative lock-step batch over the filtered
    level graph with an adaptive window, degrading to the sequential
    filtered DFS when commits collapse. Every path is byte-identical to
    the reference; only the work schedule differs.
    """
    unreached = n_left + 1
    ml = [-1] * n_left
    mr = [-1] * n_right
    with stage("matching"):
        size = _greedy_phase(n_left, adj, ml, mr)
        src = np.repeat(
            np.arange(n_left, dtype=np.int64), indptr[1:] - indptr[:-1]
        )
        # Plain lists are the master match representation: most phases
        # finish in the sequential tail, and round-tripping arrays
        # through lists every phase costs more than it saves.
        while -1 in ml:
            ml_arr = np.asarray(ml, dtype=np.int64)
            mr_arr = np.asarray(mr, dtype=np.int64)
            dist, found = _bfs_layers(
                n_left, indptr, indices, src, ml_arr, mr_arr
            )
            if not found:
                break
            active = [u for u in range(n_left) if ml[u] == -1]
            if len(active) < _FILTER_MIN_ROOTS:
                # Few roots examine few edges: the level filter's O(E)
                # setup would cost more than the dead edges it skips.
                size += _augment_roots(
                    active, adj, dist.tolist(), ml, mr, unreached
                )
                continue
            # Filtered level graph: the DFS then touches only edges
            # that can actually be traversed, which is where most of
            # the sequential tail's time went.
            f_indptr, f_indices = _level_filter(
                n_left, src, indices, dist, mr_arr, unreached
            )
            finite = dist[dist != unreached]
            width = int(finite.max()) + 1 if finite.size else 1
            narrow = int(f_indices.size) < _MIN_BATCH_DEG * max(1, int(finite.size))
            if len(active) < _MIN_BATCH_ROOTS or narrow:
                size += _augment_roots(
                    active,
                    _split_adj(f_indptr, f_indices),
                    dist.tolist(),
                    ml,
                    mr,
                    unreached,
                )
                continue
            # Wide phase: speculative lock-step over the filtered graph
            # with an adaptive window, degrading to the sequential tail
            # when commits collapse.
            act = np.asarray(active, dtype=np.int64)
            f_adj: list[list[int]] | None = None
            window = _INIT_WINDOW
            strikes = 0
            while act.size:
                if act.size < _MIN_BATCH_ROOTS or strikes >= 2:
                    if f_adj is None:
                        f_adj = _split_adj(f_indptr, f_indices)
                    ml = ml_arr.tolist()
                    mr = mr_arr.tolist()
                    size += _augment_roots(
                        act.tolist(), f_adj, dist.tolist(), ml, mr, unreached
                    )
                    break
                batch = min(int(act.size), window)
                committed, n_aug = _augment_pass(
                    act[:batch], f_indptr, f_indices, dist,
                    ml_arr, mr_arr, width, unreached,
                )
                size += n_aug
                act = act[committed:]
                if committed == batch:
                    strikes = 0
                    window = min(2 * window, 1 << 16)
                else:
                    # Shrink toward the observed conflict horizon; count
                    # a strike when speculation is mostly wasted.
                    window = max(_MIN_BATCH_ROOTS, 2 * committed)
                    strikes = strikes + 1 if 4 * committed < batch else 0
            else:
                ml = ml_arr.tolist()
                mr = mr_arr.tolist()
    return ml, mr, size


def _hk_csr(
    n_left: int,
    n_right: int,
    adj: Sequence[Sequence[int]],
    indptr: np.ndarray,
    indices: np.ndarray,
) -> tuple[list[int], list[int], int]:
    """Hopcroft–Karp over a CSR adjacency (with list mirror for the DFS)."""
    if indices.size < _SMALL_E:
        from ..matching.hopcroft_karp import hopcroft_karp

        return hopcroft_karp(n_left, n_right, adj)
    if _batch_enabled():
        return _hk_csr_batched(n_left, n_right, adj, indptr, indices)
    unreached = n_left + 1
    match_l = [-1] * n_left
    match_r = [-1] * n_right
    size = 0
    with stage("matching"):
        while True:
            dist_arr, found = _bfs_layers_pr7(
                n_left,
                indptr,
                indices,
                np.asarray(match_l, dtype=np.int64),
                np.asarray(match_r, dtype=np.int64),
            )
            if not found:
                break
            size += _augment_roots(
                range(n_left), adj, dist_arr.tolist(), match_l, match_r, unreached
            )
    return match_l, match_r, size


def _split_adj(indptr: np.ndarray, indices: np.ndarray) -> list[list[int]]:
    """Per-left-vertex adjacency lists out of a CSR layout.

    Plain-list slicing: one bulk ``tolist`` then O(1)-ish slices, far
    cheaper than ``np.split`` (which materializes an array per vertex).
    """
    idx = indices.tolist()
    ptr = indptr.tolist()
    return [idx[ptr[i] : ptr[i + 1]] for i in range(len(ptr) - 1)]


class NumpyKernelBackend(KernelBackend):
    """Vectorized kernels; result-identical to the ``python`` backend."""

    name = "numpy"

    # ------------------------------------------------------------------
    # frontier / distance scoring
    # ------------------------------------------------------------------
    def delta_weights(self, rows_used: Sequence[Any], n_rows: int) -> np.ndarray:
        rows = np.stack([np.asarray(ru, dtype=np.int64) for ru in rows_used])
        r = np.arange(n_rows, dtype=np.int64)
        return np.abs(rows[:, :, None] - r[None, None, :]).sum(axis=1).astype(float)

    def factor_delta_weights(
        self, dist: Any, rows_used: Sequence[Any]
    ) -> np.ndarray:
        d = np.asarray(dist)
        rows = np.stack([np.asarray(ru, dtype=np.int64) for ru in rows_used])
        return d[rows].sum(axis=1).astype(float)

    # ------------------------------------------------------------------
    # bipartite matching
    # ------------------------------------------------------------------
    def hopcroft_karp(
        self, n_left: int, n_right: int, adj: Sequence[Sequence[int]]
    ) -> tuple[list[int], list[int], int]:
        counts = np.fromiter(
            (len(a) for a in adj), dtype=np.int64, count=n_left
        )
        indptr = np.concatenate(([0], np.cumsum(counts)))
        if int(counts.sum()):
            indices = np.concatenate(
                [np.asarray(a, dtype=np.int64) for a in adj if len(a)]
            )
        else:
            indices = np.empty(0, dtype=np.int64)
        return _hk_csr(n_left, n_right, adj, indptr, indices)

    def bottleneck_feasible(self, weights: Any, threshold: float) -> list[int] | None:
        w = np.asarray(weights, dtype=float)
        k = w.shape[0]
        # np.nonzero is row-major, so per-row columns come out ascending —
        # the reference adjacency order.
        ii, jj = np.nonzero(w <= threshold)
        row_deg = np.bincount(ii, minlength=k)
        # Existence shortcut: a row or column with no edge under the
        # threshold makes a perfect matching impossible, and the
        # reference returns None without its matching ever being
        # observed — so skipping Hopcroft–Karp entirely is
        # result-identical. Most infeasible threshold probes in the
        # bottleneck binary search die here for free.
        if not (row_deg.all() and np.bincount(jj, minlength=k).all()):
            return None
        indptr = np.concatenate(([0], np.cumsum(row_deg)))
        match_l, _, size = _hk_csr(k, k, _split_adj(indptr, jj), indptr, jj)
        return match_l if size == k else None

    def peel_matching(
        self,
        tokens: Any,
        src_col: Any,
        dst_col: Any,
        cost: Any,
        n_cols: int,
    ) -> np.ndarray | None:
        tok = np.asarray(tokens, dtype=np.int64)
        sc = np.asarray(src_col, dtype=np.int64)
        dc = np.asarray(dst_col, dtype=np.int64)
        cs = np.asarray(cost, dtype=float)
        n = int(n_cols)
        # Existence shortcut: a perfect matching needs every column to
        # appear on both sides. When one is missing the reference also
        # returns None (its matching is never observed), so skipping the
        # Hopcroft–Karp run entirely is result-identical — and it removes
        # the matching cost from most failing window probes.
        if not (
            np.bincount(sc, minlength=n).all()
            and np.bincount(dc, minlength=n).all()
        ):
            return None
        pair = sc * n + dc
        # Cheapest (cost, token) representative per column pair.
        order = np.lexsort((tok, cs, pair))
        sp = pair[order]
        is_first = np.empty(sp.size, dtype=bool)
        is_first[0] = True
        is_first[1:] = sp[1:] != sp[:-1]
        starts = np.flatnonzero(is_first)
        rep_idx = order[starts]  # token-array index of each pair's representative
        rep_pair = sp[starts]  # ascending unique pair codes
        # Support-edge adjacency in the reference insertion order: first
        # occurrence of each pair in ascending token order, grouped by
        # source column (CSR), preserving that order within a column.
        _, first_idx = np.unique(pair, return_index=True)
        rank = np.empty(rep_pair.size, dtype=np.int64)
        rank[np.argsort(first_idx, kind="stable")] = np.arange(rep_pair.size)
        js = rep_pair // n
        csr_order = np.lexsort((rank, js))
        indices = (rep_pair % n)[csr_order]
        indptr = np.concatenate(([0], np.cumsum(np.bincount(js, minlength=n))))
        match_l, _, size = _hk_csr(
            n, n, _split_adj(indptr, indices), indptr, indices
        )
        if size < n:
            return None
        want = np.arange(n, dtype=np.int64) * n + np.asarray(
            match_l, dtype=np.int64
        )
        return tok[rep_idx[np.searchsorted(rep_pair, want)]]

    # ------------------------------------------------------------------
    # path routing
    # ------------------------------------------------------------------
    def oet_swap_layers(
        self,
        dest: Any,
        pos_stride: int,
        path_stride: int,
        swap_offset: int,
        optimize_parity: bool = True,
        start_parity: int = 0,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        from ..routing.path_oet import oet_rounds_batched

        D = np.asarray(dest)
        best = oet_rounds_batched(D, start_parity=start_parity, validate=False)
        if optimize_parity:
            other = oet_rounds_batched(
                D, start_parity=1 - start_parity, validate=False
            )
            if len(other) < len(best):
                best = other
        layers: list[tuple[np.ndarray, np.ndarray]] = []
        for pos, cc in best:
            u = pos * pos_stride + cc * path_stride
            layers.append((u, u + swap_offset))
        return layers

    # ------------------------------------------------------------------
    # token position/target tracking
    # ------------------------------------------------------------------
    def total_displacement(self, dist: Any, dest: Sequence[int]) -> int:
        d = np.asarray(dist)
        t = np.asarray(dest, dtype=np.int64)
        return int(d[np.arange(t.size), t].sum())

    # ------------------------------------------------------------------
    # schedule assembly
    # ------------------------------------------------------------------
    def assemble_layers(
        self,
        n_vertices: int,
        swap_layers: Sequence[tuple[Any, Any]],
        compact: bool = True,
    ) -> Any:
        from ..routing.schedule import FlatLayers

        n = int(n_vertices)
        if n <= 0:
            raise ScheduleError(f"n_vertices must be positive, got {n}")
        us: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        sizes: list[int] = []
        for u, v in swap_layers:
            ua = np.asarray(u, dtype=np.int64).ravel()
            va = np.asarray(v, dtype=np.int64).ravel()
            if ua.size != va.size:
                raise ScheduleError("swap layer endpoint arrays differ in length")
            us.append(ua)
            vs.append(va)
            sizes.append(int(ua.size))
        n_layers = len(sizes)
        if n_layers == 0:
            return ()
        U = np.concatenate(us)
        V = np.concatenate(vs)
        lo = np.minimum(U, V)
        hi = np.maximum(U, V)
        if U.size:
            if int(lo.min()) < 0 or int(hi.max()) >= n:
                raise ScheduleError("swap out of range")
            if bool((lo == hi).any()):
                raise ScheduleError("self-swap in layer")
            lid = np.repeat(np.arange(n_layers, dtype=np.int64), sizes)
            # Disjointness within each layer: any duplicate (layer, vertex)
            # key is adjacent after a sort (cheaper than a bincount over
            # the full n_layers * n key space).
            keys = np.sort(np.concatenate([lid * n + lo, lid * n + hi]))
            if keys.size > 1 and bool((keys[1:] == keys[:-1]).any()):
                raise ScheduleError("vertex reuse within a layer")
        else:
            lid = np.zeros(0, dtype=np.int64)

        if compact:
            if U.size == 0:
                return ()
            avail = np.zeros(n, dtype=np.int64)
            t = np.empty(U.size, dtype=np.int64)
            pos = 0
            for s in sizes:
                if s:
                    sl = slice(pos, pos + s)
                    los, his = lo[sl], hi[sl]
                    tt = np.maximum(avail[los], avail[his])
                    t[sl] = tt
                    avail[los] = tt + 1
                    avail[his] = tt + 1
                pos += s
            group, n_groups = t, int(t.max()) + 1
        else:
            group, n_groups = lid, n_layers
            if U.size == 0:
                return tuple(() for _ in range(n_groups))

        # Within a group swaps are vertex-disjoint, so (group, lo) is
        # unique: pack (group, lo, hi) into one int64 key and use a single
        # non-stable argsort instead of a 3-key lexsort (~3x faster).
        if n_groups * n * n < 2**62:
            order = np.argsort((group * n + lo) * n + hi)
        else:  # pragma: no cover - astronomically large schedules
            order = np.lexsort((hi, lo, group))
        counts = np.bincount(group, minlength=n_groups)
        # Return the flat payload directly: Schedule materializes nested
        # tuples lazily, so losing best-of candidates never build them.
        return FlatLayers(lo[order], hi[order], counts)

    def compact_serial_swaps(
        self, n_vertices: int, swaps: Sequence[tuple[int, int]]
    ) -> tuple[tuple[tuple[int, int], ...], ...]:
        # Inherently sequential (each swap's level depends on the previous
        # one's); a plain loop over int lists is the fast implementation.
        n = int(n_vertices)
        avail = [0] * n
        new_layers: list[list[tuple[int, int]]] = []
        for u, v in swaps:
            u, v = int(u), int(v)
            if u == v:
                raise ScheduleError(f"self-swap on vertex {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ScheduleError(f"swap ({u}, {v}) out of range")
            if u > v:
                u, v = v, u
            t = avail[u] if avail[u] >= avail[v] else avail[v]
            if t == len(new_layers):
                new_layers.append([])
            new_layers[t].append((u, v))
            avail[u] = avail[v] = t + 1
        return tuple(tuple(sorted(layer)) for layer in new_layers)
