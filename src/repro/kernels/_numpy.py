"""The numpy-accelerated kernel backend.

Vectorization strategy per kernel:

* **Hopcroft–Karp** — the BFS layering runs level-synchronously over a
  CSR adjacency with one gather per level (``indices`` fancy-indexed by
  the frontier's edge ranges) instead of a Python queue; the augmenting
  DFS stays sequential because augmentations mutate the matching between
  steps. BFS distance labels are canonical (independent of intra-level
  order), and the DFS consumes adjacency in the reference order, so the
  matching is identical to the pure-Python backend's.
* **Matching peel** — the best-token-per-column-pair reduction becomes a
  single ``lexsort`` by ``(pair, cost, token)``; the reference dict's
  insertion order (first occurrence of a pair in ascending token order)
  is reconstructed from ``np.unique(..., return_index=True)`` so the
  Hopcroft–Karp adjacency — and hence the peeled matching — is
  byte-identical.
* **Odd–even transposition** — delegates to the already-vectorized
  :func:`repro.routing.path_oet.oet_rounds_batched` and maps rounds to
  vertex-id swap arrays with array arithmetic.
* **Schedule assembly** — canonicalization, validation (range,
  self-swap, per-layer vertex-disjointness via one offset ``bincount``)
  and the ASAP re-timing all operate on flat swap arrays; within a
  layer swaps touch disjoint vertices, so the ASAP level
  ``t = max(avail[lo], avail[hi])`` is a gather/scatter per layer.

Small instances short-circuit to the reference implementation (same
results, less array overhead).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import ScheduleError
from ..profiling import stage
from .base import KernelBackend

__all__ = ["NumpyKernelBackend"]

#: Below this edge count Hopcroft–Karp delegates to the reference code.
_SMALL_E = 64

_INF = float("inf")


def _bfs_layers(
    n_left: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    match_l: np.ndarray,
    match_r: np.ndarray,
) -> tuple[np.ndarray, bool]:
    """Level-synchronous BFS layering; returns (left distances, augmentable).

    Reproduces the reference queue BFS exactly: free left vertices are
    level 0, and a matched left vertex gets level ``d + 1`` when first
    reached from level ``d`` through its partner. ``found`` is True iff
    any explored edge ends at a free right vertex.
    """
    dist = np.full(n_left, _INF)
    frontier = np.flatnonzero(match_l == -1)
    dist[frontier] = 0.0
    found = False
    d = 0.0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        ends = np.cumsum(counts)
        flat = np.arange(total) + np.repeat(starts - (ends - counts), counts)
        ws = match_r[indices[flat]]
        if not found and (ws == -1).any():
            found = True
        cand = ws[ws >= 0]
        cand = cand[dist[cand] == _INF]
        if cand.size == 0:
            break
        d += 1.0
        dist[cand] = d
        frontier = np.unique(cand)
    return dist, found


def _augment_phase(
    n_left: int,
    adj: Sequence[Sequence[int]],
    dist: list[float],
    match_l: list[int],
    match_r: list[int],
) -> int:
    """Sequential augmenting DFS pass, identical to the reference one."""
    size = 0
    for root in range(n_left):
        if match_l[root] != -1:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        path: list[tuple[int, int]] = []
        augmented = False
        while stack:
            u, idx = stack[-1]
            au = adj[u]
            if idx >= len(au):
                dist[u] = _INF
                stack.pop()
                if path:
                    path.pop()
                continue
            stack[-1] = (u, idx + 1)
            v = au[idx]
            w = match_r[v]
            if w == -1:
                path.append((u, v))
                for pu, pv in path:
                    match_l[pu] = pv
                    match_r[pv] = pu
                augmented = True
                break
            if dist[w] == dist[u] + 1:
                path.append((u, v))
                stack.append((w, 0))
        if augmented:
            size += 1
    return size


def _hk_csr(
    n_left: int,
    n_right: int,
    adj: Sequence[Sequence[int]],
    indptr: np.ndarray,
    indices: np.ndarray,
) -> tuple[list[int], list[int], int]:
    """Hopcroft–Karp over a CSR adjacency (with list mirror for the DFS)."""
    if indices.size < _SMALL_E:
        from ..matching.hopcroft_karp import hopcroft_karp

        return hopcroft_karp(n_left, n_right, adj)
    match_l = [-1] * n_left
    match_r = [-1] * n_right
    size = 0
    with stage("matching"):
        while True:
            dist_arr, found = _bfs_layers(
                n_left,
                indptr,
                indices,
                np.asarray(match_l, dtype=np.int64),
                np.asarray(match_r, dtype=np.int64),
            )
            if not found:
                break
            size += _augment_phase(
                n_left, adj, dist_arr.tolist(), match_l, match_r
            )
    return match_l, match_r, size


def _split_adj(indptr: np.ndarray, indices: np.ndarray) -> list[list[int]]:
    """Per-left-vertex adjacency lists out of a CSR layout.

    Plain-list slicing: one bulk ``tolist`` then O(1)-ish slices, far
    cheaper than ``np.split`` (which materializes an array per vertex).
    """
    idx = indices.tolist()
    ptr = indptr.tolist()
    return [idx[ptr[i] : ptr[i + 1]] for i in range(len(ptr) - 1)]


class NumpyKernelBackend(KernelBackend):
    """Vectorized kernels; result-identical to the ``python`` backend."""

    name = "numpy"

    # ------------------------------------------------------------------
    # frontier / distance scoring
    # ------------------------------------------------------------------
    def delta_weights(self, rows_used: Sequence[Any], n_rows: int) -> np.ndarray:
        rows = np.stack([np.asarray(ru, dtype=np.int64) for ru in rows_used])
        r = np.arange(n_rows, dtype=np.int64)
        return np.abs(rows[:, :, None] - r[None, None, :]).sum(axis=1).astype(float)

    def factor_delta_weights(
        self, dist: Any, rows_used: Sequence[Any]
    ) -> np.ndarray:
        d = np.asarray(dist)
        rows = np.stack([np.asarray(ru, dtype=np.int64) for ru in rows_used])
        return d[rows].sum(axis=1).astype(float)

    # ------------------------------------------------------------------
    # bipartite matching
    # ------------------------------------------------------------------
    def hopcroft_karp(
        self, n_left: int, n_right: int, adj: Sequence[Sequence[int]]
    ) -> tuple[list[int], list[int], int]:
        counts = np.fromiter(
            (len(a) for a in adj), dtype=np.int64, count=n_left
        )
        indptr = np.concatenate(([0], np.cumsum(counts)))
        if int(counts.sum()):
            indices = np.concatenate(
                [np.asarray(a, dtype=np.int64) for a in adj if len(a)]
            )
        else:
            indices = np.empty(0, dtype=np.int64)
        return _hk_csr(n_left, n_right, adj, indptr, indices)

    def bottleneck_feasible(self, weights: Any, threshold: float) -> list[int] | None:
        w = np.asarray(weights, dtype=float)
        k = w.shape[0]
        # np.nonzero is row-major, so per-row columns come out ascending —
        # the reference adjacency order.
        ii, jj = np.nonzero(w <= threshold)
        indptr = np.concatenate(([0], np.cumsum(np.bincount(ii, minlength=k))))
        match_l, _, size = _hk_csr(k, k, _split_adj(indptr, jj), indptr, jj)
        return match_l if size == k else None

    def peel_matching(
        self,
        tokens: Any,
        src_col: Any,
        dst_col: Any,
        cost: Any,
        n_cols: int,
    ) -> np.ndarray | None:
        tok = np.asarray(tokens, dtype=np.int64)
        sc = np.asarray(src_col, dtype=np.int64)
        dc = np.asarray(dst_col, dtype=np.int64)
        cs = np.asarray(cost, dtype=float)
        n = int(n_cols)
        # Existence shortcut: a perfect matching needs every column to
        # appear on both sides. When one is missing the reference also
        # returns None (its matching is never observed), so skipping the
        # Hopcroft–Karp run entirely is result-identical — and it removes
        # the matching cost from most failing window probes.
        if not (
            np.bincount(sc, minlength=n).all()
            and np.bincount(dc, minlength=n).all()
        ):
            return None
        pair = sc * n + dc
        # Cheapest (cost, token) representative per column pair.
        order = np.lexsort((tok, cs, pair))
        sp = pair[order]
        is_first = np.empty(sp.size, dtype=bool)
        is_first[0] = True
        is_first[1:] = sp[1:] != sp[:-1]
        starts = np.flatnonzero(is_first)
        rep_idx = order[starts]  # token-array index of each pair's representative
        rep_pair = sp[starts]  # ascending unique pair codes
        # Support-edge adjacency in the reference insertion order: first
        # occurrence of each pair in ascending token order, grouped by
        # source column (CSR), preserving that order within a column.
        _, first_idx = np.unique(pair, return_index=True)
        rank = np.empty(rep_pair.size, dtype=np.int64)
        rank[np.argsort(first_idx, kind="stable")] = np.arange(rep_pair.size)
        js = rep_pair // n
        csr_order = np.lexsort((rank, js))
        indices = (rep_pair % n)[csr_order]
        indptr = np.concatenate(([0], np.cumsum(np.bincount(js, minlength=n))))
        match_l, _, size = _hk_csr(
            n, n, _split_adj(indptr, indices), indptr, indices
        )
        if size < n:
            return None
        want = np.arange(n, dtype=np.int64) * n + np.asarray(
            match_l, dtype=np.int64
        )
        return tok[rep_idx[np.searchsorted(rep_pair, want)]]

    # ------------------------------------------------------------------
    # path routing
    # ------------------------------------------------------------------
    def oet_swap_layers(
        self,
        dest: Any,
        pos_stride: int,
        path_stride: int,
        swap_offset: int,
        optimize_parity: bool = True,
        start_parity: int = 0,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        from ..routing.path_oet import oet_rounds_batched

        D = np.asarray(dest)
        best = oet_rounds_batched(D, start_parity=start_parity, validate=False)
        if optimize_parity:
            other = oet_rounds_batched(
                D, start_parity=1 - start_parity, validate=False
            )
            if len(other) < len(best):
                best = other
        layers: list[tuple[np.ndarray, np.ndarray]] = []
        for pos, cc in best:
            u = pos * pos_stride + cc * path_stride
            layers.append((u, u + swap_offset))
        return layers

    # ------------------------------------------------------------------
    # token position/target tracking
    # ------------------------------------------------------------------
    def total_displacement(self, dist: Any, dest: Sequence[int]) -> int:
        d = np.asarray(dist)
        t = np.asarray(dest, dtype=np.int64)
        return int(d[np.arange(t.size), t].sum())

    # ------------------------------------------------------------------
    # schedule assembly
    # ------------------------------------------------------------------
    def assemble_layers(
        self,
        n_vertices: int,
        swap_layers: Sequence[tuple[Any, Any]],
        compact: bool = True,
    ) -> Any:
        from ..routing.schedule import FlatLayers

        n = int(n_vertices)
        if n <= 0:
            raise ScheduleError(f"n_vertices must be positive, got {n}")
        us: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        sizes: list[int] = []
        for u, v in swap_layers:
            ua = np.asarray(u, dtype=np.int64).ravel()
            va = np.asarray(v, dtype=np.int64).ravel()
            if ua.size != va.size:
                raise ScheduleError("swap layer endpoint arrays differ in length")
            us.append(ua)
            vs.append(va)
            sizes.append(int(ua.size))
        n_layers = len(sizes)
        if n_layers == 0:
            return ()
        U = np.concatenate(us)
        V = np.concatenate(vs)
        lo = np.minimum(U, V)
        hi = np.maximum(U, V)
        if U.size:
            if int(lo.min()) < 0 or int(hi.max()) >= n:
                raise ScheduleError("swap out of range")
            if bool((lo == hi).any()):
                raise ScheduleError("self-swap in layer")
            lid = np.repeat(np.arange(n_layers, dtype=np.int64), sizes)
            # Disjointness within each layer: any duplicate (layer, vertex)
            # key is adjacent after a sort (cheaper than a bincount over
            # the full n_layers * n key space).
            keys = np.sort(np.concatenate([lid * n + lo, lid * n + hi]))
            if keys.size > 1 and bool((keys[1:] == keys[:-1]).any()):
                raise ScheduleError("vertex reuse within a layer")
        else:
            lid = np.zeros(0, dtype=np.int64)

        if compact:
            if U.size == 0:
                return ()
            avail = np.zeros(n, dtype=np.int64)
            t = np.empty(U.size, dtype=np.int64)
            pos = 0
            for s in sizes:
                if s:
                    sl = slice(pos, pos + s)
                    los, his = lo[sl], hi[sl]
                    tt = np.maximum(avail[los], avail[his])
                    t[sl] = tt
                    avail[los] = tt + 1
                    avail[his] = tt + 1
                pos += s
            group, n_groups = t, int(t.max()) + 1
        else:
            group, n_groups = lid, n_layers
            if U.size == 0:
                return tuple(() for _ in range(n_groups))

        # Within a group swaps are vertex-disjoint, so (group, lo) is
        # unique: pack (group, lo, hi) into one int64 key and use a single
        # non-stable argsort instead of a 3-key lexsort (~3x faster).
        if n_groups * n * n < 2**62:
            order = np.argsort((group * n + lo) * n + hi)
        else:  # pragma: no cover - astronomically large schedules
            order = np.lexsort((hi, lo, group))
        counts = np.bincount(group, minlength=n_groups)
        # Return the flat payload directly: Schedule materializes nested
        # tuples lazily, so losing best-of candidates never build them.
        return FlatLayers(lo[order], hi[order], counts)

    def compact_serial_swaps(
        self, n_vertices: int, swaps: Sequence[tuple[int, int]]
    ) -> tuple[tuple[tuple[int, int], ...], ...]:
        # Inherently sequential (each swap's level depends on the previous
        # one's); a plain loop over int lists is the fast implementation.
        n = int(n_vertices)
        avail = [0] * n
        new_layers: list[list[tuple[int, int]]] = []
        for u, v in swaps:
            u, v = int(u), int(v)
            if u == v:
                raise ScheduleError(f"self-swap on vertex {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ScheduleError(f"swap ({u}, {v}) out of range")
            if u > v:
                u, v = v, u
            t = avail[u] if avail[u] >= avail[v] else avail[v]
            if t == len(new_layers):
                new_layers.append([])
            new_layers[t].append((u, v))
            avail[u] = avail[v] = t + 1
        return tuple(tuple(sorted(layer)) for layer in new_layers)
