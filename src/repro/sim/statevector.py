"""Dense statevector simulation.

Exists to *verify* the transpilation pipeline: a transpiled circuit must
implement the original unitary up to the tracked qubit permutation. At
the sizes where full verification is feasible (<= ~12 qubits here; the
memory wall of dense simulation) this gives an end-to-end functional
check that no SWAP bookkeeping bug can survive.

Convention: little-endian — qubit ``q`` is bit ``q`` of the basis-state
index, so ``|q2 q1 q0> = |abc>`` has index ``a*4 + b*2 + c``.

Implementation: the state lives as an ``(2,)*n`` tensor; applying a
``k``-qubit gate is one :func:`numpy.tensordot` against the gate tensor
plus an axis move — no ``2^n x 2^n`` matrices are ever materialized
(vectorize-the-hot-loop, avoid-the-copy guidance from the HPC notes;
``tensordot`` hits BLAS for the heavy contractions).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate, gate_matrix, is_pseudo_gate

__all__ = ["apply_gate", "simulate", "zero_state", "basis_state"]

_MAX_QUBITS = 24  # 2^24 complex128 = 256 MiB; hard safety wall


def zero_state(n_qubits: int) -> np.ndarray:
    """The ``|0...0>`` statevector of length ``2**n_qubits``."""
    return basis_state(n_qubits, 0)


def basis_state(n_qubits: int, index: int) -> np.ndarray:
    """The computational basis state ``|index>``."""
    if not (0 < n_qubits <= _MAX_QUBITS):
        raise SimulationError(
            f"n_qubits must be in 1..{_MAX_QUBITS}, got {n_qubits}"
        )
    dim = 1 << n_qubits
    if not (0 <= index < dim):
        raise SimulationError(f"basis index {index} out of range")
    state = np.zeros(dim, dtype=complex)
    state[index] = 1.0
    return state


def apply_gate(
    state: np.ndarray, gate: Gate, n_qubits: int
) -> np.ndarray:
    """Apply one gate to a statevector; returns the new vector.

    Pseudo-gates (barrier, measure, reset markers) are identity here —
    the simulator verifies unitaries, it does not sample.
    """
    if is_pseudo_gate(gate):
        return state
    matrix = gate_matrix(gate)
    k = gate.n_qubits
    # Tensor axes: axis t corresponds to qubit (n-1-t) in little-endian
    # numbering, because reshape splits the index MSB-first.
    tensor = state.reshape((2,) * n_qubits)
    axes = [n_qubits - 1 - q for q in gate.qubits]
    gate_tensor = matrix.reshape((2,) * (2 * k))
    # Contract the gate's input legs (last k) with the state's gate axes.
    moved = np.tensordot(gate_tensor, tensor, axes=(range(k, 2 * k), axes))
    # tensordot puts the gate's output legs first; move them back.
    out = np.moveaxis(moved, range(k), axes)
    return np.ascontiguousarray(out).reshape(-1)


def simulate(
    circuit: QuantumCircuit, initial: np.ndarray | None = None
) -> np.ndarray:
    """Run a circuit on ``initial`` (default ``|0...0>``); returns the
    final statevector.

    Raises
    ------
    SimulationError
        If the circuit is too wide, or ``initial`` has the wrong shape.
    """
    n = circuit.n_qubits
    if n > _MAX_QUBITS:
        raise SimulationError(
            f"refusing dense simulation of {n} qubits (limit {_MAX_QUBITS})"
        )
    if initial is None:
        state = zero_state(n)
    else:
        state = np.asarray(initial, dtype=complex)
        if state.shape != (1 << n,):
            raise SimulationError(
                f"initial state must have length {1 << n}, got {state.shape}"
            )
        state = state.copy()
    for gate in circuit:
        state = apply_gate(state, gate, n)
    return state
