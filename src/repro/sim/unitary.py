"""Unitary extraction and permutation-aware equivalence checks.

The key verification primitive: a transpiled circuit does not implement
the logical unitary itself — it implements it *up to wire relocation*
(the initial mapping on the way in, the routing-induced permutation on
the way out). These helpers build the small unitaries and wire
permutation operators needed to state that equality exactly, and compare
unitaries up to global phase.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..circuit.circuit import QuantumCircuit
from ..perm.permutation import Permutation
from .statevector import basis_state, simulate

__all__ = [
    "circuit_unitary",
    "permute_wires",
    "wire_permutation_unitary",
    "allclose_up_to_global_phase",
]

_MAX_UNITARY_QUBITS = 12


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """The full ``2^n x 2^n`` unitary of a circuit (small ``n`` only).

    Built column by column via statevector simulation of basis states.

    Raises
    ------
    SimulationError
        If the circuit has more than 12 qubits.
    """
    n = circuit.n_qubits
    if n > _MAX_UNITARY_QUBITS:
        raise SimulationError(
            f"refusing unitary extraction beyond {_MAX_UNITARY_QUBITS} qubits"
        )
    dim = 1 << n
    out = np.empty((dim, dim), dtype=complex)
    for j in range(dim):
        out[:, j] = simulate(circuit, basis_state(n, j))
    return out


def _bit_map(wire_map: np.ndarray, n: int) -> np.ndarray:
    """index -> index map moving bit ``q`` to bit ``wire_map[q]``."""
    xs = np.arange(1 << n, dtype=np.int64)
    ys = np.zeros_like(xs)
    for q in range(n):
        ys |= ((xs >> q) & 1) << int(wire_map[q])
    return ys


def permute_wires(
    state: np.ndarray, wire_map: Permutation | np.ndarray
) -> np.ndarray:
    """Relocate qubit ``q``'s amplitude role to wire ``wire_map[q]``.

    If ``state`` assigns amplitudes over wires ``0..n-1``, the result is
    the same quantum state with the content of wire ``q`` living on wire
    ``wire_map[q]``.
    """
    wm = wire_map.targets if isinstance(wire_map, Permutation) else np.asarray(wire_map)
    n = int(wm.shape[0])
    if state.shape != (1 << n,):
        raise SimulationError(
            f"state length {state.shape} does not match {n} wires"
        )
    ys = _bit_map(wm, n)
    out = np.empty_like(state)
    out[ys] = state
    return out


def wire_permutation_unitary(wire_map: Permutation | np.ndarray) -> np.ndarray:
    """The unitary matrix of :func:`permute_wires` (small sizes only)."""
    wm = wire_map.targets if isinstance(wire_map, Permutation) else np.asarray(wire_map)
    n = int(wm.shape[0])
    if n > _MAX_UNITARY_QUBITS:
        raise SimulationError(
            f"refusing permutation unitary beyond {_MAX_UNITARY_QUBITS} qubits"
        )
    ys = _bit_map(wm, n)
    dim = 1 << n
    out = np.zeros((dim, dim), dtype=complex)
    out[ys, np.arange(dim)] = 1.0
    return out


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-9
) -> bool:
    """Whether two matrices/vectors agree up to one global complex phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    flat_a, flat_b = a.ravel(), b.ravel()
    idx = int(np.argmax(np.abs(flat_a)))
    if abs(flat_a[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    if abs(flat_b[idx]) < atol:
        return False
    phase = flat_b[idx] / flat_a[idx]
    if not np.isclose(abs(phase), 1.0, atol=1e-7):
        return False
    return bool(np.allclose(a * phase, b, atol=atol))
