"""Statevector/unitary simulation for end-to-end verification."""

from .statevector import apply_gate, basis_state, simulate, zero_state
from .unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    permute_wires,
    wire_permutation_unitary,
)

__all__ = [
    "simulate",
    "apply_gate",
    "zero_state",
    "basis_state",
    "circuit_unitary",
    "permute_wires",
    "wire_permutation_unitary",
    "allclose_up_to_global_phase",
]
