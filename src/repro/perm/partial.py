"""Partial permutations and don't-care completion.

A transpiler's routing phase usually has destinations only for the qubits
that participate in upcoming gates; the rest are *don't-care*. Formally the
input is a bijection ``f : S -> R`` between subsets of the vertex set, which
must be extended to a full permutation before calling a routing-via-matchings
router. The paper assumes this extension "has already been determined by the
transpiler"; this module provides the standard extension strategies so the
end-to-end pipeline is self-contained.

Completion strategies
---------------------
``"optimal"``
    Minimum total-distance assignment of free sources to free destinations
    (Hungarian method via :func:`scipy.optimize.linear_sum_assignment` when
    scipy is available, otherwise falls back to ``"greedy"``).
``"greedy"``
    Repeatedly match the closest (source, destination) pair. ``O(k^2 log k)``
    for ``k`` don't-cares.
``"arbitrary"``
    Pair free sources and destinations in index order. Fast, worst quality.
``"minimal"``
    Keep every don't-care qubit in place when its position is also a free
    destination; assign only the (small) remainder optimally. This is the
    transpiler's workhorse: when routing a layer of ``k`` gates on an
    ``N``-vertex device, all but ``O(k)`` qubits stay put, and the
    assignment subproblem has size ``O(k)`` instead of ``O(N)``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import PermutationError
from ..graphs.base import Graph
from .permutation import Permutation

__all__ = ["PartialPermutation", "complete_partial"]

_STRATEGIES = ("optimal", "greedy", "arbitrary", "minimal")


class PartialPermutation:
    """A bijection between two equal-size subsets of ``{0, ..., n-1}``.

    Parameters
    ----------
    n:
        Size of the ambient vertex set.
    mapping:
        ``{source: destination}`` pairs. Sources and destinations must each
        be distinct (a partial bijection).

    Examples
    --------
    >>> pp = PartialPermutation(4, {0: 2, 3: 1})
    >>> sorted(pp.sources())
    [0, 3]
    >>> pp.is_total()
    False
    """

    __slots__ = ("_n", "_map")

    def __init__(self, n: int, mapping: Mapping[int, int]) -> None:
        if n <= 0:
            raise PermutationError(f"ambient size must be positive, got {n}")
        self._n = int(n)
        srcs = list(mapping.keys())
        dsts = list(mapping.values())
        for x in srcs + dsts:
            if not (0 <= x < n):
                raise PermutationError(f"element {x} out of range for n={n}")
        if len(set(srcs)) != len(srcs):
            raise PermutationError("duplicate sources in partial permutation")
        if len(set(dsts)) != len(dsts):
            raise PermutationError("duplicate destinations in partial permutation")
        self._map = dict(mapping)

    @property
    def n(self) -> int:
        """Ambient vertex-set size."""
        return self._n

    def __len__(self) -> int:
        return len(self._map)

    def sources(self) -> list[int]:
        """Constrained source vertices."""
        return list(self._map.keys())

    def destinations(self) -> list[int]:
        """Constrained destination vertices."""
        return list(self._map.values())

    def mapping(self) -> dict[int, int]:
        """A copy of the ``{source: destination}`` dictionary."""
        return dict(self._map)

    def __getitem__(self, source: int) -> int:
        return self._map[source]

    def __contains__(self, source: int) -> bool:
        return source in self._map

    def is_total(self) -> bool:
        """Whether every vertex is constrained."""
        return len(self._map) == self._n

    def complete(self, graph: Graph, strategy: str = "optimal") -> Permutation:
        """Extend to a full :class:`Permutation`; see module docstring."""
        return complete_partial(self, graph, strategy=strategy)


def _greedy_assign(
    free_src: np.ndarray, free_dst: np.ndarray, dist: np.ndarray
) -> dict[int, int]:
    """Pair each free source to a free destination, closest pairs first."""
    pairs = [
        (int(dist[s, d]), int(s), int(d)) for s in free_src for d in free_dst
    ]
    pairs.sort()
    used_s: set[int] = set()
    used_d: set[int] = set()
    out: dict[int, int] = {}
    for _, s, d in pairs:
        if s in used_s or d in used_d:
            continue
        out[s] = d
        used_s.add(s)
        used_d.add(d)
    return out


def complete_partial(
    partial: PartialPermutation, graph: Graph, strategy: str = "optimal"
) -> Permutation:
    """Extend a partial permutation to a total one over ``graph``'s vertices.

    Free sources are assigned to free destinations so as to (approximately)
    minimize the extra movement; see the module docstring for strategies.

    Raises
    ------
    PermutationError
        On unknown strategy or if sizes disagree with the graph.
    """
    if strategy not in _STRATEGIES:
        raise PermutationError(
            f"unknown completion strategy {strategy!r}; choose from {_STRATEGIES}"
        )
    n = graph.n_vertices
    if partial.n != n:
        raise PermutationError(
            f"partial permutation ambient size {partial.n} != graph size {n}"
        )
    mapping = partial.mapping()
    constrained_src = set(mapping.keys())
    constrained_dst = set(mapping.values())
    free_src = np.array(
        [v for v in range(n) if v not in constrained_src], dtype=np.int64
    )
    free_dst = np.array(
        [v for v in range(n) if v not in constrained_dst], dtype=np.int64
    )
    if free_src.size == 0:
        return Permutation.from_mapping(n, mapping)

    if strategy == "arbitrary":
        for s, d in zip(free_src, free_dst):
            mapping[int(s)] = int(d)
        return Permutation.from_mapping(n, mapping)

    if strategy == "minimal":
        stay = set(free_src.tolist()) & set(free_dst.tolist())
        for v in stay:
            mapping[v] = v
        rem_src = np.array(
            [v for v in free_src.tolist() if v not in stay], dtype=np.int64
        )
        rem_dst = np.array(
            [v for v in free_dst.tolist() if v not in stay], dtype=np.int64
        )
        if rem_src.size:
            dist = graph.distance_matrix()
            try:
                from scipy.optimize import linear_sum_assignment
            except ImportError:  # pragma: no cover - scipy present in CI
                mapping.update(_greedy_assign(rem_src, rem_dst, dist))
            else:
                cost = dist[np.ix_(rem_src, rem_dst)]
                rows, cols = linear_sum_assignment(cost)
                for r, c in zip(rows, cols):
                    mapping[int(rem_src[r])] = int(rem_dst[c])
        return Permutation.from_mapping(n, mapping)

    dist = graph.distance_matrix()
    if strategy == "optimal":
        try:
            from scipy.optimize import linear_sum_assignment
        except ImportError:  # pragma: no cover - scipy is present in CI
            strategy = "greedy"
        else:
            cost = dist[np.ix_(free_src, free_dst)]
            rows, cols = linear_sum_assignment(cost)
            for r, c in zip(rows, cols):
                mapping[int(free_src[r])] = int(free_dst[c])
            return Permutation.from_mapping(n, mapping)

    # greedy
    mapping.update(_greedy_assign(free_src, free_dst, dist))
    return Permutation.from_mapping(n, mapping)
