"""Workload generators: the permutation classes of the paper's evaluation.

Section V of the paper evaluates routers on "a wide range of grid sizes and
multiple random mapping schemes (local and global)". The discussion names
four structurally distinct classes, all generated here:

``random_permutation``
    Global, uniformly random — the case where the locality-aware router
    beats ATS on depth (Figure 4, green vs brown).
``block_local_permutation``
    Cycles confined to disjoint blocks — the case where both routers tie
    (Figure 4, blue vs red).
``overlapping_block_permutation``
    Cycles spanning overlapping blocks — the case the paper reports ATS
    winning.
``skinny_cycle_permutation``
    Long, skinny cycles stretched in orthogonal directions — the paper's
    explicitly constructed worst case for the locality-aware scheme ("our
    locality aware scheme will fail to optimize for both cycles
    simultaneously").

All generators accept a ``seed`` and are deterministic given it. They
operate on any graph exposing the grid coordinate protocol
(``shape``, ``index``, ``coord``): both :class:`~repro.graphs.grid.GridGraph`
and :class:`~repro.graphs.cartesian.CartesianProduct`.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..errors import PermutationError
from .permutation import Permutation

__all__ = [
    "random_permutation",
    "block_local_permutation",
    "overlapping_block_permutation",
    "skinny_cycle_permutation",
    "row_rotation_permutation",
    "column_rotation_permutation",
    "mirror_permutation",
    "transpose_permutation",
    "WORKLOADS",
    "make_workload",
]


class _GridLike(Protocol):
    """Anything with a 2-D coordinate system over its vertices."""

    @property
    def shape(self) -> tuple[int, int]: ...  # pragma: no cover - protocol

    def index(self, row: int, col: int) -> int: ...  # pragma: no cover

    def coord(self, v: int) -> tuple[int, int]: ...  # pragma: no cover


def random_permutation(grid: _GridLike, seed: int | None = None) -> Permutation:
    """A uniformly random (global) permutation of the grid's vertices."""
    m, n = grid.shape
    rng = np.random.default_rng(seed)
    return Permutation(rng.permutation(m * n))


def _block_starts(extent: int, block: int, stride: int) -> list[int]:
    """Start offsets of blocks of size ``block`` every ``stride`` cells."""
    if extent <= block:
        return [0]
    starts = list(range(0, extent - block + 1, stride))
    # Ensure the final cells are covered by a (possibly overlapping) block.
    if starts[-1] + block < extent:
        starts.append(extent - block)
    return starts


def block_local_permutation(
    grid: _GridLike,
    block_rows: int = 4,
    block_cols: int = 4,
    seed: int | None = None,
) -> Permutation:
    """Random permutation whose cycles stay inside disjoint blocks.

    The grid is tiled by ``block_rows x block_cols`` blocks (edge blocks
    may be smaller when the grid dimensions are not multiples); each block
    receives an independent uniformly random permutation of its cells.

    Raises
    ------
    PermutationError
        If a block dimension is not positive.
    """
    if block_rows <= 0 or block_cols <= 0:
        raise PermutationError("block dimensions must be positive")
    m, n = grid.shape
    rng = np.random.default_rng(seed)
    targets = np.arange(m * n)
    for r0 in range(0, m, block_rows):
        for c0 in range(0, n, block_cols):
            cells = np.array(
                [
                    grid.index(i, j)
                    for i in range(r0, min(r0 + block_rows, m))
                    for j in range(c0, min(c0 + block_cols, n))
                ]
            )
            targets[cells] = cells[rng.permutation(cells.size)]
    return Permutation(targets)


def overlapping_block_permutation(
    grid: _GridLike,
    block_rows: int = 4,
    block_cols: int = 4,
    overlap: int = 2,
    seed: int | None = None,
) -> Permutation:
    """Composition of random permutations of *overlapping* blocks.

    Blocks of size ``block_rows x block_cols`` are laid out with stride
    ``block - overlap`` in each direction, so adjacent blocks share cells;
    composing their random permutations yields cycles that straddle block
    boundaries. This is the regime where the paper reports ATS beating the
    locality-aware router.

    Raises
    ------
    PermutationError
        If ``overlap`` is negative or >= the block dimension.
    """
    if block_rows <= 0 or block_cols <= 0:
        raise PermutationError("block dimensions must be positive")
    if not (0 <= overlap < min(block_rows, block_cols)):
        raise PermutationError(
            f"overlap must satisfy 0 <= overlap < min(block dims), got {overlap}"
        )
    m, n = grid.shape
    rng = np.random.default_rng(seed)
    targets = np.arange(m * n)  # running composition, applied left to right
    for r0 in _block_starts(m, block_rows, block_rows - overlap):
        for c0 in _block_starts(n, block_cols, block_cols - overlap):
            cells = np.array(
                [
                    grid.index(i, j)
                    for i in range(r0, min(r0 + block_rows, m))
                    for j in range(c0, min(c0 + block_cols, n))
                ]
            )
            # Compose: the current destinations of these cells are permuted
            # among themselves by a fresh random block permutation.
            targets[cells] = targets[cells[rng.permutation(cells.size)]]
    return Permutation(targets)


def skinny_cycle_permutation(
    grid: _GridLike,
    n_row_cycles: int | None = None,
    n_col_cycles: int | None = None,
    seed: int | None = None,
) -> Permutation:
    """Long skinny cycles in orthogonal directions (paper's hard case).

    ``n_row_cycles`` full rows are cyclically shifted horizontally (each a
    width-1, length-``n`` cycle); ``n_col_cycles`` columns are cyclically
    shifted vertically over the cells *not* in the shifted rows (each a
    height-1 cycle of length ``m - n_row_cycles``). Defaults pick about a
    quarter of the rows and columns.

    Raises
    ------
    PermutationError
        If the requested cycle counts do not fit the grid.
    """
    m, n = grid.shape
    rng = np.random.default_rng(seed)
    if n_row_cycles is None:
        n_row_cycles = max(1, m // 4)
    if n_col_cycles is None:
        n_col_cycles = max(1, n // 4)
    if not (0 <= n_row_cycles <= m):
        raise PermutationError(f"n_row_cycles={n_row_cycles} out of range")
    if not (0 <= n_col_cycles <= n):
        raise PermutationError(f"n_col_cycles={n_col_cycles} out of range")
    if n_row_cycles >= m and n_col_cycles > 0:
        raise PermutationError(
            "cannot place column cycles when every row is a row cycle"
        )

    rows = rng.choice(m, size=n_row_cycles, replace=False)
    cols = rng.choice(n, size=n_col_cycles, replace=False)
    targets = np.arange(m * n)

    # Horizontal cycles: row i shifted by one position cyclically.
    for i in rows:
        cells = np.array([grid.index(int(i), j) for j in range(n)])
        targets[cells] = np.roll(cells, -1)

    # Vertical cycles: column j shifted along the rows not already used.
    free_rows = [i for i in range(m) if i not in set(int(r) for r in rows)]
    if len(free_rows) >= 2:
        for j in cols:
            cells = np.array([grid.index(i, int(j)) for i in free_rows])
            targets[cells] = np.roll(cells, -1)
    return Permutation(targets)


def row_rotation_permutation(grid: _GridLike, shift: int = 1) -> Permutation:
    """Every row cyclically shifted right by ``shift`` columns."""
    m, n = grid.shape
    targets = np.empty(m * n, dtype=np.int64)
    for i in range(m):
        for j in range(n):
            targets[grid.index(i, j)] = grid.index(i, (j + shift) % n)
    return Permutation(targets)


def column_rotation_permutation(grid: _GridLike, shift: int = 1) -> Permutation:
    """Every column cyclically shifted down by ``shift`` rows."""
    m, n = grid.shape
    targets = np.empty(m * n, dtype=np.int64)
    for i in range(m):
        for j in range(n):
            targets[grid.index(i, j)] = grid.index((i + shift) % m, j)
    return Permutation(targets)


def mirror_permutation(grid: _GridLike) -> Permutation:
    """Point reflection ``(i, j) -> (m-1-i, n-1-j)`` — every token far away."""
    m, n = grid.shape
    targets = np.empty(m * n, dtype=np.int64)
    for i in range(m):
        for j in range(n):
            targets[grid.index(i, j)] = grid.index(m - 1 - i, n - 1 - j)
    return Permutation(targets)


def transpose_permutation(grid: _GridLike) -> Permutation:
    """``(i, j) -> (j, i)`` on a square grid.

    Raises
    ------
    PermutationError
        If the grid is not square.
    """
    m, n = grid.shape
    if m != n:
        raise PermutationError("transpose permutation needs a square grid")
    targets = np.empty(m * n, dtype=np.int64)
    for i in range(m):
        for j in range(n):
            targets[grid.index(i, j)] = grid.index(j, i)
    return Permutation(targets)


#: Named workload registry used by the benchmark harness. Every entry is a
#: ``f(grid, seed) -> Permutation`` using the paper-representative defaults.
WORKLOADS: dict[str, Callable[..., Permutation]] = {
    "random": random_permutation,
    "block_local": block_local_permutation,
    "overlapping": overlapping_block_permutation,
    "skinny": skinny_cycle_permutation,
}


def make_workload(name: str, grid: _GridLike, seed: int | None = None) -> Permutation:
    """Generate the named workload on ``grid`` (see :data:`WORKLOADS`).

    Raises
    ------
    PermutationError
        On an unknown workload name.
    """
    try:
        gen = WORKLOADS[name]
    except KeyError:
        raise PermutationError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return gen(grid, seed=seed)
