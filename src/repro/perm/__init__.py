"""Permutation substrate: permutations, partial permutations, workloads."""

from .generators import (
    WORKLOADS,
    block_local_permutation,
    column_rotation_permutation,
    make_workload,
    mirror_permutation,
    overlapping_block_permutation,
    random_permutation,
    row_rotation_permutation,
    skinny_cycle_permutation,
    transpose_permutation,
)
from .metrics import (
    cycle_bounding_boxes,
    depth_lower_bound,
    displacements,
    locality_radius,
    max_displacement,
    mean_displacement,
    swap_count_lower_bound,
    total_displacement,
)
from .partial import PartialPermutation, complete_partial
from .permutation import Permutation

__all__ = [
    "Permutation",
    "PartialPermutation",
    "complete_partial",
    "displacements",
    "total_displacement",
    "max_displacement",
    "mean_displacement",
    "depth_lower_bound",
    "swap_count_lower_bound",
    "cycle_bounding_boxes",
    "locality_radius",
    "random_permutation",
    "block_local_permutation",
    "overlapping_block_permutation",
    "skinny_cycle_permutation",
    "row_rotation_permutation",
    "column_rotation_permutation",
    "mirror_permutation",
    "transpose_permutation",
    "WORKLOADS",
    "make_workload",
]
