"""Permutations of vertex sets.

A routing instance is a permutation ``pi`` on the vertices of the coupling
graph: the token (logical qubit) that starts on vertex ``v`` must end on
vertex ``pi(v)``. :class:`Permutation` is a thin, validated, numpy-backed
wrapper that supplies the algebra the routers need (composition, inversion,
cycle structure, relabelling under graph isomorphisms such as the grid
transpose).

Conventions
-----------
* ``perm[v]`` / ``perm(v)`` is the **destination** of the token that starts
  at ``v``.
* ``compose``: ``(p @ q)(v) == p(q(v))`` — ``q`` is applied first.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import PermutationError

__all__ = ["Permutation"]


class Permutation:
    """A permutation of ``{0, ..., n-1}`` stored as a destination array.

    Parameters
    ----------
    targets:
        Sequence where entry ``v`` is the destination of the token starting
        at ``v``. Must be a bijection on ``{0, ..., n-1}``.

    Examples
    --------
    >>> p = Permutation([1, 0, 2])
    >>> p(0), p(1), p(2)
    (1, 0, 2)
    >>> p.cycles()
    [(0, 1)]
    """

    __slots__ = ("_t",)

    def __init__(self, targets: Sequence[int] | np.ndarray) -> None:
        t = np.asarray(targets, dtype=np.int64).copy()
        if t.ndim != 1:
            raise PermutationError(f"targets must be 1-D, got shape {t.shape}")
        n = t.shape[0]
        if n == 0:
            raise PermutationError("empty permutation is not allowed")
        seen = np.zeros(n, dtype=bool)
        if (t < 0).any() or (t >= n).any():
            raise PermutationError("targets out of range")
        seen[t] = True
        if not seen.all():
            raise PermutationError("targets is not a bijection")
        t.setflags(write=False)
        self._t = t

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on ``n`` elements."""
        if n <= 0:
            raise PermutationError(f"size must be positive, got {n}")
        return cls(np.arange(n))

    @classmethod
    def from_cycles(cls, n: int, cycles: Iterable[Sequence[int]]) -> "Permutation":
        """Build from disjoint cycles; unmentioned points are fixed.

        Each cycle ``(a, b, c)`` means ``a -> b -> c -> a``.

        Raises
        ------
        PermutationError
            If the cycles are not disjoint or reference invalid points.
        """
        t = np.arange(n)
        used: set[int] = set()
        for cyc in cycles:
            cyc = list(cyc)
            if len(cyc) == 0:
                continue
            for x in cyc:
                if not (0 <= x < n):
                    raise PermutationError(f"cycle element {x} out of range")
                if x in used:
                    raise PermutationError(f"element {x} appears in two cycles")
                used.add(x)
            for a, b in zip(cyc, cyc[1:] + cyc[:1]):
                t[a] = b
        return cls(t)

    @classmethod
    def from_mapping(cls, n: int, mapping: Mapping[int, int]) -> "Permutation":
        """Build from a complete ``{source: destination}`` mapping."""
        t = np.arange(n)
        for s, d in mapping.items():
            t[s] = d
        return cls(t)

    @classmethod
    def random(cls, n: int, seed: int | None = None) -> "Permutation":
        """A uniformly random permutation (Fisher–Yates via numpy)."""
        rng = np.random.default_rng(seed)
        return cls(rng.permutation(n))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of elements ``n``."""
        return int(self._t.shape[0])

    @property
    def targets(self) -> np.ndarray:
        """The read-only destination array (``targets[v]`` = destination)."""
        return self._t

    def __len__(self) -> int:
        return self.size

    def __call__(self, v: int) -> int:
        """Destination of the token starting at ``v``."""
        return int(self._t[v])

    def __getitem__(self, v: int) -> int:
        return int(self._t[v])

    def __iter__(self) -> Iterator[int]:
        return iter(self._t.tolist())

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def inverse(self) -> "Permutation":
        """The inverse permutation (destination -> source)."""
        inv = np.empty_like(self._t)
        inv[self._t] = np.arange(self.size)
        return Permutation(inv)

    def compose(self, first: "Permutation") -> "Permutation":
        """``self ∘ first``: apply ``first``, then ``self``."""
        if first.size != self.size:
            raise PermutationError(
                f"size mismatch: {self.size} vs {first.size}"
            )
        return Permutation(self._t[first._t])

    def __matmul__(self, other: "Permutation") -> "Permutation":
        return self.compose(other)

    def relabel(self, mapping: Sequence[int] | np.ndarray) -> "Permutation":
        """Conjugate by a vertex relabelling.

        If ``mapping`` sends old vertex ids to new vertex ids (a bijection),
        the result ``q`` satisfies ``q(mapping[v]) == mapping[self(v)]`` —
        the same permutation expressed in the new labels. This implements
        the paper's transpose trick ``pi^T(j, i) = (j', i') iff
        pi(i, j) = (i', j')`` when ``mapping`` is the grid transpose.
        """
        m = np.asarray(mapping, dtype=np.int64)
        if m.shape != self._t.shape:
            raise PermutationError("relabel mapping has wrong size")
        new = np.empty_like(self._t)
        new[m] = m[self._t]
        return Permutation(new)

    def power(self, k: int) -> "Permutation":
        """The ``k``-th power (``k`` may be negative)."""
        if k < 0:
            return self.inverse().power(-k)
        result = Permutation.identity(self.size)
        base = self
        while k:
            if k & 1:
                result = base.compose(result)
            base = base.compose(base)
            k >>= 1
        return result

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_identity(self) -> bool:
        """Whether every point is fixed."""
        return bool((self._t == np.arange(self.size)).all())

    def fixed_points(self) -> np.ndarray:
        """Array of points ``v`` with ``self(v) == v``."""
        return np.flatnonzero(self._t == np.arange(self.size))

    def support(self) -> np.ndarray:
        """Array of non-fixed points."""
        return np.flatnonzero(self._t != np.arange(self.size))

    def cycles(self, include_fixed: bool = False) -> list[tuple[int, ...]]:
        """Disjoint cycle decomposition.

        Parameters
        ----------
        include_fixed:
            Whether to include length-1 cycles.

        Returns
        -------
        list of tuples, each cycle starting at its smallest element, sorted
        by that element.
        """
        n = self.size
        visited = np.zeros(n, dtype=bool)
        out: list[tuple[int, ...]] = []
        t = self._t
        for start in range(n):
            if visited[start]:
                continue
            cyc = [start]
            visited[start] = True
            nxt = int(t[start])
            while nxt != start:
                visited[nxt] = True
                cyc.append(nxt)
                nxt = int(t[nxt])
            if len(cyc) > 1 or include_fixed:
                out.append(tuple(cyc))
        return out

    def order(self) -> int:
        """Multiplicative order (lcm of cycle lengths)."""
        from math import lcm

        result = 1
        for cyc in self.cycles():
            result = lcm(result, len(cyc))
        return result

    def two_involution_factorization(self) -> tuple["Permutation", "Permutation"]:
        """Write ``self = b ∘ a`` with ``a``, ``b`` involutions.

        Every permutation is the product of two involutions; per cycle
        ``(c_0, ..., c_{k-1})`` the classic construction uses the two
        "reflection" involutions of a dihedral group. This powers the
        2-round complete-graph router.
        """
        n = self.size
        a = np.arange(n)
        b = np.arange(n)
        for cyc in self.cycles():
            k = len(cyc)
            # a: reflection i -> -i (mod k); b: reflection i -> 1-i (mod k).
            # Then b(a(c_i)) = c_{i+1}.
            for i in range(k):
                a[cyc[i]] = cyc[(-i) % k]
                b[cyc[i]] = cyc[(1 - i) % k]
        pa, pb = Permutation(a), Permutation(b)
        return pa, pb

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self.size == other.size and bool((self._t == other._t).all())

    def __hash__(self) -> int:
        return hash(self._t.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.size <= 16:
            return f"Permutation({self._t.tolist()})"
        return f"Permutation(n={self.size}, {len(self.cycles())} cycles)"
