"""Displacement and locality statistics for routing instances.

These quantities serve three roles:

* **Lower bounds** used by tests and benchmarks. Any routing schedule needs
  depth at least ``max_v d(v, pi(v))`` (a token moves one edge per layer),
  and any swap sequence needs at least ``ceil(sum_v d(v, pi(v)) / 2)``
  swaps (a swap reduces total displacement by at most 2).
* **Workload characterization**: the paper distinguishes "local" from
  "global" permutations; the locality statistics quantify that distinction
  in the experiment logs.
* **Sanity checks** for the approximate token swapping baseline.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.base import Graph
from ..graphs.grid import GridGraph
from .permutation import Permutation

__all__ = [
    "displacements",
    "total_displacement",
    "max_displacement",
    "mean_displacement",
    "depth_lower_bound",
    "swap_count_lower_bound",
    "cycle_bounding_boxes",
    "locality_radius",
]


def displacements(graph: Graph, perm: Permutation) -> np.ndarray:
    """Per-token distance from start to destination, as an array."""
    d = graph.distance_matrix()
    src = np.arange(perm.size)
    return d[src, perm.targets]


def total_displacement(graph: Graph, perm: Permutation) -> int:
    """Sum of all token displacements."""
    return int(displacements(graph, perm).sum())


def max_displacement(graph: Graph, perm: Permutation) -> int:
    """Largest single token displacement."""
    return int(displacements(graph, perm).max())


def mean_displacement(graph: Graph, perm: Permutation) -> float:
    """Average token displacement."""
    return float(displacements(graph, perm).mean())


def depth_lower_bound(graph: Graph, perm: Permutation) -> int:
    """A valid lower bound on any matching-schedule depth for ``perm``.

    Each layer moves a token across at most one edge, so the farthest
    token's distance bounds the depth from below.
    """
    return max_displacement(graph, perm)


def swap_count_lower_bound(graph: Graph, perm: Permutation) -> int:
    """A valid lower bound on the number of swaps in any serial routing.

    One swap moves two tokens one edge each, decreasing the total
    displacement by at most 2.
    """
    return math.ceil(total_displacement(graph, perm) / 2)


def cycle_bounding_boxes(
    grid: GridGraph, perm: Permutation
) -> list[tuple[int, int, int, int]]:
    """Bounding box ``(min_row, min_col, max_row, max_col)`` per nontrivial cycle.

    The paper's "local" permutations have cycles whose bounding boxes are
    small relative to the grid; its adversarial cases have long skinny
    boxes in orthogonal directions.
    """
    boxes: list[tuple[int, int, int, int]] = []
    for cyc in perm.cycles():
        rows = [grid.coord(v)[0] for v in cyc]
        cols = [grid.coord(v)[1] for v in cyc]
        boxes.append((min(rows), min(cols), max(rows), max(cols)))
    return boxes


def locality_radius(grid: GridGraph, perm: Permutation) -> int:
    """Largest cycle bounding-box extent (max of height/width over cycles).

    Zero for the identity. A permutation confined to ``b x b`` blocks has
    ``locality_radius <= b - 1``.
    """
    radius = 0
    for r0, c0, r1, c1 in cycle_bounding_boxes(grid, perm):
        radius = max(radius, r1 - r0, c1 - c0)
    return radius
