"""Per-stage wall-time profiling for the routing algorithm phases.

The service layer wants to know *where* a routing call spends its time —
matching search, bottleneck assignment, swap scheduling — without the
algorithm code knowing anything about traces, telemetry, or transports.
This module is that seam: a :class:`StageProfiler` accumulates named
stage durations for one algorithm invocation, and the algorithm code
marks its phases with the :func:`stage` context manager, which is a
near-free no-op unless a profiler has been installed for the current
context via :func:`profile`.

Timing is *exclusive* (self time): when stages nest — e.g. the
Hopcroft–Karp ``matching`` stage runs inside the ``decomposition``
stage — the child's wall time is subtracted from the parent's, so the
per-stage totals partition the instrumented wall clock and can be
rendered as sibling spans or summed into histograms without double
counting.

Kept at the package top level (stdlib only, no intra-package imports)
so both ``repro.matching`` and ``repro.routing`` can use it without
creating an import cycle; ``repro.routing.base`` re-exports it for
service-layer consumers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = ["StageProfiler", "profile", "stage"]


class StageProfiler:
    """Accumulates named stage durations for one algorithm invocation.

    Not thread-safe: one profiler instruments one single-threaded
    algorithm run (the worker installs a fresh instance per request).

    >>> prof = StageProfiler()
    >>> with profile(prof):
    ...     with stage("outer"):
    ...         with stage("inner"):
    ...             pass
    >>> sorted(prof.totals)
    ['inner', 'outer']
    """

    __slots__ = ("totals", "counts", "_stack")

    def __init__(self) -> None:
        #: Exclusive (self) seconds accumulated per stage name.
        self.totals: dict[str, float] = {}
        #: Number of completed invocations per stage name.
        self.counts: dict[str, int] = {}
        # Open stages: [name, start perf_counter, child wall seconds].
        self._stack: list[list] = []

    def _enter(self, name: str) -> None:
        self._stack.append([name, time.perf_counter(), 0.0])

    def _exit(self) -> None:
        name, t0, child = self._stack.pop()
        elapsed = time.perf_counter() - t0
        self.totals[name] = self.totals.get(name, 0.0) + max(
            0.0, elapsed - child
        )
        self.counts[name] = self.counts.get(name, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Per-stage ``{"seconds": ..., "count": ...}``, JSON-ready."""
        return {
            name: {"seconds": seconds, "count": self.counts.get(name, 0)}
            for name, seconds in sorted(self.totals.items())
        }


_PROFILER: ContextVar[StageProfiler | None] = ContextVar(
    "repro_stage_profiler", default=None
)


@contextmanager
def profile(profiler: StageProfiler) -> Iterator[StageProfiler]:
    """Install ``profiler`` as the current context's stage collector.

    Nested :func:`stage` blocks record into it until the ``with`` exits;
    the previous profiler (if any) is restored afterwards.
    """
    token = _PROFILER.set(profiler)
    try:
        yield profiler
    finally:
        _PROFILER.reset(token)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Record the wall time of the enclosed block under stage ``name``.

    A no-op (one contextvar read) when no profiler is installed, so
    algorithm code can mark its phases unconditionally.
    """
    prof = _PROFILER.get()
    if prof is None:
        yield
        return
    prof._enter(name)
    try:
        yield
    finally:
        prof._exit()
