"""Quantum circuit substrate: gates, circuits, DAGs, QASM, library."""

from .algorithms import (
    bernstein_vazirani,
    grover,
    hidden_shift,
    qaoa_maxcut_grid,
    w_state,
)
from .circuit import QuantumCircuit
from .dag import CircuitDag, circuit_layers
from .gates import (
    GATE_ARITY,
    PSEUDO_GATES,
    Gate,
    gate_matrix,
    is_pseudo_gate,
    is_two_qubit,
)
from .library import (
    brickwork_circuit,
    cuccaro_adder,
    ghz,
    lattice_trotter,
    permutation_circuit,
    qft,
    random_circuit,
)
from .qasm import dump_file, dumps, load_file, loads

__all__ = [
    "Gate",
    "GATE_ARITY",
    "PSEUDO_GATES",
    "gate_matrix",
    "is_two_qubit",
    "is_pseudo_gate",
    "QuantumCircuit",
    "CircuitDag",
    "circuit_layers",
    "qft",
    "ghz",
    "lattice_trotter",
    "cuccaro_adder",
    "random_circuit",
    "brickwork_circuit",
    "permutation_circuit",
    "bernstein_vazirani",
    "grover",
    "w_state",
    "qaoa_maxcut_grid",
    "hidden_shift",
    "loads",
    "dumps",
    "load_file",
    "dump_file",
]
