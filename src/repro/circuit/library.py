"""Benchmark circuit library.

The circuit families the qubit-routing literature evaluates on, and the
workloads the paper's introduction motivates:

* :func:`qft` — the quantum Fourier transform, the canonical all-to-all
  stress case (the paper's own worst-case example: QFT on a path needs
  ``Omega(n)`` SWAPs per layer).
* :func:`ghz` — linear-depth entangler, the friendly nearest-neighbour case.
* :func:`lattice_trotter` — Trotterized time evolution of a 2-D
  nearest-neighbour transverse-field Ising model, i.e. exactly the
  "simulation of spatially local Hamiltonians" the paper says its router
  should benefit; on the grid whose geometry matches the lattice, all
  interactions are block-local.
* :func:`cuccaro_adder` — ripple-carry adder (Toffolis decomposed to the
  standard 6-CNOT network), a structured arithmetic benchmark.
* :func:`random_circuit` — unstructured random 1q/2q circuits for
  stress-testing.
* :func:`permutation_circuit` — SWAP network from a routing schedule
  (bridges routers back into circuit land).
"""

from __future__ import annotations

from math import pi

import numpy as np

from ..errors import CircuitError
from ..graphs.grid import GridGraph
from ..routing.schedule import Schedule
from .circuit import QuantumCircuit

__all__ = [
    "qft",
    "ghz",
    "lattice_trotter",
    "cuccaro_adder",
    "random_circuit",
    "permutation_circuit",
    "brickwork_circuit",
]


def qft(n: int, do_swaps: bool = True, approximation_degree: int = 0) -> QuantumCircuit:
    """Quantum Fourier transform on ``n`` qubits.

    Parameters
    ----------
    n:
        Number of qubits.
    do_swaps:
        Append the final bit-reversal swaps.
    approximation_degree:
        Drop controlled phases with angle below ``pi / 2**(n-1-approx)``
        (0 = exact QFT).

    Notes
    -----
    With ``do_swaps=True`` the unitary equals the DFT matrix
    ``U[y, x] = exp(2*pi*i*x*y / 2**n) / sqrt(2**n)`` in the simulator's
    little-endian convention (verified in the test suite).
    """
    if n <= 0:
        raise CircuitError(f"qft needs at least one qubit, got {n}")
    qc = QuantumCircuit(n, name=f"qft{n}")
    for i in range(n - 1, -1, -1):
        qc.h(i)
        for j in range(i - 1, -1, -1):
            k = i - j
            if approximation_degree and k >= n - approximation_degree:
                continue
            qc.cp(pi / 2**k, j, i)
    if do_swaps:
        for i in range(n // 2):
            qc.swap(i, n - 1 - i)
    return qc


def ghz(n: int) -> QuantumCircuit:
    """GHZ state preparation: ``H`` then a CNOT chain."""
    if n <= 0:
        raise CircuitError(f"ghz needs at least one qubit, got {n}")
    qc = QuantumCircuit(n, name=f"ghz{n}")
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    return qc


def lattice_trotter(
    grid: GridGraph,
    steps: int = 1,
    dt: float = 0.1,
    coupling: float = 1.0,
    field: float = 1.0,
) -> QuantumCircuit:
    """First-order Trotter circuit for a transverse-field Ising model on a grid.

    One step applies ``exp(-i J dt Z_u Z_v)`` on every lattice edge
    (horizontal edges first, then vertical — each set further split into
    the two parallel matchings of the grid) followed by
    ``exp(-i h dt X_v)`` on every site. Qubit ``q`` of the circuit is the
    grid vertex ``q`` in row-major order, so on the matching coupling
    graph every interaction is nearest-neighbour — the spatially-local
    workload the paper's router targets.
    """
    if steps <= 0:
        raise CircuitError(f"steps must be positive, got {steps}")
    m, n = grid.shape
    qc = QuantumCircuit(m * n, name=f"tfim{m}x{n}")
    horiz = [[], []]
    vert = [[], []]
    for i in range(m):
        for j in range(n - 1):
            horiz[j % 2].append((grid.index(i, j), grid.index(i, j + 1)))
    for j in range(n):
        for i in range(m - 1):
            vert[i % 2].append((grid.index(i, j), grid.index(i + 1, j)))
    for _ in range(steps):
        for group in (*horiz, *vert):
            for a, b in group:
                qc.rzz(2.0 * coupling * dt, a, b)
        for q in range(m * n):
            qc.rx(2.0 * field * dt, q)
    return qc


def _ccx(qc: QuantumCircuit, a: int, b: int, c: int) -> None:
    """Standard 6-CNOT Toffoli decomposition onto ``(a, b) -> c``."""
    qc.h(c)
    qc.cx(b, c)
    qc.tdg(c)
    qc.cx(a, c)
    qc.t(c)
    qc.cx(b, c)
    qc.tdg(c)
    qc.cx(a, c)
    qc.t(b)
    qc.t(c)
    qc.h(c)
    qc.cx(a, b)
    qc.t(a)
    qc.tdg(b)
    qc.cx(a, b)


def cuccaro_adder(n_bits: int) -> QuantumCircuit:
    """Cuccaro ripple-carry adder on ``2 * n_bits + 2`` qubits.

    Layout: ``[cin, a_0, b_0, a_1, b_1, ..., a_{n-1}, b_{n-1}, cout]``;
    computes ``b <- a + b`` with carry-in/out. Toffolis are decomposed to
    the Clifford+T network so the circuit is purely 1q/2q.
    """
    if n_bits <= 0:
        raise CircuitError(f"adder needs at least one bit, got {n_bits}")
    n = 2 * n_bits + 2
    qc = QuantumCircuit(n, name=f"adder{n_bits}")
    a = [1 + 2 * i for i in range(n_bits)]
    b = [2 + 2 * i for i in range(n_bits)]
    cin, cout = 0, n - 1

    def maj(x: int, y: int, z: int) -> None:
        qc.cx(z, y)
        qc.cx(z, x)
        _ccx(qc, x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        _ccx(qc, x, y, z)
        qc.cx(z, x)
        qc.cx(x, y)

    maj(cin, b[0], a[0])
    for i in range(1, n_bits):
        maj(a[i - 1], b[i], a[i])
    qc.cx(a[n_bits - 1], cout)
    for i in range(n_bits - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(cin, b[0], a[0])
    return qc


def random_circuit(
    n: int,
    depth: int,
    seed: int | None = None,
    two_qubit_prob: float = 0.5,
) -> QuantumCircuit:
    """Random circuit of the given target depth.

    Each layer greedily fills qubits with random ``cx``/``cz``/``rzz``
    (probability ``two_qubit_prob``) on random *non-adjacent-unaware*
    qubit pairs, or random 1q rotations — the unstructured stress case
    for routing.
    """
    if n <= 0 or depth < 0:
        raise CircuitError("random_circuit needs n > 0 and depth >= 0")
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(n, name=f"random{n}x{depth}")
    one_q = ("h", "t", "s", "x")
    two_q = ("cx", "cz")
    for _ in range(depth):
        free = list(rng.permutation(n))
        while free:
            q = free.pop()
            if free and rng.random() < two_qubit_prob:
                q2 = free.pop(int(rng.integers(len(free))))
                name = two_q[int(rng.integers(len(two_q)))]
                qc.append(name, (q, q2))
            else:
                name = one_q[int(rng.integers(len(one_q)))]
                qc.append(name, (q,))
    return qc


def brickwork_circuit(n: int, depth: int, seed: int | None = None) -> QuantumCircuit:
    """Nearest-neighbour brickwork of random ``rzz`` + 1q rotations.

    Alternates even/odd adjacent pairs on a line — fully local, zero
    routing needed on a path/grid numbering (a useful control workload).
    """
    if n <= 1 or depth < 0:
        raise CircuitError("brickwork needs n > 1 and depth >= 0")
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(n, name=f"brick{n}x{depth}")
    for d in range(depth):
        start = d % 2
        for q in range(start, n - 1, 2):
            qc.rzz(float(rng.uniform(0, pi)), q, q + 1)
        for q in range(n):
            qc.rx(float(rng.uniform(0, pi)), q)
    return qc


def permutation_circuit(schedule: Schedule, name: str = "route") -> QuantumCircuit:
    """The SWAP network of a routing schedule, as a circuit.

    Layer boundaries are preserved with barriers so the circuit's depth
    equals the schedule's depth (each layer's swaps are disjoint).
    """
    qc = QuantumCircuit(schedule.n_vertices, name=name)
    first = True
    for layer in schedule:
        if not layer:
            continue
        if not first:
            qc.barrier()
        for u, v in layer:
            qc.swap(u, v)
        first = False
    return qc
