"""Quantum circuit container.

A :class:`QuantumCircuit` is an ordered list of :class:`~repro.circuit.gates.Gate`
applications over ``n_qubits`` logical qubits, with the handful of
operations the routing/transpilation workflow needs: append (with named
convenience methods), depth and size accounting, two-qubit-gate
extraction, qubit remapping and composition. It deliberately stays far
smaller than a general-purpose framework — it exists so the paper's
router can be demonstrated inside a complete, dependency-free pipeline.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence

from ..errors import CircuitError
from .gates import GATE_ARITY, Gate, is_pseudo_gate, is_two_qubit

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered gate list on ``n_qubits`` qubits.

    Parameters
    ----------
    n_qubits:
        Number of qubits (positive).
    name:
        Optional label used in reprs and QASM round-trips.

    Examples
    --------
    >>> qc = QuantumCircuit(2)
    >>> _ = qc.h(0).cx(0, 1)    # fluent chaining returns the circuit
    >>> qc.depth(), qc.size()
    (2, 2)
    """

    __slots__ = ("n_qubits", "name", "_gates")

    def __init__(self, n_qubits: int, name: str = "circuit") -> None:
        if n_qubits <= 0:
            raise CircuitError(f"circuit needs at least one qubit, got {n_qubits}")
        self.n_qubits = int(n_qubits)
        self.name = name
        self._gates: list[Gate] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
    ) -> "QuantumCircuit":
        """Append a gate by name; returns ``self`` for chaining.

        Raises
        ------
        CircuitError
            On out-of-range qubits or an unknown gate.
        """
        gate = Gate(name, tuple(qubits), tuple(params))
        for q in gate.qubits:
            if not (0 <= q < self.n_qubits):
                raise CircuitError(
                    f"qubit {q} out of range for {self.n_qubits}-qubit circuit"
                )
        self._gates.append(gate)
        return self

    def append_gate(self, gate: Gate) -> "QuantumCircuit":
        """Append an already-constructed :class:`Gate`."""
        return self.append(gate.name, gate.qubits, gate.params)

    # Convenience constructors for the common vocabulary. Each returns
    # ``self`` so circuits can be built fluently.
    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard."""
        return self.append("h", (q,))

    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self.append("x", (q,))

    def y(self, q: int) -> "QuantumCircuit":
        """Pauli-Y."""
        return self.append("y", (q,))

    def z(self, q: int) -> "QuantumCircuit":
        """Pauli-Z."""
        return self.append("z", (q,))

    def s(self, q: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self.append("s", (q,))

    def sdg(self, q: int) -> "QuantumCircuit":
        """S-dagger."""
        return self.append("sdg", (q,))

    def t(self, q: int) -> "QuantumCircuit":
        """T gate."""
        return self.append("t", (q,))

    def tdg(self, q: int) -> "QuantumCircuit":
        """T-dagger."""
        return self.append("tdg", (q,))

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        """X-rotation."""
        return self.append("rx", (q,), (theta,))

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        """Y-rotation."""
        return self.append("ry", (q,), (theta,))

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        """Z-rotation."""
        return self.append("rz", (q,), (theta,))

    def p(self, lam: float, q: int) -> "QuantumCircuit":
        """Phase gate with angle ``lam``."""
        return self.append("p", (q,), (lam,))

    def cx(self, c: int, t: int) -> "QuantumCircuit":
        """CNOT with control ``c`` and target ``t``."""
        return self.append("cx", (c, t))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self.append("cz", (a, b))

    def cp(self, lam: float, a: int, b: int) -> "QuantumCircuit":
        """Controlled phase."""
        return self.append("cp", (a, b), (lam,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP."""
        return self.append("swap", (a, b))

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        """ZZ interaction ``exp(-i theta/2 Z⊗Z)``."""
        return self.append("rzz", (a, b), (theta,))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Scheduling barrier (all qubits when none given)."""
        qs = tuple(qubits) if qubits else tuple(range(self.n_qubits))
        return self.append("barrier", qs)

    def measure(self, q: int) -> "QuantumCircuit":
        """Terminal measurement marker."""
        return self.append("measure", (q,))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gate sequence (immutable view)."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, i: int) -> Gate:
        return self._gates[i]

    def size(self, include_pseudo: bool = False) -> int:
        """Number of gates (excluding barriers/measures by default)."""
        if include_pseudo:
            return len(self._gates)
        return sum(1 for g in self._gates if not is_pseudo_gate(g))

    def depth(self, include_pseudo: bool = False) -> int:
        """Critical-path length: greedy per-qubit levelling.

        Barriers synchronize their qubits but add no level of their own;
        measures count as ordinary single-qubit operations when
        ``include_pseudo``.
        """
        level = [0] * self.n_qubits
        for g in self._gates:
            if g.name == "barrier":
                sync = max((level[q] for q in g.qubits), default=0)
                for q in g.qubits:
                    level[q] = sync
                continue
            if is_pseudo_gate(g) and not include_pseudo:
                continue
            t = max(level[q] for q in g.qubits) + 1
            for q in g.qubits:
                level[q] = t
        return max(level, default=0)

    def count_ops(self) -> dict[str, int]:
        """Histogram of gate names."""
        return dict(Counter(g.name for g in self._gates))

    def two_qubit_gates(self) -> list[tuple[int, Gate]]:
        """(index, gate) pairs for genuine two-qubit gates."""
        return [(i, g) for i, g in enumerate(self._gates) if is_two_qubit(g)]

    def num_two_qubit_gates(self) -> int:
        """Count of genuine two-qubit gates."""
        return sum(1 for g in self._gates if is_two_qubit(g))

    def max_gate_arity(self) -> int:
        """Largest qubit count of any non-barrier gate."""
        return max(
            (g.n_qubits for g in self._gates if g.name != "barrier"), default=0
        )

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """A shallow copy (gates are immutable)."""
        out = QuantumCircuit(self.n_qubits, name or self.name)
        out._gates = list(self._gates)
        return out

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """New circuit: this one followed by ``other`` (equal widths)."""
        if other.n_qubits != self.n_qubits:
            raise CircuitError(
                f"cannot compose {self.n_qubits}- and {other.n_qubits}-qubit circuits"
            )
        out = self.copy()
        out._gates.extend(other._gates)
        return out

    def remap_qubits(self, mapping: Sequence[int]) -> "QuantumCircuit":
        """New circuit with qubit ``q`` renamed to ``mapping[q]``.

        ``mapping`` must be a bijection on ``0..n_qubits-1``.
        """
        m = [int(x) for x in mapping]
        if sorted(m) != list(range(self.n_qubits)):
            raise CircuitError("qubit remapping must be a bijection")
        out = QuantumCircuit(self.n_qubits, self.name)
        for g in self._gates:
            out._gates.append(g.remap(m))
        return out

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (reverses order, inverts parametrized gates).

        Raises
        ------
        CircuitError
            If the circuit contains measures/resets or gates without a
            known inverse rule.
        """
        inv_fixed = {
            "id": "id", "x": "x", "y": "y", "z": "z", "h": "h",
            "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
            "cx": "cx", "cy": "cy", "cz": "cz", "ch": "ch", "swap": "swap",
        }
        negate = {"rx", "ry", "rz", "p", "u1", "cp", "cu1", "crz", "rxx", "ryy", "rzz"}
        out = QuantumCircuit(self.n_qubits, f"{self.name}_dg")
        for g in reversed(self._gates):
            if g.name == "barrier":
                out._gates.append(g)
            elif g.name in inv_fixed:
                out.append(inv_fixed[g.name], g.qubits)
            elif g.name in negate:
                out.append(g.name, g.qubits, tuple(-p for p in g.params))
            elif g.name in ("u", "u3"):
                th, ph, lam = g.params
                out.append(g.name, g.qubits, (-th, -lam, -ph))
            elif g.name == "u2":
                ph, lam = g.params
                out.append("u3", g.qubits, (-3.14159265358979 / 2, -lam, -ph))
            else:
                raise CircuitError(f"cannot invert gate {g.name!r}")
        return out

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self.n_qubits == other.n_qubits and self._gates == other._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, n_qubits={self.n_qubits}, "
            f"size={self.size()}, depth={self.depth()})"
        )
