"""More benchmark algorithm families (beyond the core library).

Standard routing-benchmark circuits with *functionally testable*
semantics (each has a crisp statevector-level correctness property the
test suite asserts):

* :func:`bernstein_vazirani` — recovers a hidden bit string in one query;
* :func:`grover` — amplitude amplification toward a marked basis state;
* :func:`w_state` — the ``|W_n>`` uniform single-excitation state;
* :func:`qaoa_maxcut_grid` — depth-``p`` QAOA ansatz whose interactions
  follow the grid (a geometric workload like the Trotter circuits);
* :func:`hidden_shift` — bent-function hidden-shift circuit (Clifford).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import CircuitError
from ..graphs.grid import GridGraph
from .circuit import QuantumCircuit

__all__ = [
    "bernstein_vazirani",
    "grover",
    "w_state",
    "qaoa_maxcut_grid",
    "hidden_shift",
]


def bernstein_vazirani(secret: str) -> QuantumCircuit:
    """Bernstein–Vazirani circuit recovering ``secret`` (a bit string).

    Uses ``len(secret) + 1`` qubits (the last is the phase ancilla).
    Measuring the first ``n`` qubits yields ``secret`` with certainty;
    bit ``i`` of the secret corresponds to qubit ``i``.

    Raises
    ------
    CircuitError
        If ``secret`` is empty or contains non-binary characters.
    """
    if not secret or any(c not in "01" for c in secret):
        raise CircuitError(f"secret must be a non-empty bit string, got {secret!r}")
    n = len(secret)
    qc = QuantumCircuit(n + 1, name=f"bv{n}")
    anc = n
    qc.x(anc)
    for q in range(n + 1):
        qc.h(q)
    for i, bit in enumerate(secret):
        if bit == "1":
            qc.cx(i, anc)
    for q in range(n):
        qc.h(q)
    return qc


def _multi_controlled_z(qc: QuantumCircuit, qubits: list[int]) -> None:
    """Phase-flip |1...1> on ``qubits`` — exact, ancilla-free.

    Uses the parity (Fourier) expansion of the AND function:
    ``AND(x_1..x_k) = 2^{1-k} * sum over non-empty subsets T of
    (-1)^{|T|+1} XOR(x_T)``, so ``C^{k-1}Z`` is a product of
    parity-phase gates ``P(±pi / 2^{k-1})`` on XOR chains. Cost
    ``O(k 2^k)`` gates — fine for the small oracles we build.
    """
    k = len(qubits)
    if k == 1:
        qc.z(qubits[0])
        return
    if k == 2:
        qc.cz(qubits[0], qubits[1])
        return
    base = math.pi / (1 << (k - 1))
    for mask in range(1, 1 << k):
        members = [qubits[i] for i in range(k) if (mask >> i) & 1]
        sign = 1.0 if len(members) % 2 == 1 else -1.0
        target = members[-1]
        for q in members[:-1]:
            qc.cx(q, target)
        qc.p(sign * base, target)
        for q in reversed(members[:-1]):
            qc.cx(q, target)


def grover(n: int, marked: int, iterations: int | None = None) -> QuantumCircuit:
    """Grover search over ``n`` qubits for the ``marked`` basis state.

    Parameters
    ----------
    n:
        Number of qubits (``2 <= n <= 8`` — dense oracle construction).
    marked:
        Index of the marked computational basis state.
    iterations:
        Grover iterations; defaults to ``round(pi/4 * sqrt(2^n))``.

    Raises
    ------
    CircuitError
        On out-of-range arguments.
    """
    if not (2 <= n <= 8):
        raise CircuitError(f"grover supports 2..8 qubits, got {n}")
    if not (0 <= marked < (1 << n)):
        raise CircuitError(f"marked state {marked} out of range")
    if iterations is None:
        # floor of (pi/4)sqrt(N): rounding up overshoots past the optimum
        # (visible already at n=2, where 1 iteration is exact)
        iterations = max(1, int(math.pi / 4 * math.sqrt(2**n)))
    qc = QuantumCircuit(n, name=f"grover{n}")
    for q in range(n):
        qc.h(q)
    all_qubits = list(range(n))
    zero_bits = [q for q in range(n) if not (marked >> q) & 1]
    for _ in range(iterations):
        # Oracle: phase-flip |marked>.
        for q in zero_bits:
            qc.x(q)
        _multi_controlled_z(qc, all_qubits)
        for q in zero_bits:
            qc.x(q)
        # Diffusion: reflect about the uniform state.
        for q in range(n):
            qc.h(q)
            qc.x(q)
        _multi_controlled_z(qc, all_qubits)
        for q in range(n):
            qc.x(q)
            qc.h(q)
    return qc


def w_state(n: int) -> QuantumCircuit:
    """Prepare ``|W_n> = (|10..0> + |01..0> + ... + |0..01>) / sqrt(n)``.

    Standard cascade: rotate amplitude down the line with controlled
    ``ry`` (decomposed to our vocabulary) and CNOTs.
    """
    if n < 1:
        raise CircuitError(f"w_state needs n >= 1, got {n}")
    qc = QuantumCircuit(n, name=f"w{n}")
    qc.x(0)
    for k in range(1, n):
        # controlled-RY(theta) with control k-1, target k, where
        # cos(theta/2) = sqrt(1/(n-k+1)): qubit k-1 keeps amplitude
        # 1/sqrt(n-k+1) of the remaining excitation, handing the rest on.
        theta = 2 * math.acos(math.sqrt(1.0 / (n - k + 1)))
        # CRY(theta) = RY(theta/2) . CX . RY(-theta/2) . CX on target
        qc.ry(theta / 2, k)
        qc.cx(k - 1, k)
        qc.ry(-theta / 2, k)
        qc.cx(k - 1, k)
        # move the excitation "handoff": swap roles via CX
        qc.cx(k, k - 1)
    return qc


def qaoa_maxcut_grid(
    grid: GridGraph, p: int = 1, gammas=None, betas=None, seed: int | None = None
) -> QuantumCircuit:
    """Depth-``p`` QAOA MaxCut ansatz on the grid's own edge set.

    Like the Trotter circuits, a geometric workload: with the identity
    mapping onto the same grid no routing is needed; any scrambled
    mapping exercises local routing.

    Parameters default to random angles (seeded) when not given.
    """
    if p < 1:
        raise CircuitError(f"p must be >= 1, got {p}")
    rng = np.random.default_rng(seed)
    if gammas is None:
        gammas = rng.uniform(0, math.pi, size=p)
    if betas is None:
        betas = rng.uniform(0, math.pi / 2, size=p)
    if len(gammas) != p or len(betas) != p:
        raise CircuitError("need exactly p gamma and beta angles")
    m, n = grid.shape
    qc = QuantumCircuit(m * n, name=f"qaoa{m}x{n}p{p}")
    for q in range(m * n):
        qc.h(q)
    for layer in range(p):
        for (u, v) in grid.edges:
            qc.rzz(float(gammas[layer]), u, v)
        for q in range(m * n):
            qc.rx(2 * float(betas[layer]), q)
    return qc


def hidden_shift(shift: str) -> QuantumCircuit:
    """Hidden-shift circuit for the Maiorana–McFarland bent function.

    ``2n`` qubits for an ``n``-bit shift restricted to the first half
    (the classic benchmark construction): measuring returns the shift on
    the first ``n`` qubits. Clifford-only, so it stays simulable and
    routing-heavy (CZ pairs across the two halves).
    """
    if not shift or any(c not in "01" for c in shift):
        raise CircuitError(f"shift must be a non-empty bit string, got {shift!r}")
    n = len(shift)
    qc = QuantumCircuit(2 * n, name=f"hshift{n}")
    for q in range(2 * n):
        qc.h(q)
    # f(x, y) = x . y shifted on the x half
    for i, bit in enumerate(shift):
        if bit == "1":
            qc.x(i)
    for i in range(n):
        qc.cz(i, n + i)
    for i, bit in enumerate(shift):
        if bit == "1":
            qc.x(i)
    for q in range(2 * n):
        qc.h(q)
    for i in range(n):
        qc.cz(i, n + i)
    for q in range(2 * n):
        qc.h(q)
    return qc
