"""Dependency DAG and layering for circuits.

Gates sharing a qubit are ordered by program order; gates on disjoint
qubits commute *structurally* (we make no algebraic commutation claims).
The DAG induces the ASAP layering used by the transpiler: layer ``t``
holds every gate whose qubit-wise predecessors all sit in layers ``< t``.
Barriers synchronize their qubits without occupying a layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CircuitError
from .circuit import QuantumCircuit
from .gates import Gate, is_pseudo_gate

__all__ = ["CircuitDag", "circuit_layers"]


@dataclass
class CircuitDag:
    """Explicit dependency DAG over gate indices of a circuit.

    Attributes
    ----------
    circuit:
        The underlying circuit.
    preds, succs:
        Adjacency lists over gate indices (barriers included as nodes so
        their synchronization is preserved).
    """

    circuit: QuantumCircuit
    preds: list[list[int]] = field(default_factory=list)
    succs: list[list[int]] = field(default_factory=list)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "CircuitDag":
        """Build the qubit-wise dependency DAG (O(gates))."""
        n_g = len(circuit)
        preds: list[list[int]] = [[] for _ in range(n_g)]
        succs: list[list[int]] = [[] for _ in range(n_g)]
        last_on_qubit: dict[int, int] = {}
        for i, gate in enumerate(circuit):
            for q in gate.qubits:
                j = last_on_qubit.get(q)
                if j is not None and i not in succs[j]:
                    succs[j].append(i)
                    preds[i].append(j)
                last_on_qubit[q] = i
        return cls(circuit, preds, succs)

    def topological_order(self) -> list[int]:
        """Gate indices in a valid execution order (program order works
        by construction; returned explicitly for symmetry/testing)."""
        return list(range(len(self.circuit)))

    def layers(self, include_pseudo: bool = False) -> list[list[int]]:
        """ASAP layers of gate indices.

        Barriers never occupy a layer; with ``include_pseudo`` False,
        measures/resets are also skipped (but still synchronize their
        qubit like a barrier would not — they simply don't appear).
        """
        level_of_qubit: dict[int, int] = {}
        layers: list[list[int]] = []
        for i, gate in enumerate(self.circuit):
            if gate.name == "barrier":
                sync = max((level_of_qubit.get(q, 0) for q in gate.qubits), default=0)
                for q in gate.qubits:
                    level_of_qubit[q] = sync
                continue
            if is_pseudo_gate(gate) and not include_pseudo:
                continue
            t = max((level_of_qubit.get(q, 0) for q in gate.qubits), default=0)
            while len(layers) <= t:
                layers.append([])
            layers[t].append(i)
            for q in gate.qubits:
                level_of_qubit[q] = t + 1
        return layers

    def front_layer(self, executed: set[int]) -> list[int]:
        """Gates whose predecessors are all executed and which are not.

        Used by the transpiler's routing loop.
        """
        out = []
        for i in range(len(self.circuit)):
            if i in executed:
                continue
            if all(p in executed for p in self.preds[i]):
                out.append(i)
        return out


def circuit_layers(
    circuit: QuantumCircuit, include_pseudo: bool = False
) -> list[list[Gate]]:
    """Convenience: ASAP layers as gate objects (see :class:`CircuitDag`)."""
    dag = CircuitDag.from_circuit(circuit)
    return [
        [circuit[i] for i in layer] for layer in dag.layers(include_pseudo)
    ]
