"""Gate vocabulary: names, arities, parameters and unitary matrices.

The transpiler and routers only care about which qubits a gate touches;
the statevector simulator (used to *verify* transpilation end-to-end) also
needs the unitaries. The vocabulary covers the OpenQASM 2 ``qelib1``
standard gates that our circuit library emits — all one- and two-qubit.

Matrix convention: little-endian qubit ordering (qubit 0 is the least
significant bit of the basis index). For a two-qubit gate applied to
``(control, target) = (q1, q0)`` the matrix rows/columns are indexed by
``q1 q0`` bit pairs ``00, 01, 10, 11`` — i.e. the first listed qubit is
the *high* bit within the gate's own matrix. The simulator handles the
embedding, so users only ever supply matrices in this local convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import cos, pi, sin
from typing import Callable

import numpy as np

from ..errors import CircuitError

__all__ = [
    "Gate",
    "GATE_ARITY",
    "gate_matrix",
    "is_two_qubit",
    "is_pseudo_gate",
    "PSEUDO_GATES",
]

#: Gates with no unitary action (scheduling/IO markers).
PSEUDO_GATES = frozenset({"barrier", "measure", "reset"})

#: name -> (number of qubits, number of parameters)
GATE_ARITY: dict[str, tuple[int, int]] = {
    "id": (1, 0),
    "x": (1, 0),
    "y": (1, 0),
    "z": (1, 0),
    "h": (1, 0),
    "s": (1, 0),
    "sdg": (1, 0),
    "t": (1, 0),
    "tdg": (1, 0),
    "sx": (1, 0),
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "p": (1, 1),
    "u1": (1, 1),
    "u2": (1, 2),
    "u3": (1, 3),
    "u": (1, 3),
    "cx": (2, 0),
    "cy": (2, 0),
    "cz": (2, 0),
    "ch": (2, 0),
    "swap": (2, 0),
    "iswap": (2, 0),
    "cp": (2, 1),
    "cu1": (2, 1),
    "crz": (2, 1),
    "rxx": (2, 1),
    "ryy": (2, 1),
    "rzz": (2, 1),
    "measure": (1, 0),
    "reset": (1, 0),
    # barrier has variable arity; handled specially
}


@dataclass(frozen=True)
class Gate:
    """One gate application: a name, target qubits and real parameters.

    Immutable and hashable so circuits can be compared and deduplicated.

    Raises
    ------
    CircuitError
        On arity/parameter-count mismatch or repeated qubits.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"gate {self.name} repeats a qubit: {self.qubits}")
        if self.name == "barrier":
            if self.params:
                raise CircuitError("barrier takes no parameters")
            return
        try:
            nq, npar = GATE_ARITY[self.name]
        except KeyError:
            raise CircuitError(f"unknown gate {self.name!r}") from None
        if len(self.qubits) != nq:
            raise CircuitError(
                f"gate {self.name} expects {nq} qubits, got {len(self.qubits)}"
            )
        if len(self.params) != npar:
            raise CircuitError(
                f"gate {self.name} expects {npar} params, got {len(self.params)}"
            )

    @property
    def n_qubits(self) -> int:
        """Number of qubits the gate touches."""
        return len(self.qubits)

    def remap(self, mapping) -> "Gate":
        """The same gate acting on ``mapping[q]`` for each qubit ``q``."""
        return Gate(self.name, tuple(int(mapping[q]) for q in self.qubits), self.params)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ps = f"({', '.join(f'{p:g}' for p in self.params)})" if self.params else ""
        return f"{self.name}{ps} {', '.join(map(str, self.qubits))}"


def is_two_qubit(gate: Gate) -> bool:
    """Whether the gate is a genuine two-qubit unitary (not a barrier)."""
    return gate.name != "barrier" and gate.n_qubits == 2


def is_pseudo_gate(gate: Gate) -> bool:
    """Whether the gate has no unitary action."""
    return gate.name == "barrier" or gate.name in PSEUDO_GATES


# ----------------------------------------------------------------------
# matrices
# ----------------------------------------------------------------------
_SQ2 = 1.0 / np.sqrt(2.0)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = cos(theta / 2), sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ]
    )


def _rot(axis: str, theta: float) -> np.ndarray:
    c, s = cos(theta / 2), sin(theta / 2)
    if axis == "x":
        return np.array([[c, -1j * s], [-1j * s, c]])
    if axis == "y":
        return np.array([[c, -s], [s, c]])
    return np.array([[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]])


def _controlled(u: np.ndarray) -> np.ndarray:
    out = np.eye(4, dtype=complex)
    out[2:, 2:] = u
    return out


def _two_qubit_rotation(pauli: str, theta: float) -> np.ndarray:
    """exp(-i theta/2 P⊗P) for P in {X, Y, Z}."""
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]])
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    p = {"x": x, "y": y, "z": z}[pauli]
    pp = np.kron(p, p)
    return np.cos(theta / 2) * np.eye(4) - 1j * np.sin(theta / 2) * pp


_FIXED: dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]]),
    "z": np.diag([1, -1]).astype(complex),
    "h": _SQ2 * np.array([[1, 1], [1, -1]], dtype=complex),
    "s": np.diag([1, 1j]),
    "sdg": np.diag([1, -1j]),
    "t": np.diag([1, np.exp(1j * pi / 4)]),
    "tdg": np.diag([1, np.exp(-1j * pi / 4)]),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]),
    "cx": _controlled(np.array([[0, 1], [1, 0]], dtype=complex)),
    "cy": _controlled(np.array([[0, -1j], [1j, 0]])),
    "cz": _controlled(np.diag([1, -1]).astype(complex)),
    "ch": _controlled(_SQ2 * np.array([[1, 1], [1, -1]], dtype=complex)),
    "swap": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
    "iswap": np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]
    ),
}

_PARAMETRIC: dict[str, Callable[..., np.ndarray]] = {
    "rx": lambda th: _rot("x", th),
    "ry": lambda th: _rot("y", th),
    "rz": lambda th: _rot("z", th),
    "p": lambda lam: np.diag([1, np.exp(1j * lam)]),
    "u1": lambda lam: np.diag([1, np.exp(1j * lam)]),
    "u2": lambda phi, lam: _u3(pi / 2, phi, lam),
    "u3": _u3,
    "u": _u3,
    "cp": lambda lam: np.diag([1, 1, 1, np.exp(1j * lam)]),
    "cu1": lambda lam: np.diag([1, 1, 1, np.exp(1j * lam)]),
    "crz": lambda lam: _controlled(_rot("z", lam)),
    "rxx": lambda th: _two_qubit_rotation("x", th),
    "ryy": lambda th: _two_qubit_rotation("y", th),
    "rzz": lambda th: _two_qubit_rotation("z", th),
}


def gate_matrix(gate: Gate) -> np.ndarray:
    """The unitary matrix of ``gate`` in its local qubit convention.

    Raises
    ------
    CircuitError
        For pseudo-gates (barrier/measure/reset) and unknown names.
    """
    if is_pseudo_gate(gate):
        raise CircuitError(f"gate {gate.name!r} has no unitary matrix")
    if gate.name in _FIXED:
        return _FIXED[gate.name]
    if gate.name in _PARAMETRIC:
        return np.asarray(_PARAMETRIC[gate.name](*gate.params), dtype=complex)
    raise CircuitError(f"no matrix known for gate {gate.name!r}")
