"""OpenQASM 2.0 subset reader and writer.

The paper's experimental ecosystem (and the qubit-routing literature at
large) exchanges benchmark circuits as OpenQASM 2.0 files. This module
implements the subset those benchmark suites actually use:

* header (``OPENQASM 2.0;``, ``include "qelib1.inc";``)
* register declarations (``qreg``/``creg``, multiple registers flattened
  in declaration order)
* applications of the ``qelib1`` gates in our vocabulary, with constant
  parameter expressions (``pi``, ``+ - * /``, parentheses, unary minus)
* ``measure q[i] -> c[j];``, ``barrier``, ``reset``
* comments (``//``) and arbitrary whitespace

Unsupported constructs (custom ``gate`` definitions, ``if``, ``opaque``,
whole-register broadcast application) raise
:class:`~repro.errors.QasmError` with the offending line — loud failure
beats silently mangled benchmarks.
"""

from __future__ import annotations

import ast
import math
import re

from ..errors import QasmError
from .circuit import QuantumCircuit
from .gates import GATE_ARITY

__all__ = ["loads", "dumps", "load_file", "dump_file"]

_TOKEN_RE = re.compile(
    r"^\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*"
    r"(?:\(\s*(?P<params>[^)]*)\s*\))?\s*"
    r"(?P<args>[^;]*);\s*$"
)
_REG_RE = re.compile(r"^(?P<reg>[a-zA-Z_][a-zA-Z0-9_]*)\s*\[\s*(?P<idx>\d+)\s*\]$")


def _eval_param(expr: str, line_no: int) -> float:
    """Safely evaluate a constant arithmetic expression with ``pi``."""
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError:
        raise QasmError(f"line {line_no}: bad parameter expression {expr!r}") from None

    def ev(node: ast.AST) -> float:
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name) and node.id == "pi":
            return math.pi
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            v = ev(node.operand)
            return -v if isinstance(node.op, ast.USub) else v
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
        ):
            a, b = ev(node.left), ev(node.right)
            if isinstance(node.op, ast.Add):
                return a + b
            if isinstance(node.op, ast.Sub):
                return a - b
            if isinstance(node.op, ast.Mult):
                return a * b
            return a / b
        raise QasmError(
            f"line {line_no}: unsupported construct in parameter {expr!r}"
        )

    return ev(tree)


def loads(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source into a :class:`QuantumCircuit`.

    Raises
    ------
    QasmError
        On anything outside the supported subset (with the line number).
    """
    # Strip comments, then split on semicolons while keeping approximate
    # line numbers for error messages.
    qreg_offsets: dict[str, int] = {}
    creg_names: set[str] = set()
    total_qubits = 0
    statements: list[tuple[int, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        for stmt in line.split(";"):
            stmt = stmt.strip()
            if stmt:
                statements.append((line_no, stmt + ";"))

    gates: list[tuple[str, list[int], list[float]]] = []

    def resolve(arg: str, line_no: int) -> int:
        m = _REG_RE.match(arg.strip())
        if not m:
            raise QasmError(
                f"line {line_no}: expected qubit reference like q[0], got {arg!r} "
                "(whole-register broadcast is not supported)"
            )
        reg, idx = m.group("reg"), int(m.group("idx"))
        if reg not in qreg_offsets:
            raise QasmError(f"line {line_no}: unknown quantum register {reg!r}")
        return qreg_offsets[reg] + idx

    for line_no, stmt in statements:
        if stmt.startswith("OPENQASM"):
            continue
        if stmt.startswith("include"):
            continue
        m = _TOKEN_RE.match(stmt)
        if not m:
            raise QasmError(f"line {line_no}: cannot parse statement {stmt!r}")
        name = m.group("name")
        params_src = m.group("params")
        args_src = m.group("args").strip()

        if name == "qreg":
            rm = _REG_RE.match(args_src)
            if not rm:
                raise QasmError(f"line {line_no}: bad qreg declaration {stmt!r}")
            qreg_offsets[rm.group("reg")] = total_qubits
            total_qubits += int(rm.group("idx"))
            continue
        if name == "creg":
            rm = _REG_RE.match(args_src)
            if not rm:
                raise QasmError(f"line {line_no}: bad creg declaration {stmt!r}")
            creg_names.add(rm.group("reg"))
            continue
        if name in ("gate", "opaque", "if"):
            raise QasmError(
                f"line {line_no}: {name!r} definitions are outside the "
                "supported OpenQASM subset"
            )
        if name == "measure":
            parts = [p.strip() for p in args_src.split("->")]
            if len(parts) != 2:
                raise QasmError(f"line {line_no}: bad measure statement {stmt!r}")
            gates.append(("measure", [resolve(parts[0], line_no)], []))
            continue
        if name == "barrier":
            qubits = [resolve(a, line_no) for a in args_src.split(",") if a.strip()]
            gates.append(("barrier", qubits, []))
            continue

        if name not in GATE_ARITY:
            raise QasmError(f"line {line_no}: unknown gate {name!r}")
        params = (
            [_eval_param(p.strip(), line_no) for p in params_src.split(",")]
            if params_src
            else []
        )
        qubits = [resolve(a, line_no) for a in args_src.split(",") if a.strip()]
        gates.append((name, qubits, params))

    if total_qubits == 0:
        raise QasmError("no qreg declared")
    qc = QuantumCircuit(total_qubits, name="qasm")
    for name, qubits, params in gates:
        qc.append(name, qubits, params)
    return qc


def dumps(circuit: QuantumCircuit) -> str:
    """Emit OpenQASM 2.0 for a circuit (single ``q``/``c`` registers)."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.n_qubits}];",
        f"creg c[{circuit.n_qubits}];",
    ]
    for g in circuit:
        args = ",".join(f"q[{q}]" for q in g.qubits)
        if g.name == "measure":
            q = g.qubits[0]
            lines.append(f"measure q[{q}] -> c[{q}];")
        elif g.params:
            ps = ",".join(repr(p) for p in g.params)
            lines.append(f"{g.name}({ps}) {args};")
        else:
            lines.append(f"{g.name} {args};")
    return "\n".join(lines) + "\n"


def load_file(path: str) -> QuantumCircuit:
    """Read and parse an OpenQASM 2.0 file."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())


def dump_file(circuit: QuantumCircuit, path: str) -> None:
    """Serialize a circuit to an OpenQASM 2.0 file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(circuit))
