"""The column bipartite multigraph ``G[a, b]`` of the paper (Section IV-A).

For an ``m x n`` grid ``G`` and a permutation ``pi``, the bipartite
multigraph ``G[a, b]`` has the ``n`` columns of the grid on both sides and,
for every token whose source row lies in ``{a, ..., b}``, one edge from its
source column to its destination column, labelled with the (source row,
destination row) pair.

Facts used by the routers (and asserted in the test suite):

* ``G[0, m-1]`` (paper: ``G[1, m]``) is **m-regular**: every column contains
  exactly ``m`` tokens and is the destination of exactly ``m`` tokens.
* By König's edge-coloring theorem an ``r``-regular bipartite multigraph
  decomposes into ``r`` perfect matchings, so peeling perfect matchings one
  at a time always succeeds on the full window.
* Removing any perfect matching of the *full* vertex set keeps the
  multigraph regular (degree drops by one everywhere), so windowed peeling
  (which also removes only full perfect matchings) always leaves a
  decomposable remainder — this is what makes the paper's doubling window
  search (Algorithm 2) terminate.

A *perfect matching* here is a set of ``n`` tokens containing exactly one
token per source column and one per destination column.
"""

from __future__ import annotations

import numpy as np

from ..errors import MatchingError
from ..kernels import KernelBackend, get_backend
from ..perm.permutation import Permutation

__all__ = ["ColumnMultigraph"]


class ColumnMultigraph:
    """Mutable view of the token multigraph, supporting matching peeling.

    Parameters
    ----------
    shape:
        ``(m, n)`` — number of rows and columns of the grid.
    perm:
        The permutation to route; tokens are identified with their source
        vertex in row-major numbering (token ``t`` starts at
        ``(t // n, t % n)``).

    Notes
    -----
    Construction is fully vectorized; peeling maintains a boolean
    ``remaining`` mask over tokens rather than materializing edge lists.
    """

    __slots__ = (
        "m",
        "n",
        "src_row",
        "src_col",
        "dst_row",
        "dst_col",
        "_remaining",
    )

    def __init__(self, shape: tuple[int, int], perm: Permutation) -> None:
        m, n = shape
        if m <= 0 or n <= 0:
            raise MatchingError(f"invalid grid shape {shape}")
        if perm.size != m * n:
            raise MatchingError(
                f"permutation size {perm.size} != grid size {m * n}"
            )
        self.m = m
        self.n = n
        src = np.arange(m * n)
        dst = perm.targets
        self.src_row = src // n
        self.src_col = src % n
        self.dst_row = dst // n
        self.dst_col = dst % n
        self._remaining = np.ones(m * n, dtype=bool)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_remaining(self) -> int:
        """Number of tokens not yet consumed by a peeled matching."""
        return int(self._remaining.sum())

    def remaining_tokens(self) -> np.ndarray:
        """Ids of tokens not yet consumed."""
        return np.flatnonzero(self._remaining)

    def degrees(self) -> tuple[np.ndarray, np.ndarray]:
        """(left, right) degree vectors of the remaining multigraph."""
        rem = self.remaining_tokens()
        left = np.bincount(self.src_col[rem], minlength=self.n)
        right = np.bincount(self.dst_col[rem], minlength=self.n)
        return left, right

    def is_regular(self) -> bool:
        """Whether all remaining degrees are equal on both sides."""
        left, right = self.degrees()
        return bool((left == left[0]).all() and (right == left[0]).all())

    # ------------------------------------------------------------------
    # peeling
    # ------------------------------------------------------------------
    def peel_perfect_matching(
        self,
        row_lo: int = 0,
        row_hi: int | None = None,
        pick: str = "center",
        backend: KernelBackend | str | None = None,
    ) -> np.ndarray | None:
        """Extract one perfect matching from the window ``[row_lo, row_hi]``.

        Considers only remaining tokens with **source row** inside the
        window (the paper's ``G[a, b]``). If the window's support graph has
        a perfect matching on the columns, one concrete token per matched
        column pair is chosen, consumed, and returned; otherwise ``None``
        is returned and nothing is consumed.

        Parameters
        ----------
        row_lo, row_hi:
            Inclusive row window (``row_hi`` defaults to the last row).
        pick:
            How to choose among parallel edges (tokens with the same
            source/destination column pair):

            * ``"center"`` — token whose source/destination rows are
              closest to the window center (locality-friendly; used by
              the locality-aware router),
            * ``"first"``  — smallest token id (the "arbitrary" choice of
              the naive ACG decomposition).
        backend:
            Kernel backend (instance, name, or ``None`` for the ambient
            default) executing the representative-selection + matching
            step.

        Returns
        -------
        Array of ``n`` token ids (index = source column), or ``None``.
        """
        if row_hi is None:
            row_hi = self.m - 1
        if not (0 <= row_lo <= row_hi <= self.m - 1):
            raise MatchingError(f"bad row window [{row_lo}, {row_hi}]")
        if pick not in ("center", "first"):
            raise MatchingError(f"unknown pick strategy {pick!r}")

        n = self.n
        window = (
            self._remaining
            & (self.src_row >= row_lo)
            & (self.src_row <= row_hi)
        )
        tokens = np.flatnonzero(window)
        if tokens.size < n:
            return None

        # Best representative token per (source column, destination column),
        # by (cost, token id); support-graph matching and instantiation are
        # delegated to the kernel backend.
        center = 0.5 * (row_lo + row_hi)
        if pick == "center":
            cost = np.abs(self.src_row[tokens] - center) + np.abs(
                self.dst_row[tokens] - center
            )
        else:
            cost = tokens.astype(float)
        sc = self.src_col[tokens]
        dc = self.dst_col[tokens]
        picked = get_backend(backend).peel_matching(tokens, sc, dc, cost, n)
        if picked is None:
            return None

        chosen = np.asarray(picked, dtype=np.int64)
        self._remaining[chosen] = False
        return chosen

    def restore(self, tokens: np.ndarray) -> None:
        """Return previously consumed tokens to the multigraph (for search
        strategies that explore and backtrack)."""
        self._remaining[tokens] = True

    def matching_rows(self, tokens: np.ndarray) -> np.ndarray:
        """Concatenated source and destination rows of a matching's tokens.

        These ``2n`` values are exactly the terms of the paper's
        ``Delta(M, r) = sum |i_j - r| + sum |i'_j - r|`` metric.
        """
        return np.concatenate([self.src_row[tokens], self.dst_row[tokens]])
