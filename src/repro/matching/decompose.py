"""Perfect-matching decompositions of the column multigraph.

Two strategies, mirroring the paper's comparison:

* :func:`naive_decomposition` — the original Alon–Chung–Graham choice:
  peel ``m`` perfect matchings from the full multigraph "in an arbitrary
  manner" (we use smallest-token-id instantiation, full row window).
* :func:`windowed_decomposition` — the paper's locality-aware doubling
  search (Algorithm 2, lines 3–18): look for perfect matchings inside row
  windows of width ``w + 1`` for ``w = 0, 1, 2, 4, ...``, consuming
  matchings made of row-local tokens before ever considering global ones.

Both return the list of matchings as arrays of token ids. The windowed
variant additionally records, per matching, the window width at which it
was found (useful for diagnostics and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MatchingError
from ..kernels import KernelBackend, get_backend
from .multigraph import ColumnMultigraph

__all__ = ["Decomposition", "naive_decomposition", "windowed_decomposition"]


@dataclass
class Decomposition:
    """Result of decomposing the column multigraph into perfect matchings.

    Attributes
    ----------
    matchings:
        ``m`` arrays of ``n`` token ids each; ``matchings[k][j]`` is the
        token of matching ``k`` whose source column is ``j``.
    window_widths:
        For the windowed strategy, the window width (``w + 1`` rows) at
        which each matching was discovered; ``m`` (full height) for naive.
    rows_used:
        Per matching, the concatenated source/destination rows (``2n``
        values) — the inputs to the ``Delta`` metric.
    """

    matchings: list[np.ndarray]
    window_widths: list[int] = field(default_factory=list)
    rows_used: list[np.ndarray] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.matchings)


def naive_decomposition(
    mg: ColumnMultigraph, backend: KernelBackend | str | None = None
) -> Decomposition:
    """Peel ``m`` perfect matchings with arbitrary (first-id) instantiation.

    ``backend`` selects the kernel backend executing the peels (instance,
    name, or ``None`` for the ambient default).

    Raises
    ------
    MatchingError
        If the multigraph cannot supply ``m`` perfect matchings — which
        cannot happen for a genuine permutation input (the multigraph is
        ``m``-regular); the error guards corrupted state.
    """
    kb = get_backend(backend)
    m = mg.m
    out: list[np.ndarray] = []
    for _ in range(m):
        pm = mg.peel_perfect_matching(0, m - 1, pick="first", backend=kb)
        if pm is None:
            raise MatchingError(
                "regular multigraph failed to yield a perfect matching; "
                "input was not a permutation or state is corrupted"
            )
        out.append(pm)
    return Decomposition(
        matchings=out,
        window_widths=[m] * m,
        rows_used=[mg.matching_rows(pm) for pm in out],
    )


def windowed_decomposition(
    mg: ColumnMultigraph,
    growth: str = "nested",
    backend: KernelBackend | str | None = None,
) -> Decomposition:
    """The paper's doubling-window matching search (Algorithm 2, lines 3–18).

    Starting with window size ``w = 0`` (single rows) and growing each
    round, scan the row windows ``[r, min(r + w, m - 1)]`` for
    ``r = 0, w+1, 2(w+1), ...`` and greedily peel every perfect matching
    found, until ``m`` matchings have been collected. Matchings found at
    small ``w`` consist of tokens whose source rows are close together —
    the locality the router later exploits via the ``Delta`` metric.

    Parameters
    ----------
    growth:
        How the window parameter ``w`` grows between passes.

        * ``"nested"`` (default) — ``w <- 2w + 1``, i.e. window widths
          ``1, 2, 4, 8, ...`` aligned at multiples of the width. Windows
          of successive passes then **nest**, which preserves a key
          invariant: peeling a perfect matching from a sub-window removes
          exactly one token per column, so every ancestor window that was
          regular stays regular and keeps decomposing. On block-local
          permutations this finds *every* matching at the block scale
          (empirically collapsing the column phases from ~20 rounds to
          the block height).
        * ``"paper"`` — the literal Algorithm 2 update ``w <- 2w``
          (widths ``1, 2, 3, 5, 9, ...``). These windows straddle block
          boundaries, and early misaligned peels can destroy the
          regularity of later windows, forcing some matchings global.
          Kept for the faithfulness ablation
          (``benchmarks/bench_ablation_strategies.py``).
    backend:
        Kernel backend executing the peels (instance, name, or ``None``
        for the ambient default).

    Raises
    ------
    MatchingError
        On an unknown ``growth``, or if matchings are still missing after
        the window has covered all rows twice (impossible for permutation
        inputs; defensive).
    """
    if growth not in ("nested", "paper"):
        raise MatchingError(f"unknown window growth {growth!r}")
    kb = get_backend(backend)
    m = mg.m
    out: list[np.ndarray] = []
    widths: list[int] = []
    w = 0
    full_window_passes = 0
    while len(out) < m:
        r = 0
        while r < m:
            hi = min(r + w, m - 1)
            while len(out) < m:
                pm = mg.peel_perfect_matching(r, hi, pick="center", backend=kb)
                if pm is None:
                    break
                out.append(pm)
                widths.append(w + 1)
            r += w + 1
        if w >= m - 1:
            full_window_passes += 1
            if full_window_passes > 1 and len(out) < m:
                raise MatchingError(
                    "windowed decomposition failed to complete; "
                    "input was not a permutation or state is corrupted"
                )
        if growth == "nested":
            w = 2 * w + 1
        else:
            w = 1 if w == 0 else 2 * w
    return Decomposition(
        matchings=out,
        window_widths=widths,
        rows_used=[mg.matching_rows(pm) for pm in out],
    )
