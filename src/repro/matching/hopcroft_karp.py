"""Hopcroft–Karp maximum bipartite matching.

Used in three places:

* peeling perfect matchings out of the column multigraph ``G[a,b]``
  (Algorithm 2, line 8 of the paper);
* feasibility tests inside the bottleneck-matching threshold search
  (the MCBBM step, Algorithm 2, line 20);
* assorted test oracles.

The implementation is the standard ``O(E * sqrt(V))`` BFS-layering /
DFS-augmenting version, written iteratively (no recursion limits) over
plain adjacency lists. For the instance sizes the routers produce
(``V = n`` columns, ``E <= m*n`` token edges collapsed to at most ``n^2``
support edges) this is far from being a bottleneck, matching the
"algorithmic optimization first" guidance.

Distance labels are plain ints with ``n_left + 1`` as the
unreached/dead sentinel: a finite BFS level never exceeds
``n_left - 1``, so every comparison behaves exactly as it did with the
old ``float('inf')`` labels while staying on the fast int path (and the
vectorized backend shares the same convention, keeping the two
implementations diff-friendly).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from ..profiling import stage

__all__ = ["hopcroft_karp", "is_perfect_matching_possible"]


def hopcroft_karp(
    n_left: int, n_right: int, adj: Sequence[Sequence[int]]
) -> tuple[list[int], list[int], int]:
    """Maximum matching in a bipartite graph.

    Parameters
    ----------
    n_left, n_right:
        Sizes of the two vertex classes.
    adj:
        ``adj[u]`` lists the right-vertices adjacent to left-vertex ``u``.

    Returns
    -------
    (match_left, match_right, size):
        ``match_left[u]`` is the right partner of ``u`` or ``-1``;
        ``match_right[v]`` the left partner of ``v`` or ``-1``; ``size``
        the matching cardinality.

    Examples
    --------
    >>> ml, mr, k = hopcroft_karp(2, 2, [[0, 1], [0]])
    >>> k
    2
    """
    match_l = [-1] * n_left
    match_r = [-1] * n_right
    unreached = n_left + 1
    dist = [0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        push = queue.append
        for u in range(n_left):
            if match_l[u] == -1:
                dist[u] = 0
                push(u)
            else:
                dist[u] = unreached
        found = False
        # Hoist the hot lookups out of the inner loop: `mr`/`d` skip the
        # repeated closure-cell loads, `du1` the per-edge re-add.
        mr = match_r
        d = dist
        while queue:
            u = queue.popleft()
            du1 = d[u] + 1
            for v in adj[u]:
                w = mr[v]
                if w == -1:
                    found = True
                elif d[w] == unreached:
                    d[w] = du1
                    push(w)
        return found

    def dfs(root: int) -> bool:
        # Iterative DFS along the BFS layering; stack holds (vertex,
        # iterator index into adj[vertex]). `path` carries the tentative
        # (left, right) pairs of the current stack: exactly one entry is
        # appended before each child push, and exactly one is removed when
        # a child frame fails, so on a root failure `path` is empty again.
        stack: list[tuple[int, int]] = [(root, 0)]
        path: list[tuple[int, int]] = []  # (left vertex, right vertex) tentative
        while stack:
            u, idx = stack[-1]
            if idx >= len(adj[u]):
                dist[u] = unreached
                stack.pop()
                if path:
                    path.pop()  # drop the edge that led into the failed frame
                continue
            stack[-1] = (u, idx + 1)
            v = adj[u][idx]
            w = match_r[v]
            if w == -1:
                # Augmenting path found: flip matched status along `path`.
                path.append((u, v))
                for pu, pv in path:
                    match_l[pu] = pv
                    match_r[pv] = pu
                return True
            if dist[w] == dist[u] + 1:
                path.append((u, v))
                stack.append((w, 0))
        return False

    size = 0
    with stage("matching"):
        while bfs():
            for u in range(n_left):
                if match_l[u] == -1 and dfs(u):
                    size += 1
    return match_l, match_r, size


def is_perfect_matching_possible(
    n: int, adj: Sequence[Sequence[int]]
) -> bool:
    """Whether a balanced bipartite graph on ``n + n`` vertices has a PM."""
    _, _, size = hopcroft_karp(n, n, adj)
    return size == n
