"""Bottleneck bipartite matching (the MCBBM step of Algorithm 2).

The paper assigns each peeled perfect matching ``M`` to an intermediate
grid row ``r`` by solving a *maximum cardinality bottleneck bipartite
matching* (MCBBM) problem on the complete bipartite graph
``H(P, rows)`` with edge weight ``Delta(M, r)``: among all perfect
matchings of ``H``, pick one minimizing the **maximum** edge weight, so no
single matching is assigned a catastrophically distant row.

Since ``H`` is complete and balanced, MCBBM reduces to the *bottleneck
assignment problem*, solved here by binary search over the sorted distinct
weights with a Hopcroft–Karp feasibility test per probe —
``O(E sqrt(V) log E)``, comfortably inside the paper's
``~O(m^{2.5})`` budget (they cite Punnen–Nair; the threshold method has the
same practical complexity profile at our sizes and is simpler to verify).

A general (possibly unbalanced / incomplete) MCBBM solver is also provided
for completeness and testing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import MatchingError
from ..kernels import KernelBackend, get_backend
from .hopcroft_karp import hopcroft_karp

__all__ = ["bottleneck_assignment", "max_cardinality_bottleneck_matching"]


def bottleneck_assignment(
    weights: np.ndarray,
    refine: bool = True,
    backend: KernelBackend | str | None = None,
) -> tuple[np.ndarray, float]:
    """Perfect matching of a complete balanced bipartite graph minimizing
    the maximum edge weight.

    Parameters
    ----------
    weights:
        ``(k, k)`` cost matrix; ``weights[i, j]`` is the cost of assigning
        left vertex ``i`` to right vertex ``j``.
    refine:
        When True (default), among all assignments achieving the optimal
        bottleneck, return one minimizing the **total** weight
        (lexicographic bottleneck-then-sum, via the Hungarian method when
        scipy is available). Pure MCBBM fixes only the worst edge; once a
        few unavoidably global matchings pin the bottleneck high, every
        other assignment would otherwise be unconstrained — refinement
        keeps the well-localized majority near their preferred rows. The
        effect is measured by the ``mcbbm`` ablation benchmark.
    backend:
        Kernel backend (instance, name, or ``None`` for the ambient
        default) executing the per-threshold feasibility probes.

    Returns
    -------
    (assignment, bottleneck):
        ``assignment[i]`` is the right vertex matched to left vertex ``i``;
        ``bottleneck`` is the (optimal) maximum assigned weight.

    Examples
    --------
    >>> import numpy as np
    >>> a, b = bottleneck_assignment(np.array([[1, 9], [9, 1]]))
    >>> a.tolist(), b
    ([0, 1], 1.0)
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise MatchingError(f"weights must be square, got shape {w.shape}")
    k = w.shape[0]
    values = np.unique(w)
    kb = get_backend(backend)

    def feasible(threshold: float) -> list[int] | None:
        return kb.bottleneck_feasible(w, float(threshold))

    lo, hi = 0, len(values) - 1
    best: list[int] | None = feasible(values[hi])
    if best is None:
        raise MatchingError("complete bipartite graph has no perfect matching?")
    while lo < hi:
        mid = (lo + hi) // 2
        cand = feasible(values[mid])
        if cand is not None:
            best = cand
            hi = mid
        else:
            lo = mid + 1
    bottleneck = float(values[hi])

    if refine and k > 1:
        try:
            from scipy.optimize import linear_sum_assignment
        except ImportError:  # pragma: no cover - scipy present in CI
            pass
        else:
            # Forbid edges above the bottleneck with a finite big-M: any
            # feasible assignment costs <= bottleneck * k < big, so the
            # optimum never uses a forbidden edge.
            big = bottleneck * k + 1.0
            masked = np.where(w <= bottleneck, w, big)
            _, cols = linear_sum_assignment(masked)
            return cols.astype(np.int64), bottleneck

    return np.asarray(best, dtype=np.int64), bottleneck


def max_cardinality_bottleneck_matching(
    n_left: int,
    n_right: int,
    edges: Sequence[tuple[int, int, float]],
) -> tuple[list[tuple[int, int]], float, int]:
    """General MCBBM: maximize cardinality, then minimize the max weight.

    Parameters
    ----------
    n_left, n_right:
        Bipartition sizes.
    edges:
        ``(left, right, weight)`` triples.

    Returns
    -------
    (matching, bottleneck, cardinality):
        ``matching`` as (left, right) pairs; ``bottleneck`` is the largest
        weight used (``-inf`` for an empty matching).

    Raises
    ------
    MatchingError
        On out-of-range endpoints.
    """
    for u, v, _ in edges:
        if not (0 <= u < n_left and 0 <= v < n_right):
            raise MatchingError(f"edge ({u}, {v}) out of range")

    if not edges:
        return [], float("-inf"), 0

    weights = sorted(set(w for _, _, w in edges))

    def matching_at(threshold: float) -> tuple[list[int], int]:
        adj: list[list[int]] = [[] for _ in range(n_left)]
        for u, v, w in edges:
            if w <= threshold:
                adj[u].append(v)
        match_l, _, size = hopcroft_karp(n_left, n_right, adj)
        return match_l, size

    full_match, max_card = matching_at(weights[-1])
    if max_card == 0:
        return [], float("-inf"), 0

    lo, hi = 0, len(weights) - 1
    best = full_match
    while lo < hi:
        mid = (lo + hi) // 2
        cand, size = matching_at(weights[mid])
        if size == max_card:
            best = cand
            hi = mid
        else:
            lo = mid + 1

    pairs = [(u, v) for u, v in enumerate(best) if v != -1]
    # Recover the realized bottleneck among chosen pairs.
    weight_of: dict[tuple[int, int], float] = {}
    for u, v, w in edges:
        key = (u, v)
        if key not in weight_of or w < weight_of[key]:
            weight_of[key] = w
    bottleneck = max(weight_of[p] for p in pairs)
    return pairs, float(bottleneck), max_card
