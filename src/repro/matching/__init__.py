"""Matching substrate: Hopcroft–Karp, column multigraph, MCBBM."""

from .bottleneck import bottleneck_assignment, max_cardinality_bottleneck_matching
from .decompose import Decomposition, naive_decomposition, windowed_decomposition
from .hopcroft_karp import hopcroft_karp, is_perfect_matching_possible
from .multigraph import ColumnMultigraph

__all__ = [
    "hopcroft_karp",
    "is_perfect_matching_possible",
    "ColumnMultigraph",
    "Decomposition",
    "naive_decomposition",
    "windowed_decomposition",
    "bottleneck_assignment",
    "max_cardinality_bottleneck_matching",
]
