"""NISQ noise model for fidelity-based router comparison."""

from .model import SWAP_CNOT_COST, NoiseModel, swaps_as_cnots

__all__ = ["NoiseModel", "swaps_as_cnots", "SWAP_CNOT_COST"]
