"""NISQ error model: turn depth/size into estimated fidelity.

The paper's motivation is that extra SWAPs "invariably make it more
likely that the output of Q_P will deviate significantly from that of
Q_L". This module quantifies that: a standard independent-error model
(constant depolarizing error per 1q/2q gate, idle decay per layer per
qubit, optional readout error) estimates the success probability of a
circuit or swap schedule, so routers can be compared in the unit that
actually matters on hardware.

Model
-----
``log F = n1*log(1-e1) + n2*log(1-e2) + idle*log(1-ei) [+ nq*log(1-er)]``

where ``idle`` counts (layer, qubit) slots in which the qubit is idle —
computed from the same greedy levelling as circuit depth, so a *deeper*
circuit with the same gate count scores worse, exactly the depth-vs-size
trade-off the routing-via-matchings objective captures.

Defaults are loosely typical of published superconducting-qubit numbers
(circa the paper's era): ``e1 = 3e-4``, ``e2 = 3e-3``, idle ``1e-4`` per
layer, readout ``1e-2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ReproError
from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import is_pseudo_gate
from ..routing.schedule import Schedule

__all__ = ["NoiseModel", "swaps_as_cnots"]

#: A SWAP compiles to three CNOTs on CNOT-native hardware.
SWAP_CNOT_COST = 3


def swaps_as_cnots(schedule: Schedule) -> tuple[int, int]:
    """(two-qubit gate count, depth) of a schedule compiled to CNOTs.

    Each swap layer becomes three CNOT layers; sizes triple.
    """
    return SWAP_CNOT_COST * schedule.size, SWAP_CNOT_COST * schedule.depth


@dataclass(frozen=True)
class NoiseModel:
    """Independent-error NISQ model; see module docstring.

    Attributes
    ----------
    error_1q, error_2q:
        Depolarizing error per one-/two-qubit gate.
    error_idle:
        Error per (layer, idle qubit) slot.
    error_readout:
        Per-qubit measurement error (applied by
        :meth:`success_probability` when ``measured`` is true).
    """

    error_1q: float = 3e-4
    error_2q: float = 3e-3
    error_idle: float = 1e-4
    error_readout: float = 1e-2

    def __post_init__(self) -> None:
        for name in ("error_1q", "error_2q", "error_idle", "error_readout"):
            v = getattr(self, name)
            if not (0.0 <= v < 1.0):
                raise ReproError(f"{name} must be in [0, 1), got {v}")

    # ------------------------------------------------------------------
    def log_fidelity(self, circuit: QuantumCircuit) -> float:
        """Natural-log fidelity estimate of a circuit (<= 0)."""
        n1 = n2 = 0
        level = [0] * circuit.n_qubits
        busy = [0] * circuit.n_qubits  # busy slots per qubit
        for g in circuit:
            if g.name == "barrier":
                sync = max((level[q] for q in g.qubits), default=0)
                for q in g.qubits:
                    level[q] = sync
                continue
            if is_pseudo_gate(g):
                continue
            if g.n_qubits == 1:
                n1 += 1
            else:
                n2 += 1
            t = max(level[q] for q in g.qubits) + 1
            for q in g.qubits:
                level[q] = t
                busy[q] += 1
        depth = max(level, default=0)
        idle = sum(depth - b for b in busy)
        out = 0.0
        if n1:
            out += n1 * math.log1p(-self.error_1q)
        if n2:
            out += n2 * math.log1p(-self.error_2q)
        if idle and self.error_idle:
            out += idle * math.log1p(-self.error_idle)
        return out

    def success_probability(
        self, circuit: QuantumCircuit, measured: bool = False
    ) -> float:
        """Estimated probability the circuit runs error-free.

        With ``measured``, adds readout error on every qubit.
        """
        logf = self.log_fidelity(circuit)
        if measured and self.error_readout:
            logf += circuit.n_qubits * math.log1p(-self.error_readout)
        return math.exp(logf)

    def schedule_fidelity(self, schedule: Schedule) -> float:
        """Success estimate of a swap schedule compiled to CNOTs.

        Uses the CNOT compilation (3 two-qubit gates per swap, depth
        tripled) plus idle decay on untouched qubits, so both the size
        *and* depth objectives of the routing problem show up in the
        score.
        """
        n2, depth = swaps_as_cnots(schedule)
        idle = schedule.n_vertices * depth - 2 * n2
        out = n2 * math.log1p(-self.error_2q)
        if idle > 0 and self.error_idle:
            out += idle * math.log1p(-self.error_idle)
        return math.exp(out)

    def compare_schedules(self, schedules: dict[str, Schedule]) -> dict[str, float]:
        """Success estimates for several routers' schedules, by label."""
        return {k: self.schedule_fidelity(s) for k, s in schedules.items()}
