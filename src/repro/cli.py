"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``route``
    Route a generated workload (or the identity) on a grid and print
    depth/size/time per router, optionally the ASCII schedule.
``transpile``
    Read an OpenQASM 2 file, map+route it onto a grid device, report
    overheads and optionally write the physical circuit back to QASM.
``sweep``
    A small Figure-4/5 style sweep printed as tables with claim checks.
``info``
    List available routers and workload generators.

The CLI is a thin veneer over the library — every code path it exercises
is the public API, which keeps it honest as living documentation.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .bench import check_claims, run_sweep, series_table
from .errors import ReproError
from .graphs import GridGraph
from .noise import NoiseModel
from .perm import WORKLOADS, make_workload
from .routing import available_routers, make_router
from .routing.serialize import render_grid_schedule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Locality-aware qubit routing for grid architectures "
        "(reproduction of Banerjee, Liang, Tohid, IPPS 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_route = sub.add_parser("route", help="route a workload on a grid")
    p_route.add_argument("--rows", type=int, default=8)
    p_route.add_argument("--cols", type=int, default=8)
    p_route.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="random"
    )
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument(
        "--router",
        action="append",
        choices=available_routers(),
        help="repeatable; default: local, naive, ats",
    )
    p_route.add_argument(
        "--show", action="store_true", help="render the best schedule as ASCII"
    )
    p_route.add_argument(
        "--fidelity", action="store_true", help="estimate NISQ success probability"
    )

    p_trans = sub.add_parser("transpile", help="transpile an OpenQASM 2 file")
    p_trans.add_argument("qasm", help="input .qasm path")
    p_trans.add_argument("--rows", type=int, required=True)
    p_trans.add_argument("--cols", type=int, required=True)
    p_trans.add_argument("--router", choices=available_routers(), default="local")
    p_trans.add_argument(
        "--mapping",
        choices=["identity", "random", "center", "annealed"],
        default="identity",
    )
    p_trans.add_argument("--seed", type=int, default=0)
    p_trans.add_argument("--out", help="write the physical circuit here")

    p_sweep = sub.add_parser("sweep", help="mini Figure 4/5 sweep")
    p_sweep.add_argument("--sizes", type=int, nargs="+", default=[8, 12, 16])
    p_sweep.add_argument("--seeds", type=int, default=2)
    p_sweep.add_argument(
        "--workloads", nargs="+", choices=sorted(WORKLOADS),
        default=["random", "block_local"],
    )

    sub.add_parser("info", help="list routers and workloads")
    return parser


def _cmd_route(args: argparse.Namespace) -> int:
    grid = GridGraph(args.rows, args.cols)
    perm = make_workload(args.workload, grid, seed=args.seed)
    router_names = args.router or ["local", "naive", "ats"]
    noise = NoiseModel()
    best = None
    print(
        f"{args.workload} permutation on {args.rows}x{args.cols} grid "
        f"(seed {args.seed})"
    )
    for name in router_names:
        router = make_router(name)
        t0 = time.perf_counter()
        sched = router.route(grid, perm)
        dt = time.perf_counter() - t0
        sched.verify(grid, perm)
        line = (
            f"  {name:8s} depth={sched.depth:4d} swaps={sched.size:5d} "
            f"time={dt * 1e3:8.1f}ms"
        )
        if args.fidelity:
            line += f" est.success={noise.schedule_fidelity(sched):.4f}"
        print(line)
        if best is None or sched.depth < best[1].depth:
            best = (name, sched)
    if args.show and best is not None:
        print(f"\nschedule from {best[0]}:")
        print(render_grid_schedule(grid, best[1]))
    return 0


def _cmd_transpile(args: argparse.Namespace) -> int:
    from .circuit import dump_file, load_file
    from .transpile import transpile

    circuit = load_file(args.qasm)
    grid = GridGraph(args.rows, args.cols)
    result = transpile(
        circuit, grid, router=args.router, mapping=args.mapping, seed=args.seed
    )
    print(result.summary())
    print(
        "final placement (logical -> physical): "
        + ", ".join(f"{l}->{p}" for l, p in enumerate(result.final_mapping))
    )
    if args.out:
        dump_file(result.physical, args.out)
        print(f"physical circuit written to {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    routers = {name: make_router(name) for name in ("local", "naive", "ats")}
    sweep = run_sweep(
        args.sizes, args.workloads, routers, seeds=range(args.seeds)
    )
    print(series_table(sweep, "depth", title="depth (mean)"))
    print(series_table(sweep, "seconds", title="router time (mean)"))
    for check in check_claims(sweep):
        print(check)
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    print("routers:  " + ", ".join(available_routers()))
    print("workloads: " + ", ".join(sorted(WORKLOADS)))
    return 0


_COMMANDS = {
    "route": _cmd_route,
    "transpile": _cmd_transpile,
    "sweep": _cmd_sweep,
    "info": _cmd_info,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
