"""Command-line interface: ``python -m repro <command>`` (or ``repro ...``).

Commands
--------
``route``
    Route a generated workload (or the identity) on a grid and print
    depth/size/time per router, optionally the ASCII schedule. With
    ``--json``, machine-readable metrics instead.
``transpile``
    Read an OpenQASM 2 file, map+route it onto a grid device, report
    overheads (``--json`` for machine-readable) and optionally write the
    physical circuit back to QASM.
``batch``
    Bulk routing through :class:`~repro.service.RoutingService`: a file
    of JSON request lines in, a JSONL stream of results out, with
    dedup, schedule caching and a process-pool worker fleet. With
    ``--daemon SOCKET`` the requests are shipped to a running ``repro
    serve`` daemon instead of a fresh local service, so repeated
    invocations reuse one warm pool and cache; ``--http URL`` does the
    same over a ``repro serve --http`` server (one ``POST
    /v1/route_batch`` round trip).
``serve``
    Long-lived daemon speaking newline-delimited JSON over a UNIX
    socket (``--socket``) or stdin/stdout (``--pipe``), or HTTP/JSON
    (``--http HOST:PORT``, including Prometheus ``/metrics``); see
    :mod:`repro.service.daemon` and :mod:`repro.service.http` for the
    protocols. Repeatable ``--peer ADDR`` joins the daemon to a
    cluster cache ring (:mod:`repro.service.cluster`);
    ``--topology-file PATH`` instead watches a JSON membership file
    (reloaded on mtime change or SIGHUP); ``repro batch --cluster
    ADDR`` taps the same ring from a one-shot batch. ``--tenants
    FILE`` enforces multi-tenant API-key authentication with
    weighted-fair queueing, ``--max-queue-depth N`` sheds load with
    429 once that many requests are queued, and ``repro batch
    --api-key KEY`` sends the matching credential (see
    docs/OPERATIONS.md, "Tenancy and overload").
``trace``
    Fetch finished request traces from one or more daemons and render
    each as a span tree with durations (``--id`` for one trace,
    ``--slow N`` for traces above a threshold). Traces fetched from
    several ring members are merged by trace id, so a request that
    hopped daemons renders as one tree (see
    :mod:`repro.service.tracing` and docs/OBSERVABILITY.md).
``topology``
    Inspect or change a live ring's membership without restarts:
    ``repro topology show ADDR`` prints a daemon's epoch + members;
    ``repro topology join NEW --contact ADDR`` / ``repro topology
    leave NODE --contact ADDR`` push an epoch-guarded membership
    change to every member (scale-up triggers key-space handoff so
    the new shard starts warm).
``sweep``
    A small Figure-4/5 style sweep printed as tables with claim checks.
``info``
    List available routers and workload generators.

The CLI is a thin veneer over the library — every code path it exercises
is the public API, which keeps it honest as living documentation. All
machine-readable output (``--json``, ``batch``) goes through the
encoding helpers of :mod:`repro.service.service`, so scripts see one
schema everywhere.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from .bench import check_claims, run_sweep, series_table
from .errors import ReproError
from .graphs import GridGraph
from .kernels import available_backends, default_backend_name
from .noise import NoiseModel
from .perm import WORKLOADS, make_workload
from .routing import available_routers, describe_routers, make_router
from .routing.serialize import render_grid_schedule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Locality-aware qubit routing for grid architectures "
        "(reproduction of Banerjee, Liang, Tohid, IPPS 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_route = sub.add_parser("route", help="route a workload on a grid")
    p_route.add_argument("--rows", type=int, default=8)
    p_route.add_argument("--cols", type=int, default=8)
    p_route.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="random"
    )
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument(
        "--router",
        action="append",
        choices=available_routers(),
        help="repeatable; default: local, naive, ats",
    )
    p_route.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="kernel backend for the routing math (default: "
        "REPRO_KERNEL_BACKEND or auto-detection; identical schedules "
        "either way)",
    )
    p_route.add_argument(
        "--show", action="store_true", help="render the best schedule as ASCII"
    )
    p_route.add_argument(
        "--fidelity", action="store_true", help="estimate NISQ success probability"
    )
    p_route.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_trans = sub.add_parser("transpile", help="transpile an OpenQASM 2 file")
    p_trans.add_argument("qasm", help="input .qasm path")
    p_trans.add_argument("--rows", type=int, required=True)
    p_trans.add_argument("--cols", type=int, required=True)
    p_trans.add_argument("--router", choices=available_routers(), default="local")
    p_trans.add_argument(
        "--mapping",
        choices=["identity", "random", "center", "annealed"],
        default="identity",
    )
    p_trans.add_argument("--seed", type=int, default=0)
    p_trans.add_argument("--out", help="write the physical circuit here")
    p_trans.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_batch = sub.add_parser(
        "batch", help="bulk routing via the RoutingService (JSONL in/out)"
    )
    p_batch.add_argument(
        "requests",
        help="path to a file of JSON request lines, or '-' for stdin; each "
        "line needs rows/cols plus either workload(+seed) or an explicit "
        "perm array, and optionally router/options",
    )
    p_batch.add_argument(
        "--out", default="-", help="JSONL results path, '-' for stdout"
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: all CPUs; 1 = inline)",
    )
    p_batch.add_argument("--cache-size", type=int, default=4096)
    p_batch.add_argument(
        "--cache-dir", help="persistent schedule-cache directory"
    )
    p_batch.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="default kernel backend for computed routes (per-request "
        "'backend' options override; never splits the cache)",
    )
    p_batch.add_argument(
        "--warm",
        action="store_true",
        help="pre-route the paper workload families before the batch",
    )
    p_batch.add_argument(
        "--verify",
        action="store_true",
        help="re-verify every computed schedule",
    )
    p_batch.add_argument(
        "--include-schedule",
        action="store_true",
        help="embed the full schedule layers in each result line",
    )
    p_batch.add_argument(
        "--stats",
        action="store_true",
        help="print service stats as JSON to stderr after the batch",
    )
    p_batch.add_argument(
        "--daemon",
        metavar="SOCKET",
        help="send the requests to a running `repro serve` daemon at this "
        "UNIX socket instead of routing locally (--workers/--cache-*/"
        "--warm/--verify are the daemon's business and ignored here)",
    )
    p_batch.add_argument(
        "--http",
        metavar="URL",
        help="send the requests to a running `repro serve --http` server "
        "at this base URL (e.g. http://127.0.0.1:8347) via POST "
        "/v1/route_batch; same ignored-flags caveat as --daemon",
    )
    p_batch.add_argument(
        "--api-key",
        metavar="KEY",
        help="tenant API key sent with every request when the server "
        "enforces tenancy (--daemon: an 'api_key' field on each request "
        "line; --http: an Authorization: Bearer header); ignored when "
        "routing locally",
    )
    p_batch.add_argument(
        "--cluster",
        metavar="ADDR",
        action="append",
        help="repeatable: route locally but share the schedule cache of "
        "these peer daemons (UNIX socket path or http://HOST:PORT) over "
        "a consistent-hash ring; this process joins as a client-only "
        "node (warm peer entries are fetched, computed ones pushed back)",
    )
    p_batch.add_argument(
        "--replication",
        type=int,
        default=2,
        help="cache replicas per key on the cluster ring (with --cluster)",
    )
    p_batch.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help="seconds a failed cluster peer is skipped before being "
        "probed again (with --cluster)",
    )

    p_serve = sub.add_parser(
        "serve", help="long-lived routing daemon (NDJSON over a UNIX socket)"
    )
    transport = p_serve.add_mutually_exclusive_group(required=True)
    transport.add_argument(
        "--socket", metavar="PATH", help="UNIX socket path to listen on"
    )
    transport.add_argument(
        "--pipe",
        action="store_true",
        help="serve the protocol over stdin/stdout instead of a socket",
    )
    transport.add_argument(
        "--http",
        metavar="HOST:PORT",
        help="serve HTTP/JSON on this address instead of NDJSON "
        "(POST /v1/route[_batch], /v1/transpile_batch, GET /healthz, "
        "/stats, /metrics)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: all CPUs; 1 = inline)",
    )
    p_serve.add_argument("--cache-size", type=int, default=4096)
    p_serve.add_argument(
        "--cache-dir", help="persistent schedule-cache directory"
    )
    p_serve.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="default kernel backend for computed routes (per-request "
        "'backend' options override; never splits the cache)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=8,
        help="schedule-cache shard count (1 = unsharded)",
    )
    p_serve.add_argument(
        "--min-cache-seconds",
        type=float,
        default=0.0,
        help="admission threshold: don't cache schedules computed faster "
        "than this many seconds",
    )
    p_serve.add_argument(
        "--max-concurrency",
        type=int,
        default=64,
        help="maximum in-flight requests",
    )
    p_serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="load-shedding bound: refuse work with 429/rate_limited "
        "(and a Retry-After header on HTTP) once this many requests "
        "are queued ahead of execution (default: unbounded)",
    )
    p_serve.add_argument(
        "--tenants",
        metavar="FILE",
        help="JSON tenant configuration (API keys, weights, token-bucket "
        "rates, per-tenant quotas); enables authentication and "
        "weighted-fair queueing across tenants (see docs/OPERATIONS.md)",
    )
    p_serve.add_argument(
        "--max-body",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-request body-size limit for the HTTP transport "
        "(413 + Connection: close above it; requires --http)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request timeout in seconds",
    )
    p_serve.add_argument(
        "--warm",
        action="store_true",
        help="pre-route the paper workload families before serving",
    )
    p_serve.add_argument(
        "--verify",
        action="store_true",
        help="re-verify every computed schedule",
    )
    p_serve.add_argument(
        "--peer",
        metavar="ADDR",
        action="append",
        help="repeatable: peer daemon address (UNIX socket path or "
        "http://HOST:PORT) forming one logical schedule cache over a "
        "consistent-hash ring (see docs/OPERATIONS.md)",
    )
    p_serve.add_argument(
        "--node-id",
        help="this daemon's ring id — must be the address its peers dial "
        "(default: the --socket path or http://HOST:PORT)",
    )
    p_serve.add_argument(
        "--replication",
        type=int,
        default=2,
        help="cache replicas per key on the cluster ring",
    )
    p_serve.add_argument(
        "--topology-file",
        metavar="PATH",
        help="watch this JSON membership file (mtime poll + SIGHUP) "
        "instead of a static --peer list; the file lists every ring "
        "member address including this daemon's own node id",
    )
    p_serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help="seconds a failed cluster peer is skipped before being "
        "probed again (the per-node circuit-breaker cooldown)",
    )
    p_serve.add_argument(
        "--gossip-interval",
        type=float,
        default=0.0,
        help="seconds between SWIM gossip probe rounds (0 disables "
        "gossip, the default); with gossip on, a crashed ring member "
        "is detected and removed automatically — no admin CLI (see "
        "docs/OPERATIONS.md)",
    )
    p_serve.add_argument(
        "--suspicion-timeout",
        type=float,
        default=5.0,
        help="seconds a gossip-suspected member may refute before it "
        "is declared dead and dropped from the ring (with "
        "--gossip-interval)",
    )
    p_serve.add_argument(
        "--sweep-interval",
        type=float,
        default=0.0,
        help="seconds between background anti-entropy sweeps repairing "
        "under-replicated cache keys (0 disables, the default; pushes "
        "are paced by the handoff rate limiter)",
    )
    p_serve.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="minimum level for the service's structured logs (stderr)",
    )
    p_serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as one JSON object per line (with trace_id / "
        "span_id correlation fields) instead of human-readable text",
    )
    p_serve.add_argument(
        "--trace-buffer",
        type=int,
        default=512,
        metavar="N",
        help="finished request traces kept in the in-memory ring "
        "(0 disables tracing entirely)",
    )
    p_serve.add_argument(
        "--trace-slow",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="log a structured warning for any trace slower than this "
        "(0 = never)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="fetch and render request traces from running daemons",
    )
    p_trace.add_argument(
        "contacts",
        nargs="+",
        metavar="ADDR",
        help="daemon addresses (socket path or http://HOST:PORT); give "
        "every ring member to merge cross-daemon traces into one tree",
    )
    p_trace.add_argument(
        "--id", dest="trace_id", metavar="TRACE", help="fetch one trace by id"
    )
    p_trace.add_argument(
        "--slow",
        type=float,
        default=None,
        metavar="SECONDS",
        help="only traces with total duration above this many seconds",
    )
    p_trace.add_argument(
        "--limit",
        type=int,
        default=10,
        help="newest traces to show (per daemon fetch; default 10)",
    )
    p_trace.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_topo = sub.add_parser(
        "topology",
        help="inspect or change a live cluster ring (no restarts)",
    )
    topo_sub = p_topo.add_subparsers(dest="topology_command", required=True)
    t_show = topo_sub.add_parser(
        "show", help="print a daemon's current epoch and member set"
    )
    t_show.add_argument(
        "contact", help="any ring member's address (socket path or http://...)"
    )
    t_show.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    t_join = topo_sub.add_parser(
        "join",
        help="add a running daemon to the ring (triggers key-space handoff)",
    )
    t_join.add_argument(
        "node",
        help="the joining daemon's node id — the address the other "
        "members will dial (its --node-id / listen address)",
    )
    t_join.add_argument(
        "--contact",
        required=True,
        metavar="ADDR",
        help="any current ring member to read the topology from",
    )
    t_leave = topo_sub.add_parser(
        "leave", help="remove a member from the ring (its keys re-home)"
    )
    t_leave.add_argument("node", help="the leaving member's node id")
    t_leave.add_argument(
        "--contact",
        required=True,
        metavar="ADDR",
        help="any current ring member to read the topology from",
    )

    p_auto = sub.add_parser(
        "autoscale",
        help="supervise a ring: scale up/down from live /metrics signals",
    )
    p_auto.add_argument(
        "--contact",
        action="append",
        required=True,
        metavar="ADDR",
        help="repeatable: ring member address to read the topology from "
        "(the first one that answers wins)",
    )
    p_auto.add_argument(
        "--pool",
        action="append",
        metavar="ADDR",
        help="repeatable: spare daemon address the autoscaler may add to "
        "the ring (and the only kind it will ever remove); the daemon "
        "must already be running",
    )
    p_auto.add_argument(
        "--min-nodes", type=int, default=1, help="never shrink below this size"
    )
    p_auto.add_argument(
        "--max-nodes", type=int, default=8, help="never grow above this size"
    )
    p_auto.add_argument(
        "--queue-high",
        type=float,
        default=8.0,
        help="scale up when the summed fair-queue depth exceeds this",
    )
    p_auto.add_argument(
        "--queue-low",
        type=float,
        default=1.0,
        help="scale down when the summed queue depth is at or below this",
    )
    p_auto.add_argument(
        "--p99-high",
        type=float,
        default=None,
        metavar="SECONDS",
        help="scale up when any member's pipeline.execute p99 exceeds this",
    )
    p_auto.add_argument(
        "--hit-rate-low",
        type=float,
        default=None,
        metavar="RATE",
        help="scale up when the mean schedule-cache hit rate drops below "
        "this (0..1)",
    )
    p_auto.add_argument(
        "--cooldown",
        type=float,
        default=30.0,
        help="seconds between membership actions (anti-flapping)",
    )
    p_auto.add_argument(
        "--interval",
        type=float,
        default=5.0,
        help="seconds between evaluation steps",
    )
    p_auto.add_argument(
        "--once",
        action="store_true",
        help="run exactly one observe/decide/act step and exit",
    )
    p_auto.add_argument(
        "--json",
        action="store_true",
        help="with --once: print the observation and decision as JSON",
    )

    p_sweep = sub.add_parser("sweep", help="mini Figure 4/5 sweep")
    p_sweep.add_argument("--sizes", type=int, nargs="+", default=[8, 12, 16])
    p_sweep.add_argument("--seeds", type=int, default=2)
    p_sweep.add_argument(
        "--workloads", nargs="+", choices=sorted(WORKLOADS),
        default=["random", "block_local"],
    )

    sub.add_parser("info", help="list routers and workloads")
    return parser


def _cmd_route(args: argparse.Namespace) -> int:
    grid = GridGraph(args.rows, args.cols)
    perm = make_workload(args.workload, grid, seed=args.seed)
    router_names = args.router or ["local", "naive", "ats"]
    noise = NoiseModel()
    if args.json:
        return _cmd_route_json(args, grid, perm, router_names, noise)
    best = None
    print(
        f"{args.workload} permutation on {args.rows}x{args.cols} grid "
        f"(seed {args.seed})"
    )
    for name in router_names:
        router = make_router(name, backend=args.backend)
        t0 = time.perf_counter()
        sched = router.route(grid, perm)
        dt = time.perf_counter() - t0
        sched.verify(grid, perm)
        line = (
            f"  {name:8s} depth={sched.depth:4d} swaps={sched.size:5d} "
            f"time={dt * 1e3:8.1f}ms"
        )
        if args.fidelity:
            line += f" est.success={noise.schedule_fidelity(sched):.4f}"
        print(line)
        if best is None or sched.depth < best[1].depth:
            best = (name, sched)
    if args.show and best is not None:
        print(f"\nschedule from {best[0]}:")
        print(render_grid_schedule(grid, best[1]))
    return 0


def _cmd_route_json(args, grid, perm, router_names, noise) -> int:
    """The ``route --json`` path: one service-encoded result per router."""
    from .service import RoutingService, route_result_to_dict

    # verify=True so --json keeps the same guarantee as the text path,
    # which re-verifies every schedule before printing it.
    svc = RoutingService(
        cache_size=len(router_names) + 1,
        max_workers=1,
        kernel_backend=args.backend,
        verify=True,
    )
    results = []
    for name in router_names:
        res = svc.submit(grid, perm, router=name)
        extra = {}
        if args.fidelity and res.ok:
            extra["est_success"] = noise.schedule_fidelity(res.schedule)
        results.append(route_result_to_dict(res, **extra))
    doc = {
        "command": "route",
        "rows": args.rows,
        "cols": args.cols,
        "workload": args.workload,
        "seed": args.seed,
        "results": results,
    }
    print(json.dumps(doc, indent=2))
    return 0 if all(r["ok"] for r in results) else 2


def _cmd_transpile(args: argparse.Namespace) -> int:
    from .circuit import dump_file, load_file
    from .transpile import transpile

    circuit = load_file(args.qasm)
    grid = GridGraph(args.rows, args.cols)
    result = transpile(
        circuit, grid, router=args.router, mapping=args.mapping, seed=args.seed
    )
    if args.out:
        dump_file(result.physical, args.out)
    if args.json:
        from .service import transpile_metrics

        doc = {
            "command": "transpile",
            "qasm": args.qasm,
            "rows": args.rows,
            "cols": args.cols,
            "mapping": args.mapping,
            "seed": args.seed,
            "metrics": transpile_metrics(result),
        }
        if args.out:
            doc["out"] = args.out
        print(json.dumps(doc, indent=2))
        return 0
    print(result.summary())
    print(
        "final placement (logical -> physical): "
        + ", ".join(f"{l}->{p}" for l, p in enumerate(result.final_mapping))
    )
    if args.out:
        print(f"physical circuit written to {args.out}")
    return 0


def _parse_batch_line(doc: dict, lineno: int):
    """One JSONL request line -> RouteRequest (raises ReproError with context)."""
    from .service import request_from_doc

    try:
        return request_from_doc(doc)
    except ReproError as exc:
        raise ReproError(f"request line {lineno}: {exc}") from None


def _read_request_docs(path: str) -> list[tuple[int, dict]]:
    """Read a JSONL request file ('-' = stdin) into (lineno, doc) pairs."""
    if path == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ReproError(f"cannot read requests file: {exc}") from exc
    docs = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"request line {lineno}: invalid JSON: {exc}") from exc
        docs.append((lineno, doc))
    return docs


def _open_out(path: str):
    """Open the results stream ('-' = stdout) before routing, to fail fast."""
    if path == "-":
        return sys.stdout
    try:
        return open(path, "w", encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot open output file: {exc}") from exc


def _cmd_batch_daemon(args: argparse.Namespace) -> int:
    """The ``batch --daemon SOCKET`` path: ship the requests to a daemon."""
    from .service import DaemonClient

    docs = []
    for lineno, doc in _read_request_docs(args.requests):
        if not isinstance(doc, dict):
            raise ReproError(f"request line {lineno}: expected a JSON object")
        docs.append(doc)
    out = _open_out(args.out)
    extra: dict = {"include_schedule": bool(args.include_schedule)}
    if args.api_key:
        extra["api_key"] = args.api_key
    with DaemonClient(args.daemon) as client:
        t0 = time.perf_counter()
        responses = client.route_batch([{**doc, **extra} for doc in docs])
        elapsed = time.perf_counter() - t0
        stats = client.stats() if args.stats else None
    try:
        for resp in responses:
            out.write(json.dumps(resp) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    n_err = sum(1 for r in responses if not r.get("ok"))
    rate = len(responses) / elapsed if elapsed > 0 else float("inf")
    print(
        f"batch: {len(responses)} requests in {elapsed:.3f}s "
        f"({rate:.1f} req/s), {n_err} errors, via daemon {args.daemon}",
        file=sys.stderr,
    )
    if stats is not None:
        print(json.dumps(stats, indent=2), file=sys.stderr)
    return 0 if n_err == 0 else 3


def _cmd_batch_http(args: argparse.Namespace) -> int:
    """The ``batch --http URL`` path: one POST /v1/route_batch round trip."""
    from .service import http_request

    docs = []
    for lineno, doc in _read_request_docs(args.requests):
        if not isinstance(doc, dict):
            raise ReproError(f"request line {lineno}: expected a JSON object")
        docs.append(doc)
    out = _open_out(args.out)
    base = args.http.rstrip("/")
    headers = {"Authorization": f"Bearer {args.api_key}"} if args.api_key else None
    t0 = time.perf_counter()
    status, body = http_request(
        base + "/v1/route_batch",
        {"requests": docs, "include_schedule": bool(args.include_schedule)},
        headers=headers,
    )
    elapsed = time.perf_counter() - t0
    if status != 200 or not isinstance(body, dict) or not body.get("ok"):
        detail = body.get("error") if isinstance(body, dict) else body
        raise ReproError(f"HTTP batch failed (status {status}): {detail}")
    responses = body["results"]
    stats = None
    if args.stats:
        stats_status, stats_body = http_request(base + "/stats")
        if stats_status == 200 and isinstance(stats_body, dict):
            stats = stats_body.get("stats")
    try:
        for resp in responses:
            out.write(json.dumps(resp) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    n_err = sum(1 for r in responses if not r.get("ok"))
    rate = len(responses) / elapsed if elapsed > 0 else float("inf")
    print(
        f"batch: {len(responses)} requests in {elapsed:.3f}s "
        f"({rate:.1f} req/s), {n_err} errors, via http {base}",
        file=sys.stderr,
    )
    if stats is not None:
        print(json.dumps(stats, indent=2), file=sys.stderr)
    return 0 if n_err == 0 else 3


def _cmd_batch(args: argparse.Namespace) -> int:
    from .service import RoutingService, route_result_to_dict

    if args.daemon and args.http:
        raise ReproError("--daemon and --http are mutually exclusive")
    if args.cluster and (args.daemon or args.http):
        raise ReproError("--cluster routes locally; it excludes --daemon/--http")
    if args.daemon:
        return _cmd_batch_daemon(args)
    if args.http:
        return _cmd_batch_http(args)

    if args.cache_size <= 0:
        raise ReproError(f"--cache-size must be positive, got {args.cache_size}")
    if args.workers is not None and args.workers < 0:
        raise ReproError(f"--workers must be >= 0, got {args.workers}")
    if args.replication <= 0:
        raise ReproError(f"--replication must be positive, got {args.replication}")
    if args.breaker_cooldown <= 0:
        raise ReproError(
            f"--breaker-cooldown must be positive, got {args.breaker_cooldown}"
        )

    requests = [
        _parse_batch_line(doc, lineno)
        for lineno, doc in _read_request_docs(args.requests)
    ]

    # Open the output before routing so a bad --out path fails fast
    # instead of discarding a whole computed batch.
    out = _open_out(args.out)

    with RoutingService(
        cache_size=args.cache_size,
        cache_dir=args.cache_dir,
        max_workers=args.workers,
        kernel_backend=args.backend,
        verify=args.verify,
        cluster_peers=tuple(args.cluster or ()),
        cluster_replication=args.replication,
        cluster_retry_interval=args.breaker_cooldown,
    ) as svc:
        t0 = time.perf_counter()
        if args.warm:
            warmed = svc.warm_cache()
            print(f"warmed cache with {warmed} schedules", file=sys.stderr)
        results = svc.submit_batch(requests)
        elapsed = time.perf_counter() - t0

        try:
            for res in results:
                out.write(
                    json.dumps(
                        route_result_to_dict(
                            res, include_schedule=args.include_schedule
                        )
                    )
                    + "\n"
                )
        finally:
            if out is not sys.stdout:
                out.close()

        n_err = sum(1 for r in results if not r.ok)
        rate = len(results) / elapsed if elapsed > 0 else float("inf")
        print(
            f"batch: {len(results)} requests in {elapsed:.3f}s "
            f"({rate:.1f} req/s), {n_err} errors",
            file=sys.stderr,
        )
        if args.stats:
            print(json.dumps(svc.stats(), indent=2), file=sys.stderr)
    return 0 if n_err == 0 else 3


def _parse_host_port(value: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` CLI argument (host defaults to 127.0.0.1)."""
    host, sep, port_text = value.rpartition(":")
    if not sep:
        host, port_text = "", value
    try:
        port = int(port_text)
        if not (0 <= port <= 65535):
            raise ValueError(port_text)
    except ValueError:
        raise ReproError(
            f"--http expects HOST:PORT with a numeric port, got {value!r}"
        ) from None
    return host or "127.0.0.1", port


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` daemon: warm pool + cache shared across clients."""
    import asyncio

    from .service import (
        AsyncRoutingService,
        ClusterTopology,
        CostThresholdAdmission,
        RoutingDaemon,
        TopologyFileWatcher,
        configure_logging,
        get_logger,
    )

    if args.cache_size <= 0:
        raise ReproError(f"--cache-size must be positive, got {args.cache_size}")
    if args.trace_buffer < 0:
        raise ReproError(f"--trace-buffer must be >= 0, got {args.trace_buffer}")
    if args.trace_slow < 0:
        raise ReproError(f"--trace-slow must be >= 0, got {args.trace_slow}")
    if args.workers is not None and args.workers < 0:
        raise ReproError(f"--workers must be >= 0, got {args.workers}")
    if args.shards <= 0:
        raise ReproError(f"--shards must be positive, got {args.shards}")
    if args.max_concurrency <= 0:
        raise ReproError(
            f"--max-concurrency must be positive, got {args.max_concurrency}"
        )
    if args.replication <= 0:
        raise ReproError(f"--replication must be positive, got {args.replication}")
    if args.breaker_cooldown <= 0:
        raise ReproError(
            f"--breaker-cooldown must be positive, got {args.breaker_cooldown}"
        )
    if args.topology_file and args.peer:
        raise ReproError(
            "--topology-file and --peer are mutually exclusive (the file "
            "is the authoritative member list)"
        )
    if args.gossip_interval < 0:
        raise ReproError(
            f"--gossip-interval must be >= 0, got {args.gossip_interval}"
        )
    if args.suspicion_timeout <= 0:
        raise ReproError(
            f"--suspicion-timeout must be positive, got {args.suspicion_timeout}"
        )
    if args.sweep_interval < 0:
        raise ReproError(
            f"--sweep-interval must be >= 0, got {args.sweep_interval}"
        )
    if args.max_queue_depth is not None and args.max_queue_depth <= 0:
        raise ReproError(
            f"--max-queue-depth must be positive, got {args.max_queue_depth}"
        )
    if args.max_body is not None:
        if not args.http:
            raise ReproError(
                "--max-body applies to the HTTP transport; use it with --http"
            )
        if args.max_body <= 0:
            raise ReproError(f"--max-body must be positive, got {args.max_body}")

    configure_logging(args.log_level, json_output=args.log_json)
    log = get_logger("repro.service.cli")

    http_addr = _parse_host_port(args.http) if args.http else None
    admission = (
        CostThresholdAdmission(min_seconds=args.min_cache_seconds)
        if args.min_cache_seconds > 0
        else None
    )
    node_id = args.node_id
    if node_id is None:
        # A shard sits on the ring under the address its peers dial;
        # default to this daemon's own listen address. Any socket/http
        # daemon is therefore joinable at runtime (`repro topology
        # join`) even when started with no peers. A --pipe daemon has
        # no dialable address and stays out of cluster mode unless
        # given an explicit --node-id.
        if args.socket:
            node_id = args.socket
        elif http_addr is not None:
            node_id = f"http://{http_addr[0]}:{http_addr[1]}"

    topology = None
    watcher = None
    if args.topology_file:
        topology = ClusterTopology([node_id] if node_id else [])
        watcher = TopologyFileWatcher(topology, args.topology_file)
        watcher.reload()  # a malformed file fails the start loudly

    tenants = None
    if args.tenants:
        from .service import load_tenants_file

        tenants = load_tenants_file(args.tenants)  # malformed fails loudly
        log.info(
            "tenancy enforced",
            extra={
                "tenants": len(tenants.tenants()),
                "config": args.tenants,
            },
        )

    svc = AsyncRoutingService(
        max_concurrency=args.max_concurrency,
        tenants=tenants,
        max_queue_depth=args.max_queue_depth,
        default_timeout=args.timeout,
        cache_size=args.cache_size,
        cache_dir=args.cache_dir,
        cache_shards=args.shards,
        cache_admission=admission,
        max_workers=args.workers,
        kernel_backend=args.backend,
        verify=args.verify,
        cluster_peers=tuple(args.peer or ()),
        cluster_node_id=node_id,
        cluster_replication=args.replication,
        cluster_topology=topology,
        cluster_retry_interval=args.breaker_cooldown,
        trace_buffer=args.trace_buffer,
        trace_slow=args.trace_slow,
    )
    if args.warm:
        warmed = svc.service.warm_cache()
        log.info("warmed cache", extra={"schedules": warmed})

    gossip_runner = None
    gossip_node = None
    gossip_transport = None
    if args.gossip_interval > 0:
        from .service import (
            GossipConfig,
            GossipNode,
            GossipRunner,
            PeerGossipTransport,
        )

        cluster_topology = svc.service.cluster_topology
        if node_id is None or cluster_topology is None:
            raise ReproError(
                "--gossip-interval needs a dialable ring identity: start "
                "with --socket/--http (or an explicit --node-id)"
            )
        gossip_transport = PeerGossipTransport()
        gossip_node = GossipNode(
            node_id,
            cluster_topology,
            gossip_transport,
            GossipConfig(
                interval=args.gossip_interval,
                suspicion_timeout=args.suspicion_timeout,
            ),
            telemetry=svc.service.telemetry,
        )
        svc.service.gossip = gossip_node
        gossip_runner = GossipRunner(gossip_node)
        gossip_runner.start()
        log.info(
            "gossip failure detector running",
            extra={
                "interval": args.gossip_interval,
                "suspicion_timeout": args.suspicion_timeout,
            },
        )
    if args.sweep_interval > 0:
        from .service import ClusterScheduleCache

        if not isinstance(svc.service.cache, ClusterScheduleCache):
            raise ReproError(
                "--sweep-interval needs cluster mode (start with --peer, "
                "--topology-file, or a dialable node id)"
            )
        svc.service.cache.start_sweeper(args.sweep_interval)
        log.info(
            "anti-entropy sweeper running",
            extra={"interval": args.sweep_interval},
        )

    on_reload = watcher.reload_now if watcher is not None else None
    if watcher is not None:
        watcher.start()
    try:
        if http_addr is not None:
            from .service import HttpRoutingServer

            host, port = http_addr
            http_kwargs: dict = {}
            if args.max_body is not None:
                http_kwargs["max_body_bytes"] = args.max_body
            server = HttpRoutingServer(
                svc, host=host, port=port, on_reload=on_reload, **http_kwargs
            )
            log.info(
                "repro daemon listening",
                extra={"address": f"http://{host}:{port}", "transport": "http"},
            )
            asyncio.run(server.serve())
            log.info("repro daemon stopped", extra={"transport": "http"})
            return 0
        daemon = RoutingDaemon(svc, on_reload=on_reload)
        if args.pipe:
            asyncio.run(daemon.serve_pipe())
        else:
            log.info(
                "repro daemon listening",
                extra={"address": args.socket, "transport": "ndjson"},
            )
            asyncio.run(daemon.serve_unix(args.socket))
            log.info("repro daemon stopped", extra={"transport": "ndjson"})
        return 0
    finally:
        if gossip_runner is not None:
            gossip_runner.stop()
        if gossip_node is not None:
            gossip_node.close()
        if gossip_transport is not None:
            gossip_transport.close()
        if watcher is not None:
            watcher.stop()


def _merge_traces(trace_docs: list[dict]) -> dict[str, dict]:
    """Group per-node trace documents by trace id, concatenating spans.

    A request that hopped daemons produces one trace document *per
    node*, all sharing a trace id; the remote node's root span is
    parented on the caller's span id, so the concatenated span set
    forms one well-nested tree.
    """
    merged: dict[str, dict] = {}
    for doc in trace_docs:
        trace_id = str(doc.get("trace_id", ""))
        if not trace_id:
            continue
        entry = merged.setdefault(
            trace_id,
            {"trace_id": trace_id, "nodes": [], "spans": [], "start_unix": None},
        )
        node = str(doc.get("node_id", ""))
        if node and node not in entry["nodes"]:
            entry["nodes"].append(node)
        for span_doc in doc.get("spans", []):
            if any(
                s.get("span_id") == span_doc.get("span_id")
                for s in entry["spans"]
            ):
                continue  # same node polled twice
            entry["spans"].append({**span_doc, "node_id": node})
        start = doc.get("start_unix")
        if start is not None and (
            entry["start_unix"] is None or start < entry["start_unix"]
        ):
            entry["start_unix"] = start
    return merged


def _render_span_tree(spans: list[dict]) -> list[str]:
    """A merged span set as indented ``name duration [attrs]`` lines.

    Spans whose parent is absent from the set (the trace root, or a
    hop whose caller's node was not polled) render at the top level;
    siblings sort by wall-clock start.
    """
    by_id = {s.get("span_id"): s for s in spans if s.get("span_id")}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s.get("parent_id")
        children.setdefault(parent if parent in by_id else None, []).append(s)
    for kids in children.values():
        kids.sort(key=lambda s: (s.get("start_unix") or 0.0, s.get("name") or ""))

    lines: list[str] = []

    def walk(span_doc: dict, depth: int) -> None:
        ms = float(span_doc.get("duration_seconds") or 0.0) * 1e3
        parts = [f"{'  ' * depth}{span_doc.get('name', '?')}", f"{ms:.3f}ms"]
        node = span_doc.get("node_id")
        if node:
            parts.append(f"@{node}")
        attrs = span_doc.get("attrs") or {}
        parts.extend(f"{k}={v}" for k, v in sorted(attrs.items()))
        if span_doc.get("status", "ok") != "ok":
            parts.append(f"status={span_doc['status']}")
        lines.append("  ".join(parts))
        for child in children.get(span_doc.get("span_id"), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return lines


def _cmd_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: fetch, merge and render request traces."""
    from .service import RemoteShardClient

    if args.limit <= 0:
        raise ReproError(f"--limit must be positive, got {args.limit}")
    fetched: list[dict] = []
    errors: list[str] = []
    for contact in args.contacts:
        client = RemoteShardClient(contact)
        try:
            fetched.extend(
                client.trace_get(
                    trace_id=args.trace_id,
                    limit=None if args.trace_id else args.limit,
                    min_seconds=args.slow,
                )
            )
        except ReproError as exc:
            errors.append(f"{contact}: {exc}")
        finally:
            client.close()
    for err in errors:
        print(f"note: {err}", file=sys.stderr)
    if len(errors) == len(args.contacts):
        raise ReproError("no daemon answered trace_get")
    merged = _merge_traces(fetched)
    if args.json:
        print(json.dumps(list(merged.values()), indent=2))
        return 0
    if not merged:
        print("no traces recorded (is tracing enabled and traffic flowing?)")
        return 0
    # Newest first, like the daemon's own ring ordering.
    ordered = sorted(
        merged.values(), key=lambda t: t.get("start_unix") or 0.0, reverse=True
    )
    for entry in ordered:
        total = max(
            (
                float(s.get("duration_seconds") or 0.0)
                for s in entry["spans"]
                if s.get("parent_id") is None
            ),
            default=0.0,
        )
        nodes = ", ".join(entry["nodes"]) or "?"
        print(f"trace {entry['trace_id']}  {total * 1e3:.3f}ms  nodes: {nodes}")
        for line in _render_span_tree(entry["spans"]):
            print(f"  {line}")
        print()
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    """The ``topology`` admin subcommand: show / join / leave a live ring."""
    from .service import RemoteShardClient

    def _topology_from(addr: str) -> dict:
        client = RemoteShardClient(addr)
        try:
            return client.topology_get()
        finally:
            client.close()

    if args.topology_command == "show":
        topo = _topology_from(args.contact)
        if args.json:
            print(json.dumps(topo, indent=2))
        else:
            print(f"epoch {topo.get('epoch')}")
            for member in topo.get("members", []):
                print(f"  {member}")
        return 0

    topo = _topology_from(args.contact)
    epoch = int(topo.get("epoch", 0))
    members = list(topo.get("members", []))
    if args.topology_command == "join":
        if args.node in members:
            raise ReproError(f"{args.node} is already a ring member")
        new_members = sorted(set(members) | {args.node})
        # The newcomer first (its epoch differs, so no CAS — just the
        # monotonic guard), then every existing member under a strict
        # expected-epoch CAS: two racing admins cannot split the ring.
        push_order = [(args.node, False)] + [(m, True) for m in members]
    else:  # leave
        if args.node not in members:
            raise ReproError(f"{args.node} is not a ring member")
        new_members = sorted(set(members) - {args.node})
        if not new_members:
            raise ReproError(
                f"refusing to remove the last ring member {args.node}; "
                "shut the daemon down instead"
            )
        # Remaining members first (CAS-guarded); the leaver last and
        # best-effort — it may already be gone, which is fine.
        push_order = [(m, True) for m in new_members] + [(args.node, False)]
    new_epoch = epoch + 1
    doc = {"members": new_members, "epoch": new_epoch}
    failures: list[str] = []
    for addr, cas in push_order:
        update = {**doc, "expected_epoch": epoch} if cas else doc
        client = RemoteShardClient(addr)
        try:
            client.topology_update(update)
        except ReproError as exc:
            if args.topology_command == "join" and addr == args.node:
                # The newcomer is pushed first; if it cannot be
                # reached, abort before any live member learns the new
                # ring — otherwise they would route a share of the key
                # space to a dead address.
                raise ReproError(
                    f"cannot reach joining node {addr} ({exc}); aborting "
                    "the join before updating the ring"
                ) from exc
            if args.topology_command == "leave" and addr == args.node:
                print(f"note: leaver {addr} unreachable ({exc})", file=sys.stderr)
            else:
                failures.append(f"{addr}: {exc}")
        finally:
            client.close()
    if failures:
        raise ReproError(
            f"topology update reached only part of the ring: {'; '.join(failures)}"
        )
    print(
        f"ring now at epoch {new_epoch} with {len(new_members)} member(s): "
        + ", ".join(new_members)
    )
    return 0


def _cmd_autoscale(args: argparse.Namespace) -> int:
    """The ``autoscale`` supervisor: metrics-driven ring resizing."""
    from .service import AutoscalePolicy, Autoscaler, configure_logging

    configure_logging("info")
    policy = AutoscalePolicy(
        min_nodes=args.min_nodes,
        max_nodes=args.max_nodes,
        queue_high=args.queue_high,
        queue_low=args.queue_low,
        p99_high=args.p99_high,
        hit_rate_low=args.hit_rate_low,
        cooldown=args.cooldown,
    )
    scaler = Autoscaler(args.contact, pool=args.pool or (), policy=policy)
    if args.once:
        obs, decision = scaler.step()
        if args.json:
            print(
                json.dumps(
                    {"observation": obs.as_dict(), "decision": decision.as_dict()},
                    indent=2,
                )
            )
        else:
            print(
                f"epoch {obs.epoch}, {len(obs.members)} member(s), "
                f"queued {obs.queued:.0f} -> {decision.action}"
                + (f" {decision.node}" if decision.node else "")
                + f" ({decision.reason})"
            )
        return 0
    scaler.run(args.interval)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    routers = {name: make_router(name) for name in ("local", "naive", "ats")}
    sweep = run_sweep(
        args.sizes, args.workloads, routers, seeds=range(args.seeds)
    )
    print(series_table(sweep, "depth", title="depth (mean)"))
    print(series_table(sweep, "seconds", title="router time (mean)"))
    for check in check_claims(sweep):
        print(check)
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    print("routers:  " + ", ".join(available_routers()))
    for info in describe_routers():
        families = ", ".join(info.families) or "-"
        kernels = "yes" if info.kernel_backends else "no"
        print(f"  {info.name:10s} graphs: {families:28s} kernels: {kernels}")
        if info.summary:
            print(f"             {info.summary}")
    print(
        "backends:  "
        + ", ".join(available_backends())
        + f" (default: {default_backend_name()})"
    )
    print("workloads: " + ", ".join(sorted(WORKLOADS)))
    return 0


_COMMANDS = {
    "route": _cmd_route,
    "transpile": _cmd_transpile,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "topology": _cmd_topology,
    "autoscale": _cmd_autoscale,
    "sweep": _cmd_sweep,
    "info": _cmd_info,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro ... | head`); exit
        # quietly instead of tracebacking.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
