"""Command-line interface: ``python -m repro <command>`` (or ``repro ...``).

Commands
--------
``route``
    Route a generated workload (or the identity) on a grid and print
    depth/size/time per router, optionally the ASCII schedule. With
    ``--json``, machine-readable metrics instead.
``transpile``
    Read an OpenQASM 2 file, map+route it onto a grid device, report
    overheads (``--json`` for machine-readable) and optionally write the
    physical circuit back to QASM.
``batch``
    Bulk routing through :class:`~repro.service.RoutingService`: a file
    of JSON request lines in, a JSONL stream of results out, with
    dedup, schedule caching and a process-pool worker fleet.
``sweep``
    A small Figure-4/5 style sweep printed as tables with claim checks.
``info``
    List available routers and workload generators.

The CLI is a thin veneer over the library — every code path it exercises
is the public API, which keeps it honest as living documentation. All
machine-readable output (``--json``, ``batch``) goes through the
encoding helpers of :mod:`repro.service.service`, so scripts see one
schema everywhere.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from .bench import check_claims, run_sweep, series_table
from .errors import ReproError
from .graphs import GridGraph
from .noise import NoiseModel
from .perm import WORKLOADS, make_workload
from .routing import available_routers, make_router
from .routing.serialize import render_grid_schedule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Locality-aware qubit routing for grid architectures "
        "(reproduction of Banerjee, Liang, Tohid, IPPS 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_route = sub.add_parser("route", help="route a workload on a grid")
    p_route.add_argument("--rows", type=int, default=8)
    p_route.add_argument("--cols", type=int, default=8)
    p_route.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="random"
    )
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument(
        "--router",
        action="append",
        choices=available_routers(),
        help="repeatable; default: local, naive, ats",
    )
    p_route.add_argument(
        "--show", action="store_true", help="render the best schedule as ASCII"
    )
    p_route.add_argument(
        "--fidelity", action="store_true", help="estimate NISQ success probability"
    )
    p_route.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_trans = sub.add_parser("transpile", help="transpile an OpenQASM 2 file")
    p_trans.add_argument("qasm", help="input .qasm path")
    p_trans.add_argument("--rows", type=int, required=True)
    p_trans.add_argument("--cols", type=int, required=True)
    p_trans.add_argument("--router", choices=available_routers(), default="local")
    p_trans.add_argument(
        "--mapping",
        choices=["identity", "random", "center", "annealed"],
        default="identity",
    )
    p_trans.add_argument("--seed", type=int, default=0)
    p_trans.add_argument("--out", help="write the physical circuit here")
    p_trans.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_batch = sub.add_parser(
        "batch", help="bulk routing via the RoutingService (JSONL in/out)"
    )
    p_batch.add_argument(
        "requests",
        help="path to a file of JSON request lines, or '-' for stdin; each "
        "line needs rows/cols plus either workload(+seed) or an explicit "
        "perm array, and optionally router/options",
    )
    p_batch.add_argument(
        "--out", default="-", help="JSONL results path, '-' for stdout"
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: all CPUs; 1 = inline)",
    )
    p_batch.add_argument("--cache-size", type=int, default=4096)
    p_batch.add_argument(
        "--cache-dir", help="persistent schedule-cache directory"
    )
    p_batch.add_argument(
        "--warm",
        action="store_true",
        help="pre-route the paper workload families before the batch",
    )
    p_batch.add_argument(
        "--verify",
        action="store_true",
        help="re-verify every computed schedule",
    )
    p_batch.add_argument(
        "--include-schedule",
        action="store_true",
        help="embed the full schedule layers in each result line",
    )
    p_batch.add_argument(
        "--stats",
        action="store_true",
        help="print service stats as JSON to stderr after the batch",
    )

    p_sweep = sub.add_parser("sweep", help="mini Figure 4/5 sweep")
    p_sweep.add_argument("--sizes", type=int, nargs="+", default=[8, 12, 16])
    p_sweep.add_argument("--seeds", type=int, default=2)
    p_sweep.add_argument(
        "--workloads", nargs="+", choices=sorted(WORKLOADS),
        default=["random", "block_local"],
    )

    sub.add_parser("info", help="list routers and workloads")
    return parser


def _cmd_route(args: argparse.Namespace) -> int:
    grid = GridGraph(args.rows, args.cols)
    perm = make_workload(args.workload, grid, seed=args.seed)
    router_names = args.router or ["local", "naive", "ats"]
    noise = NoiseModel()
    if args.json:
        return _cmd_route_json(args, grid, perm, router_names, noise)
    best = None
    print(
        f"{args.workload} permutation on {args.rows}x{args.cols} grid "
        f"(seed {args.seed})"
    )
    for name in router_names:
        router = make_router(name)
        t0 = time.perf_counter()
        sched = router.route(grid, perm)
        dt = time.perf_counter() - t0
        sched.verify(grid, perm)
        line = (
            f"  {name:8s} depth={sched.depth:4d} swaps={sched.size:5d} "
            f"time={dt * 1e3:8.1f}ms"
        )
        if args.fidelity:
            line += f" est.success={noise.schedule_fidelity(sched):.4f}"
        print(line)
        if best is None or sched.depth < best[1].depth:
            best = (name, sched)
    if args.show and best is not None:
        print(f"\nschedule from {best[0]}:")
        print(render_grid_schedule(grid, best[1]))
    return 0


def _cmd_route_json(args, grid, perm, router_names, noise) -> int:
    """The ``route --json`` path: one service-encoded result per router."""
    from .service import RoutingService, route_result_to_dict

    # verify=True so --json keeps the same guarantee as the text path,
    # which re-verifies every schedule before printing it.
    svc = RoutingService(
        cache_size=len(router_names) + 1, max_workers=1, verify=True
    )
    results = []
    for name in router_names:
        res = svc.submit(grid, perm, router=name)
        extra = {}
        if args.fidelity and res.ok:
            extra["est_success"] = noise.schedule_fidelity(res.schedule)
        results.append(route_result_to_dict(res, **extra))
    doc = {
        "command": "route",
        "rows": args.rows,
        "cols": args.cols,
        "workload": args.workload,
        "seed": args.seed,
        "results": results,
    }
    print(json.dumps(doc, indent=2))
    return 0 if all(r["ok"] for r in results) else 2


def _cmd_transpile(args: argparse.Namespace) -> int:
    from .circuit import dump_file, load_file
    from .transpile import transpile

    circuit = load_file(args.qasm)
    grid = GridGraph(args.rows, args.cols)
    result = transpile(
        circuit, grid, router=args.router, mapping=args.mapping, seed=args.seed
    )
    if args.out:
        dump_file(result.physical, args.out)
    if args.json:
        from .service import transpile_metrics

        doc = {
            "command": "transpile",
            "qasm": args.qasm,
            "rows": args.rows,
            "cols": args.cols,
            "mapping": args.mapping,
            "seed": args.seed,
            "metrics": transpile_metrics(result),
        }
        if args.out:
            doc["out"] = args.out
        print(json.dumps(doc, indent=2))
        return 0
    print(result.summary())
    print(
        "final placement (logical -> physical): "
        + ", ".join(f"{l}->{p}" for l, p in enumerate(result.final_mapping))
    )
    if args.out:
        print(f"physical circuit written to {args.out}")
    return 0


def _parse_batch_line(doc: dict, lineno: int):
    """One JSONL request line -> RouteRequest (raises ReproError with context)."""
    from .service import RouteRequest

    if not isinstance(doc, dict):
        raise ReproError(f"request line {lineno}: expected a JSON object")
    try:
        rows, cols = int(doc["rows"]), int(doc["cols"])
    except (KeyError, TypeError, ValueError):
        raise ReproError(
            f"request line {lineno}: 'rows' and 'cols' integers required"
        ) from None
    grid = GridGraph(rows, cols)
    if "perm" in doc:
        from .perm.permutation import Permutation

        perm = Permutation(doc["perm"])
    elif "workload" in doc:
        perm = make_workload(doc["workload"], grid, seed=doc.get("seed", 0))
    else:
        raise ReproError(
            f"request line {lineno}: needs 'perm' or 'workload'"
        )
    return RouteRequest(
        graph=grid,
        perm=perm,
        router=doc.get("router", "local"),
        options=doc.get("options", {}),
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    from .service import RoutingService, route_result_to_dict

    if args.cache_size <= 0:
        raise ReproError(f"--cache-size must be positive, got {args.cache_size}")
    if args.workers is not None and args.workers < 0:
        raise ReproError(f"--workers must be >= 0, got {args.workers}")

    if args.requests == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.requests, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ReproError(f"cannot read requests file: {exc}") from exc

    requests = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"request line {lineno}: invalid JSON: {exc}") from exc
        requests.append(_parse_batch_line(doc, lineno))

    # Open the output before routing so a bad --out path fails fast
    # instead of discarding a whole computed batch.
    if args.out == "-":
        out = sys.stdout
    else:
        try:
            out = open(args.out, "w", encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot open output file: {exc}") from exc

    with RoutingService(
        cache_size=args.cache_size,
        cache_dir=args.cache_dir,
        max_workers=args.workers,
        verify=args.verify,
    ) as svc:
        t0 = time.perf_counter()
        if args.warm:
            warmed = svc.warm_cache()
            print(f"warmed cache with {warmed} schedules", file=sys.stderr)
        results = svc.submit_batch(requests)
        elapsed = time.perf_counter() - t0

        try:
            for res in results:
                out.write(
                    json.dumps(
                        route_result_to_dict(
                            res, include_schedule=args.include_schedule
                        )
                    )
                    + "\n"
                )
        finally:
            if out is not sys.stdout:
                out.close()

        n_err = sum(1 for r in results if not r.ok)
        rate = len(results) / elapsed if elapsed > 0 else float("inf")
        print(
            f"batch: {len(results)} requests in {elapsed:.3f}s "
            f"({rate:.1f} req/s), {n_err} errors",
            file=sys.stderr,
        )
        if args.stats:
            print(json.dumps(svc.stats(), indent=2), file=sys.stderr)
    return 0 if n_err == 0 else 3


def _cmd_sweep(args: argparse.Namespace) -> int:
    routers = {name: make_router(name) for name in ("local", "naive", "ats")}
    sweep = run_sweep(
        args.sizes, args.workloads, routers, seeds=range(args.seeds)
    )
    print(series_table(sweep, "depth", title="depth (mean)"))
    print(series_table(sweep, "seconds", title="router time (mean)"))
    for check in check_claims(sweep):
        print(check)
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    print("routers:  " + ", ".join(available_routers()))
    print("workloads: " + ", ".join(sorted(WORKLOADS)))
    return 0


_COMMANDS = {
    "route": _cmd_route,
    "transpile": _cmd_transpile,
    "batch": _cmd_batch,
    "sweep": _cmd_sweep,
    "info": _cmd_info,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro ... | head`); exit
        # quietly instead of tracebacking.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
