"""repro — Locality-aware qubit routing for grid architectures.

A full reproduction of Banerjee, Liang and Tohid, *Locality-aware Qubit
Routing for the Grid Architecture* (IPPS 2022, arXiv:2203.11333): the
locality-aware grid router (Algorithms 1–2), the Alon–Chung–Graham
baseline, the approximate token swapping comparator, the Cartesian-product
extension, and a self-contained quantum-circuit/transpiler/simulator stack
to exercise them end to end.

Quickstart
----------
>>> from repro import GridGraph, random_permutation, route
>>> grid = GridGraph(6, 6)
>>> perm = random_permutation(grid, seed=7)
>>> schedule = route(grid, perm, method="local")
>>> schedule.verify(grid, perm)   # raises if anything is wrong
>>> schedule.depth <= 3 * 6       # 3 phases of <= n rounds each
True
"""

# Defined before the subpackage imports so service modules can report
# the version (``/healthz``, ``ping``) without a circular import.
__version__ = "1.0.0"

from .errors import (
    CircuitError,
    GraphError,
    MatchingError,
    PermutationError,
    QasmError,
    ReproError,
    RoutingError,
    ScheduleError,
    SimulationError,
    TranspileError,
)
from .graphs import (
    CartesianProduct,
    Graph,
    GridGraph,
    binary_tree,
    complete_graph,
    cycle_graph,
    cylinder_graph,
    ladder_graph,
    path_graph,
    random_tree,
    star_graph,
    torus_graph,
)
from .perm import (
    WORKLOADS,
    PartialPermutation,
    Permutation,
    block_local_permutation,
    complete_partial,
    depth_lower_bound,
    locality_radius,
    make_workload,
    max_displacement,
    mirror_permutation,
    overlapping_block_permutation,
    random_permutation,
    skinny_cycle_permutation,
    swap_count_lower_bound,
    total_displacement,
)
from .routing import (
    BestOfRouter,
    CartesianRouter,
    CompleteRouter,
    CycleRouter,
    LocalGridRouter,
    NaiveGridRouter,
    Router,
    Schedule,
    TreeRouter,
    available_routers,
    describe_routers,
    make_router,
    route,
)
from .kernels import (
    KernelBackend,
    available_backends,
    default_backend_name,
    get_backend,
)
from .token_swap import (
    TokenSwapRouter,
    approximate_token_swapping,
    partial_token_swapping,
)
from .noise import NoiseModel
from .circuit import (
    Gate,
    QuantumCircuit,
    circuit_layers,
    cuccaro_adder,
    ghz,
    lattice_trotter,
    permutation_circuit,
    qft,
    random_circuit,
)
from .sim import circuit_unitary, simulate
from .transpile import TranspileResult, transpile, verify_transpilation
from .bench import check_claims, run_sweep, series_table
from .service import (
    BatchExecutor,
    RouteRequest,
    RouteResult,
    RoutingService,
    ScheduleCache,
    TranspileRequest,
    request_key,
)

__all__ = [
    # errors
    "ReproError",
    "GraphError",
    "PermutationError",
    "MatchingError",
    "RoutingError",
    "ScheduleError",
    "CircuitError",
    "QasmError",
    "TranspileError",
    "SimulationError",
    # graphs
    "Graph",
    "GridGraph",
    "CartesianProduct",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "binary_tree",
    "random_tree",
    "ladder_graph",
    "torus_graph",
    "cylinder_graph",
    # permutations
    "Permutation",
    "PartialPermutation",
    "complete_partial",
    "random_permutation",
    "block_local_permutation",
    "overlapping_block_permutation",
    "skinny_cycle_permutation",
    "mirror_permutation",
    "make_workload",
    "WORKLOADS",
    "total_displacement",
    "max_displacement",
    "depth_lower_bound",
    "swap_count_lower_bound",
    "locality_radius",
    # routing
    "Schedule",
    "Router",
    "route",
    "make_router",
    "available_routers",
    "describe_routers",
    "LocalGridRouter",
    "NaiveGridRouter",
    "CartesianRouter",
    "CycleRouter",
    "CompleteRouter",
    "TreeRouter",
    "BestOfRouter",
    # kernel backends
    "KernelBackend",
    "get_backend",
    "available_backends",
    "default_backend_name",
    "TokenSwapRouter",
    "approximate_token_swapping",
    "partial_token_swapping",
    "NoiseModel",
    # circuits / simulation / transpilation
    "Gate",
    "QuantumCircuit",
    "circuit_layers",
    "qft",
    "ghz",
    "lattice_trotter",
    "cuccaro_adder",
    "random_circuit",
    "permutation_circuit",
    "simulate",
    "circuit_unitary",
    "transpile",
    "TranspileResult",
    "verify_transpilation",
    # bench harness
    "run_sweep",
    "series_table",
    "check_claims",
    # service layer
    "RoutingService",
    "RouteRequest",
    "RouteResult",
    "TranspileRequest",
    "BatchExecutor",
    "ScheduleCache",
    "request_key",
    "__version__",
]
