"""Standard graph families used as coupling graphs and product factors.

These constructors cover the factor graphs the paper's Cartesian-product
extension mentions (paths first and foremost, then "path-like" graphs) and
the auxiliary families used in tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .base import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "binary_tree",
    "random_tree",
    "ladder_graph",
]


def path_graph(n: int) -> Graph:
    """The path ``P_n`` on vertices ``0 - 1 - ... - n-1``."""
    if n <= 0:
        raise GraphError(f"path needs at least one vertex, got {n}")
    return Graph(n, [(i, i + 1) for i in range(n - 1)], name=f"path{n}")


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``; requires ``n >= 3``."""
    if n < 3:
        raise GraphError(f"cycle needs at least 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges, name=f"cycle{n}")


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    if n <= 0:
        raise GraphError(f"complete graph needs at least one vertex, got {n}")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph(n, edges, name=f"complete{n}")


def star_graph(n: int) -> Graph:
    """The star ``K_{1,n-1}`` with center ``0`` and ``n - 1`` leaves."""
    if n <= 0:
        raise GraphError(f"star needs at least one vertex, got {n}")
    return Graph(n, [(0, i) for i in range(1, n)], name=f"star{n}")


def binary_tree(n: int) -> Graph:
    """The complete binary tree on ``n`` vertices in heap order.

    Vertex ``v`` has children ``2v + 1`` and ``2v + 2`` when they exist.
    """
    if n <= 0:
        raise GraphError(f"tree needs at least one vertex, got {n}")
    edges = []
    for v in range(n):
        for c in (2 * v + 1, 2 * v + 2):
            if c < n:
                edges.append((v, c))
    return Graph(n, edges, name=f"bintree{n}")


def random_tree(n: int, seed: int | None = None) -> Graph:
    """A uniformly random labelled tree on ``n`` vertices (Prüfer decoding).

    Parameters
    ----------
    n:
        Number of vertices (``n >= 1``).
    seed:
        Seed for reproducibility.
    """
    if n <= 0:
        raise GraphError(f"tree needs at least one vertex, got {n}")
    if n == 1:
        return Graph(1, [], name="tree1")
    if n == 2:
        return Graph(2, [(0, 1)], name="tree2")
    rng = np.random.default_rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in prufer:
        degree[x] += 1
    edges: list[tuple[int, int]] = []
    # Standard O(n log n) decoding with a leaf min-heap kept as sorted scan:
    # n here is small (factor graphs), so a simple pointer scan suffices.
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return Graph(n, edges, name=f"randtree{n}")


def ladder_graph(n: int) -> Graph:
    """The ladder ``P_2 x P_n`` (a 2-by-n grid), kept for convenience."""
    from .grid import GridGraph

    return GridGraph(2, n)
