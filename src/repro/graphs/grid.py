"""The ``m x n`` grid coupling graph.

The paper's target architecture. Vertices are grid points ``(i, j)`` with
row index ``i in [0, m)`` and column index ``j in [0, n)`` (the paper uses
1-based indices; we use 0-based throughout the code). A vertex is flattened
to the integer ``i * n + j``, so vertices of one row are contiguous — the
layout that makes the row-phase of grid routing operate on contiguous numpy
slices (cache-friendly, per the optimization guide).

The grid is the Cartesian product ``P_m x P_n`` of two paths; distances are
the Manhattan metric, which we build in closed form instead of running BFS.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .base import Graph

__all__ = ["GridGraph"]


class GridGraph(Graph):
    """An ``m x n`` grid graph with row-major vertex numbering.

    Parameters
    ----------
    n_rows:
        Number of rows ``m`` (size of each column path).
    n_cols:
        Number of columns ``n`` (size of each row path).

    Examples
    --------
    >>> g = GridGraph(2, 3)
    >>> g.index(1, 2)
    5
    >>> g.coord(5)
    (1, 2)
    >>> g.distance(g.index(0, 0), g.index(1, 2))
    3
    """

    __slots__ = ("_m", "_ncols")

    def __init__(self, n_rows: int, n_cols: int) -> None:
        if n_rows <= 0 or n_cols <= 0:
            raise GraphError(
                f"grid dimensions must be positive, got {n_rows} x {n_cols}"
            )
        m, n = int(n_rows), int(n_cols)
        edges: list[tuple[int, int]] = []
        for i in range(m):
            base = i * n
            for j in range(n):
                v = base + j
                if j + 1 < n:  # horizontal edge within row i
                    edges.append((v, v + 1))
                if i + 1 < m:  # vertical edge within column j
                    edges.append((v, v + n))
        super().__init__(m * n, edges, name=f"grid{m}x{n}")
        self._m = m
        self._ncols = n

    # ------------------------------------------------------------------
    # coordinates
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows ``m``."""
        return self._m

    @property
    def n_cols(self) -> int:
        """Number of columns ``n``."""
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self._m, self._ncols)

    def index(self, row: int, col: int) -> int:
        """Flatten grid coordinates to a vertex id (row-major)."""
        if not (0 <= row < self._m and 0 <= col < self._ncols):
            raise GraphError(
                f"coordinate ({row}, {col}) out of range for {self._m}x{self._ncols} grid"
            )
        return row * self._ncols + col

    def coord(self, v: int) -> tuple[int, int]:
        """Unflatten a vertex id to ``(row, col)``."""
        self._check_vertex(v)
        return divmod(v, self._ncols)

    def rows_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized row indices of an array of vertex ids."""
        return np.asarray(vertices) // self._ncols

    def cols_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized column indices of an array of vertex ids."""
        return np.asarray(vertices) % self._ncols

    # ------------------------------------------------------------------
    # transposition
    # ------------------------------------------------------------------
    def transpose(self) -> "GridGraph":
        """The transposed grid ``n x m`` (rows and columns exchanged)."""
        return GridGraph(self._ncols, self._m)

    def transpose_vertex(self, v: int) -> int:
        """Image of vertex ``v`` under the transposition automorphism.

        Maps the vertex at ``(i, j)`` of this grid to the vertex at
        ``(j, i)`` of :meth:`transpose`.
        """
        i, j = self.coord(v)
        return j * self._m + i

    def transpose_vertices(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`transpose_vertex`."""
        v = np.asarray(vertices)
        i, j = np.divmod(v, self._ncols)
        return j * self._m + i

    # ------------------------------------------------------------------
    # distances (closed form)
    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """Manhattan distance matrix, built vectorized (no BFS)."""
        if self._dist is None:
            v = np.arange(self.n_vertices)
            rows, cols = np.divmod(v, self._ncols)
            out = np.abs(rows[:, None] - rows[None, :]) + np.abs(
                cols[:, None] - cols[None, :]
            )
            out = out.astype(np.int64)
            out.setflags(write=False)
            self._dist = out
        return self._dist

    def distance(self, u: int, v: int) -> int:
        """Manhattan distance between two vertices, O(1), no matrix needed."""
        self._check_vertex(u)
        self._check_vertex(v)
        iu, ju = divmod(u, self._ncols)
        iv, jv = divmod(v, self._ncols)
        return abs(iu - iv) + abs(ju - jv)

    def column_vertices(self, col: int) -> np.ndarray:
        """Vertex ids of column ``col``, top row first."""
        if not (0 <= col < self._ncols):
            raise GraphError(f"column {col} out of range")
        return np.arange(self._m) * self._ncols + col

    def row_vertices(self, row: int) -> np.ndarray:
        """Vertex ids of row ``row``, left column first."""
        if not (0 <= row < self._m):
            raise GraphError(f"row {row} out of range")
        return np.arange(self._ncols) + row * self._ncols
