"""Coupling-graph substrate: grids, standard families, Cartesian products."""

from .base import Edge, Graph, canonical_edge
from .cartesian import CartesianProduct, cylinder_graph, torus_graph
from .families import (
    binary_tree,
    complete_graph,
    cycle_graph,
    ladder_graph,
    path_graph,
    random_tree,
    star_graph,
)
from .grid import GridGraph

__all__ = [
    "Edge",
    "Graph",
    "canonical_edge",
    "GridGraph",
    "CartesianProduct",
    "torus_graph",
    "cylinder_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "binary_tree",
    "random_tree",
    "ladder_graph",
]
