"""Immutable undirected simple graphs used as coupling graphs.

The routing literature (and this reproduction) models a quantum device's
two-qubit connectivity as an undirected simple graph, the *coupling graph*.
Vertices are physical qubits, identified with the integers ``0 .. n-1``;
an edge ``(u, v)`` means a two-qubit gate (in particular a SWAP) may act on
the pair.

:class:`Graph` is deliberately minimal and immutable: routers never mutate
the architecture, and immutability lets us cache the all-pairs distance
matrix, which is the single most frequently consulted piece of data in both
the token-swapping baseline and the grid routers.

Performance notes
-----------------
The all-pairs distance matrix is computed once via repeated BFS
(``O(V * E)``) and cached; subclasses with closed-form metrics (e.g.
:class:`repro.graphs.grid.GridGraph`) override :meth:`Graph.distance_matrix`
with a vectorized numpy construction, following the "compute less, then
vectorize" guidance of the optimization guides.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from ..errors import GraphError

__all__ = ["Graph", "Edge", "canonical_edge"]

#: An undirected edge, stored with endpoints sorted ascending.
Edge = tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of an undirected edge.

    Raises
    ------
    GraphError
        If ``u == v`` (self-loops are never valid coupling edges).
    """
    if u == v:
        raise GraphError(f"self-loop edge ({u}, {v}) is not allowed")
    return (u, v) if u < v else (v, u)


class Graph:
    """An immutable, undirected, simple graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n_vertices:
        Number of vertices. Must be positive.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n_vertices`` and
        ``u != v``. Duplicates (in either orientation) are collapsed.
    name:
        Human-readable label used in ``repr`` and error messages.

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2)], name="P3")
    >>> g.has_edge(1, 0)
    True
    >>> g.distance(0, 2)
    2
    """

    __slots__ = ("_n", "_adj", "_edges", "_edge_set", "_dist", "name")

    def __init__(
        self,
        n_vertices: int,
        edges: Iterable[tuple[int, int]],
        name: str = "graph",
    ) -> None:
        if n_vertices <= 0:
            raise GraphError(f"graph must have at least one vertex, got {n_vertices}")
        self._n = int(n_vertices)
        self.name = name

        edge_set: set[Edge] = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise GraphError(
                    f"edge ({u}, {v}) out of range for {self._n} vertices"
                )
            edge_set.add(canonical_edge(u, v))

        adj: list[list[int]] = [[] for _ in range(self._n)]
        for u, v in edge_set:
            adj[u].append(v)
            adj[v].append(u)
        self._adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(nbrs)) for nbrs in adj
        )
        self._edges: tuple[Edge, ...] = tuple(sorted(edge_set))
        self._edge_set: frozenset[Edge] = frozenset(edge_set)
        self._dist: np.ndarray | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of (undirected) edges."""
        return len(self._edges)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All edges in canonical ``(min, max)`` form, sorted."""
        return self._edges

    def vertices(self) -> range:
        """The vertex set as a ``range`` object."""
        return range(self._n)

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        self._check_vertex(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge (orientation-insensitive)."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._edge_set

    def max_degree(self) -> int:
        """Maximum vertex degree (0 for edgeless graphs)."""
        return max((len(a) for a in self._adj), default=0)

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._n):
            raise GraphError(f"vertex {v} out of range for {self._n} vertices")

    # ------------------------------------------------------------------
    # connectivity and distances
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Distances from ``source`` to every vertex (``-1`` if unreachable)."""
        self._check_vertex(source)
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        queue: deque[int] = deque([source])
        adj = self._adj
        while queue:
            u = queue.popleft()
            du = dist[u]
            for w in adj[u]:
                if dist[w] < 0:
                    dist[w] = du + 1
                    queue.append(w)
        return dist

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path matrix, cached after first computation.

        Entry ``[u, v]`` is the hop distance, or ``-1`` when ``v`` is
        unreachable from ``u``. The returned array is the cache itself;
        callers must treat it as read-only.
        """
        if self._dist is None:
            out = np.empty((self._n, self._n), dtype=np.int64)
            for v in range(self._n):
                out[v] = self.bfs_distances(v)
            out.setflags(write=False)
            self._dist = out
        return self._dist

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance between ``u`` and ``v`` (-1 if disconnected)."""
        return int(self.distance_matrix()[u, v])

    def is_connected(self) -> bool:
        """Whether the graph is connected (single vertex counts as connected)."""
        return bool((self.bfs_distances(0) >= 0).all())

    def diameter(self) -> int:
        """Largest finite pairwise distance.

        Raises
        ------
        GraphError
            If the graph is disconnected.
        """
        d = self.distance_matrix()
        if (d < 0).any():
            raise GraphError("diameter undefined for disconnected graph")
        return int(d.max())

    # ------------------------------------------------------------------
    # matchings
    # ------------------------------------------------------------------
    def is_matching(self, pairs: Sequence[tuple[int, int]]) -> bool:
        """Whether ``pairs`` is a matching of this graph.

        A matching is a set of existing edges that are pairwise
        vertex-disjoint. The empty sequence is a (trivial) matching.
        """
        seen: set[int] = set()
        for u, v in pairs:
            if not self.has_edge(u, v):
                return False
            if u in seen or v in seen:
                return False
            seen.add(u)
            seen.add(v)
        return True

    def check_matching(self, pairs: Sequence[tuple[int, int]]) -> None:
        """Like :meth:`is_matching` but raises :class:`GraphError` with detail."""
        seen: set[int] = set()
        for u, v in pairs:
            if not self.has_edge(u, v):
                raise GraphError(f"({u}, {v}) is not an edge of {self.name}")
            if u in seen or v in seen:
                raise GraphError(
                    f"vertex reuse in matching at edge ({u}, {v})"
                )
            seen.add(u)
            seen.add(v)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"n_vertices={self._n}, n_edges={self.n_edges})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same vertex count and edge set."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edge_set == other._edge_set

    def __hash__(self) -> int:
        return hash((self._n, self._edge_set))
