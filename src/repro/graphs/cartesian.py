"""Cartesian products of graphs (the paper's "grid-like" architectures).

The Cartesian product ``G1 □ G2`` has vertex set ``V(G1) x V(G2)`` and an
edge between ``(a, b)`` and ``(a', b')`` iff either ``a == a'`` and
``(b, b')`` is an edge of ``G2``, or ``b == b'`` and ``(a, a')`` is an edge
of ``G1``. The ``m x n`` grid is ``P_m □ P_n``.

Following the grid convention, we call the copies of ``G1`` the *columns*
(one copy per vertex of ``G2``) and the copies of ``G2`` the *rows* (one
copy per vertex of ``G1``). Vertex ``(a, b)`` flattens to ``a * |G2| + b``,
which coincides with :class:`repro.graphs.grid.GridGraph` numbering when
both factors are paths.

Distances in a Cartesian product factor exactly:
``d((a,b), (a',b')) = d_G1(a, a') + d_G2(b, b')``, which we exploit for a
vectorized distance matrix.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .base import Graph

__all__ = ["CartesianProduct", "torus_graph", "cylinder_graph"]


class CartesianProduct(Graph):
    """The Cartesian product ``G1 □ G2`` with factor bookkeeping.

    Parameters
    ----------
    g1:
        The *column* factor; copies of ``g1`` are the columns.
    g2:
        The *row* factor; copies of ``g2`` are the rows.

    Examples
    --------
    >>> from repro.graphs import path_graph
    >>> from repro.graphs.grid import GridGraph
    >>> CartesianProduct(path_graph(3), path_graph(4)) == GridGraph(3, 4)
    True
    """

    __slots__ = ("_g1", "_g2")

    def __init__(self, g1: Graph, g2: Graph) -> None:
        if g1.n_vertices == 0 or g2.n_vertices == 0:
            raise GraphError("product factors must be non-empty")
        m, n = g1.n_vertices, g2.n_vertices
        edges: list[tuple[int, int]] = []
        # G2 edges inside each row (copy of G2 at fixed a).
        for a in range(m):
            base = a * n
            for (b, b2) in g2.edges:
                edges.append((base + b, base + b2))
        # G1 edges inside each column (copy of G1 at fixed b).
        for (a, a2) in g1.edges:
            for b in range(n):
                edges.append((a * n + b, a2 * n + b))
        super().__init__(m * n, edges, name=f"({g1.name} x {g2.name})")
        self._g1 = g1
        self._g2 = g2

    @property
    def g1(self) -> Graph:
        """The column factor (``a`` coordinate)."""
        return self._g1

    @property
    def g2(self) -> Graph:
        """The row factor (``b`` coordinate)."""
        return self._g2

    @property
    def shape(self) -> tuple[int, int]:
        """``(|G1|, |G2|)`` — rows x cols in the grid analogy."""
        return (self._g1.n_vertices, self._g2.n_vertices)

    def index(self, a: int, b: int) -> int:
        """Flatten factor coordinates ``(a, b)`` to a product vertex id."""
        n = self._g2.n_vertices
        if not (0 <= a < self._g1.n_vertices and 0 <= b < n):
            raise GraphError(f"coordinate ({a}, {b}) out of range")
        return a * n + b

    def coord(self, v: int) -> tuple[int, int]:
        """Unflatten a product vertex id to factor coordinates ``(a, b)``."""
        self._check_vertex(v)
        return divmod(v, self._g2.n_vertices)

    def swap_factors(self) -> "CartesianProduct":
        """The product with factors exchanged (``G2 □ G1``)."""
        return CartesianProduct(self._g2, self._g1)

    def swap_factors_vertex(self, v: int) -> int:
        """Image of ``v`` under the factor-exchange isomorphism."""
        a, b = self.coord(v)
        return b * self._g1.n_vertices + a

    def distance_matrix(self) -> np.ndarray:
        """Product metric ``d1 ⊕ d2`` built from the factor matrices."""
        if self._dist is None:
            d1 = self._g1.distance_matrix()
            d2 = self._g2.distance_matrix()
            if (d1 < 0).any() or (d2 < 0).any():
                # Fall back to BFS semantics for disconnected factors.
                return super().distance_matrix()
            # d[(a,b),(a2,b2)] = d1[a,a2] + d2[b,b2]; build via broadcasting
            # then reshape to (m*n, m*n).
            out = (
                d1[:, None, :, None] + d2[None, :, None, :]
            ).reshape(self.n_vertices, self.n_vertices)
            out = np.ascontiguousarray(out)
            out.setflags(write=False)
            self._dist = out
        return self._dist


def torus_graph(m: int, n: int) -> CartesianProduct:
    """The ``m x n`` torus ``C_m □ C_n`` (requires ``m, n >= 3``)."""
    from .families import cycle_graph

    return CartesianProduct(cycle_graph(m), cycle_graph(n))


def cylinder_graph(m: int, n: int) -> CartesianProduct:
    """The cylinder ``P_m □ C_n`` (paths stacked around a cycle)."""
    from .families import cycle_graph, path_graph

    return CartesianProduct(path_graph(m), cycle_graph(n))
