"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate finer failure classes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "PermutationError",
    "MatchingError",
    "KernelError",
    "RoutingError",
    "ScheduleError",
    "CircuitError",
    "QasmError",
    "TranspileError",
    "SimulationError",
    "ServiceClosedError",
    "DaemonDisconnectedError",
    "ClusterShardError",
    "StaleEpochError",
    "AuthenticationError",
    "RateLimitedError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Invalid graph construction or an operation unsupported by a graph."""


class PermutationError(ReproError):
    """Malformed permutation data (not a bijection, wrong domain, ...)."""


class MatchingError(ReproError):
    """A matching-layer failure, e.g. no perfect matching where one is required."""


class KernelError(ReproError):
    """A kernel backend could not be resolved or failed an invariant.

    Raised by :func:`repro.kernels.get_backend` for unknown backend names
    and for explicitly requested backends whose dependency (numpy) is not
    importable. Ambient resolution — the ``REPRO_KERNEL_BACKEND``
    environment variable or the automatic default — never raises for a
    missing numpy; it falls back to the pure-Python reference backend.
    """


class RoutingError(ReproError):
    """A router could not produce a valid schedule for its input."""


class ScheduleError(ReproError):
    """A swap schedule violates an invariant (overlapping swaps, non-edges, ...)."""


class CircuitError(ReproError):
    """Invalid quantum-circuit construction or manipulation."""


class QasmError(CircuitError):
    """OpenQASM text that the subset parser cannot understand."""


class TranspileError(ReproError):
    """The transpiler could not produce a hardware-conformant circuit."""


class SimulationError(ReproError):
    """Simulator failure (dimension mismatch, non-unitary gate, ...)."""


class ServiceClosedError(ReproError):
    """Work was submitted to a service-layer object after ``close()``.

    Raised instead of surfacing a raw ``BrokenProcessPool`` (or silently
    restarting the pool) so misuse of the lifecycle is loud and
    unambiguous. ``close()`` itself stays idempotent — only *submission*
    after close raises.
    """


class DaemonDisconnectedError(ReproError):
    """The daemon connection died mid-request (server gone or half-open).

    Raised by :class:`~repro.service.daemon.DaemonClient` when a send
    or receive hits a dead socket. The client drops the connection when
    raising this, so the next call reconnects instead of writing into
    the same dead socket forever.
    """


class ClusterShardError(ReproError):
    """A remote cache shard failed or answered incoherently.

    Raised by :class:`~repro.service.cluster.RemoteShardClient` on
    transport failures and refused/malformed responses. The
    :class:`~repro.service.cluster.ClusterScheduleCache` catches it,
    trips the node's circuit breaker and degrades to local compute —
    it never reaches the routing hot path.
    """


class AuthenticationError(ReproError):
    """A request could not be attributed to any configured tenant.

    Raised by :meth:`~repro.service.tenancy.TenantRegistry.authenticate`
    when tenancy is enforced and the request carries no API key (and no
    anonymous tenant is configured) or an unknown one. The request
    pipeline maps it to the stable ``unauthorized`` error code (HTTP
    401); it never takes a connection down.
    """


class RateLimitedError(ReproError):
    """A request was refused by admission control; retry later.

    Raised by the request pipeline's admit stage when a tenant's token
    bucket is empty, its queue quota is full, or the global queue depth
    bound would be crossed (load shedding). Maps to the stable
    ``rate_limited`` error code (HTTP 429 with a ``Retry-After``
    header). :attr:`retry_after` is the suggested wait in seconds;
    :attr:`reason` distinguishes a token-bucket refusal
    (``"throttled"``) from a queue-bound one (``"shed"``) for the
    per-tenant outcome counters.
    """

    def __init__(
        self,
        message: str,
        retry_after: float = 1.0,
        reason: str = "throttled",
    ) -> None:
        super().__init__(message)
        #: Suggested client back-off in seconds before retrying.
        self.retry_after = float(retry_after)
        #: Which admission check refused: ``"throttled"`` or ``"shed"``.
        self.reason = str(reason)


class StaleEpochError(ReproError):
    """A topology update lost the compare-and-set race on the epoch.

    Raised by :class:`~repro.service.cluster.ClusterTopology` when an
    update carries an ``expected_epoch`` that no longer matches the
    current epoch, or tries to install an epoch that is not strictly
    newer than the current one. Concurrent administrators therefore
    cannot split-brain a ring: exactly one of two racing updates wins,
    the other sees this error and must re-read the topology first.
    """
