"""Partial token swapping: route only the tokens that matter.

The transpiler's routing phase usually constrains only the qubits in the
upcoming gates (the paper's bijection ``f : S -> R``); the remaining
tokens are *don't-cares*. Completing to a full permutation (see
:meth:`repro.routing.base.Router.route_partial`) is one option; the
other — used by the Childs, Schoute, Unsal transpiler the paper cites —
is to adapt token swapping itself: don't-care tokens have no destination
and never resist displacement, so swap chains terminate on them for
free.

Differences to the full algorithm (:mod:`repro.token_swap.ats`):

* a token with no destination contributes no out-arcs to the
  improvement digraph and is never counted as misplaced;
* the "unhappy swap" at the end of a maximal chain now rests on either
  a placed token or a don't-care token — displacing a don't-care costs
  nothing, which is where the swap savings come from.

The result is typically *far fewer swaps* than completing + fully
routing when only a few tokens are constrained, at the price of an
uncontrolled final placement of the don't-cares (returned to the caller
so placements can be tracked).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import RoutingError
from ..graphs.base import Graph
from ..perm.partial import PartialPermutation

__all__ = ["partial_token_swapping"]


def partial_token_swapping(
    graph: Graph,
    partial: PartialPermutation | Mapping[int, int],
    seed: int | None = None,
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """Serial swaps moving every constrained token to its destination.

    Parameters
    ----------
    graph:
        Connected coupling graph.
    partial:
        ``{source vertex: destination vertex}`` for the constrained
        tokens (a partial bijection), or a
        :class:`~repro.perm.partial.PartialPermutation`.
    seed:
        Tie-breaking seed (``None`` = deterministic neighbour order).

    Returns
    -------
    (swaps, final_positions):
        The swap list, and an array mapping every start vertex to the
        vertex its token ends on (a full permutation: don't-care tokens
        included, wherever they were pushed).

    Raises
    ------
    RoutingError
        On disconnected graphs, out-of-range vertices, or failure to
        converge within the swap budget.
    """
    n = graph.n_vertices
    if isinstance(partial, PartialPermutation):
        if partial.n != n:
            raise RoutingError(
                f"partial permutation ambient size {partial.n} != graph size {n}"
            )
        mapping = partial.mapping()
    else:
        mapping = dict(partial)
        probe = PartialPermutation(n, mapping)  # validates bijectivity/range
        del probe

    dist_mat = graph.distance_matrix()
    if (dist_mat < 0).any():
        raise RoutingError("partial token swapping requires a connected graph")
    dist = dist_mat.tolist()
    nbrs = [list(graph.neighbors(v)) for v in range(n)]

    # dest[token] = target vertex or -1 for don't-care; tokens are named
    # by their start vertex.
    dest = [-1] * n
    for s, d in mapping.items():
        dest[s] = d

    tok_at = list(range(n))
    active = {s for s, d in mapping.items() if s != d}
    swaps: list[tuple[int, int]] = []
    total_disp = sum(dist[s][d] for s, d in mapping.items())
    swap_cap = 4 * total_disp + 4 * n + 16

    rng = np.random.default_rng(seed) if seed is not None else None
    if rng is not None:
        for ns in nbrs:
            rng.shuffle(ns)

    def out_arcs(u: int) -> list[int]:
        t = tok_at[u]
        d = dest[t]
        if d < 0 or d == u:
            return []
        du = dist[u][d]
        drow = dist[d]
        return [v for v in nbrs[u] if drow[v] < du]

    color = [0] * n
    stamp = [0] * n
    version = 0

    def find_cycle() -> list[int] | None:
        nonlocal version
        version += 1

        def col(x: int) -> int:
            return color[x] if stamp[x] == version else 0

        for s in sorted(active):
            if col(s) != 0:
                continue
            stack = [(s, out_arcs(s), 0)]
            stamp[s], color[s] = version, 1
            while stack:
                u, arcs, idx = stack[-1]
                if idx >= len(arcs):
                    color[u] = 2
                    stack.pop()
                    continue
                stack[-1] = (u, arcs, idx + 1)
                v = arcs[idx]
                cv = col(v)
                if cv == 1:
                    verts = [frame[0] for frame in stack]
                    return verts[verts.index(v):]
                if cv == 0:
                    stamp[v], color[v] = version, 1
                    stack.append((v, out_arcs(v), 0))
        return None

    def do_swap(u: int, v: int) -> None:
        tok_at[u], tok_at[v] = tok_at[v], tok_at[u]
        swaps.append((u, v))
        for w in (u, v):
            t = tok_at[w]
            if dest[t] >= 0 and dest[t] != w:
                active.add(w)
            else:
                active.discard(w)

    while active:
        cycle = find_cycle()
        if cycle is not None:
            for i in range(len(cycle) - 2, -1, -1):
                do_swap(cycle[i], cycle[i + 1])
        else:
            u = min(active)
            path = [u]
            while True:
                arcs = out_arcs(path[-1])
                if not arcs:
                    break
                path.append(arcs[0])
            if len(path) < 2:  # pragma: no cover - connected graphs only
                raise RoutingError("partial token swapping stuck")
            do_swap(path[-2], path[-1])
        if len(swaps) > swap_cap:  # pragma: no cover - defensive
            raise RoutingError(
                f"partial token swapping exceeded its budget ({swap_cap})"
            )

    final = np.empty(n, dtype=np.int64)
    for pos, t in enumerate(tok_at):
        final[t] = pos
    return swaps, final
