"""Token swapping baseline: serial 4-approximation + parallelization."""

from .ats import approximate_token_swapping
from .parallel import TokenSwapRouter, parallelize_swaps
from .partial_ats import partial_token_swapping

__all__ = [
    "approximate_token_swapping",
    "partial_token_swapping",
    "parallelize_swaps",
    "TokenSwapRouter",
]
