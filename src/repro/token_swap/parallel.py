"""Serial swap sequences -> parallel swap schedules.

The paper observes that "the swaps discovered by the token swapping
algorithm produce a routing schedule with depth comparable to our parallel
routing algorithm": a serial swap list parallelizes by ASAP re-timing —
each swap is scheduled in the earliest layer after the previous use of
either endpoint, which preserves the per-qubit swap order (hence the
realized permutation) and groups independent swaps into common layers.

This module packages that conversion and the ATS-backed
:class:`TokenSwapRouter`, the baseline measured in Figures 4 and 5.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import RoutingError
from ..graphs.base import Graph
from ..kernels import KernelBackend, get_backend
from ..perm.permutation import Permutation
from ..routing.base import Router, register_router
from ..routing.schedule import Schedule
from .ats import approximate_token_swapping

__all__ = ["parallelize_swaps", "TokenSwapRouter"]


def parallelize_swaps(
    n_vertices: int,
    swaps: Sequence[tuple[int, int]],
    backend: KernelBackend | str | None = None,
) -> Schedule:
    """ASAP-parallelize a serial swap list into a matching schedule.

    ``backend`` selects the kernel backend doing the re-timing (instance,
    name, or ``None`` for the ambient default).
    """
    kb = get_backend(backend)
    layers = kb.compact_serial_swaps(n_vertices, swaps)
    return Schedule._from_canonical(n_vertices, layers, {"backend": kb.name})


@register_router("ats", families=("any_connected",), kernel_backends=True)
class TokenSwapRouter(Router):
    """Routing-via-matchings adapter around approximate token swapping.

    Parameters
    ----------
    trials:
        Randomized ATS restarts (best kept). ``1`` = deterministic.
    seed:
        Seed for restarts beyond the first.
    compact:
        Parallelize the serial swaps via ASAP re-timing (on by default;
        turning it off yields the one-swap-per-layer serial schedule,
        useful when measuring the serial size objective only).
    validate:
        Verify the produced schedule against the request (for tests).
    """

    name = "ats"

    def __init__(
        self,
        trials: int = 1,
        seed: int | None = 0,
        compact: bool = True,
        validate: bool = False,
    ) -> None:
        if trials < 1:
            raise RoutingError(f"trials must be >= 1, got {trials}")
        self.trials = trials
        self.seed = seed
        self.compact = compact
        self.validate = validate

    def route(self, graph: Graph, perm: Permutation) -> Schedule:
        self._check_sizes(graph, perm)
        kb = self.backend
        swaps = approximate_token_swapping(
            graph, perm, trials=self.trials, seed=self.seed, backend=kb
        )
        if self.compact:
            sched = parallelize_swaps(graph.n_vertices, swaps, backend=kb)
        else:
            sched = Schedule.from_serial_swaps(graph.n_vertices, swaps)
            sched = sched.with_metadata(backend=kb.name)
        if self.validate:
            sched.verify(graph, perm)
        return sched
