"""Approximate token swapping (ATS) — the paper's baseline (Miltzow et al.).

The serial token swapping problem asks for the fewest swaps realizing a
permutation on a graph. Miltzow, Narins, Okamoto, Rote, Thomas and Uno gave
a 4-approximation that the paper benchmarks against (it is "used as a
primitive in many state-of-the-art quantum transpilers", e.g. the Childs,
Schoute, Unsal transpiler and Qiskit's ``ApproximateTokenSwapper``).

Algorithm (cycle/chain formulation, as implemented in those transpilers):
maintain the *improvement digraph* with an arc ``u -> v`` whenever ``v`` is
a neighbour of ``u`` lying on a shortest path from ``u`` to the destination
of the token currently on ``u``.

* If the digraph contains a directed **cycle** ``c_0 -> c_1 -> ... -> c_{k-1}
  -> c_0``, apply the ``k - 1`` swaps ``(c_{k-2}, c_{k-1}), ..., (c_0, c_1)``;
  every token on the cycle advances one step along its own shortest path
  ("happy swap chain": total displacement drops by ``k`` using ``k - 1``
  swaps).
* Otherwise take any vertex with a misplaced token, follow arcs to a
  maximal path and apply its **last** arc as a single "unhappy" swap (the
  resting endpoint has no out-arc, i.e. its token is already home; total
  displacement is unchanged but the configuration provably progresses).

Termination is guaranteed for permutation inputs; a defensive swap-count
cap (4x the total displacement plus slack, the 4-approximation budget)
turns any regression into a loud :class:`~repro.errors.RoutingError`
instead of an infinite loop.

Implementation notes
--------------------
* Distances come from the coupling graph's cached all-pairs matrix,
  converted once to nested lists: in this pointer-chasing inner loop,
  plain-list indexing beats numpy scalar indexing by a large constant
  (profiling-first guidance — this *is* the hot loop of the baseline).
* ``trials > 1`` reruns the routine with randomized tie-breaking among
  shortest-path neighbours and keeps the fewest-swap run, mirroring
  Qiskit's ``trials`` parameter.
"""

from __future__ import annotations

import numpy as np

from ..errors import RoutingError
from ..graphs.base import Graph
from ..kernels import KernelBackend, get_backend
from ..perm.permutation import Permutation

__all__ = ["approximate_token_swapping"]

_WHITE, _GRAY, _BLACK = 0, 1, 2


def _serial_route(
    nbrs: list[list[int]],
    dist: list[list[int]],
    dest: list[int],
    rng: np.random.Generator | None,
    swap_cap: int,
) -> list[tuple[int, int]]:
    """One ATS run; see module docstring. Mutates nothing external."""
    n = len(nbrs)
    tok_at = list(range(n))  # tok_at[vertex] = token currently there
    active: set[int] = {u for u in range(n) if dest[u] != u}
    swaps: list[tuple[int, int]] = []

    if rng is not None:
        nbrs = [list(ns) for ns in nbrs]
        for ns in nbrs:
            rng.shuffle(ns)

    def out_arcs(u: int) -> list[int]:
        t = tok_at[u]
        d = dest[t]
        if d == u:
            return []
        du = dist[u][d]
        drow = dist[d]
        return [v for v in nbrs[u] if drow[v] < du]

    def do_swap(u: int, v: int) -> None:
        tok_at[u], tok_at[v] = tok_at[v], tok_at[u]
        swaps.append((u, v))
        for w in (u, v):
            if dest[tok_at[w]] != w:
                active.add(w)
            else:
                active.discard(w)

    color = [0] * n
    stamp = [0] * n  # visitation version, avoids clearing `color`
    version = 0

    def find_cycle() -> list[int] | None:
        """Any directed cycle of the improvement digraph, or None."""
        nonlocal version
        version += 1

        def col(x: int) -> int:
            return color[x] if stamp[x] == version else _WHITE

        for s in sorted(active):
            if col(s) != _WHITE:
                continue
            stack: list[tuple[int, list[int], int]] = [(s, out_arcs(s), 0)]
            stamp[s], color[s] = version, _GRAY
            while stack:
                u, arcs, idx = stack[-1]
                if idx >= len(arcs):
                    color[u] = _BLACK
                    stack.pop()
                    continue
                stack[-1] = (u, arcs, idx + 1)
                v = arcs[idx]
                cv = col(v)
                if cv == _GRAY:
                    # cycle: v -> ... -> u -> v along the current stack
                    verts = [frame[0] for frame in stack]
                    return verts[verts.index(v):]
                if cv == _WHITE:
                    stamp[v], color[v] = version, _GRAY
                    stack.append((v, out_arcs(v), 0))
        return None

    while active:
        cycle = find_cycle()
        if cycle is not None:
            for i in range(len(cycle) - 2, -1, -1):
                do_swap(cycle[i], cycle[i + 1])
        else:
            # Digraph is acyclic: walk a maximal path from a misplaced
            # vertex, perform the unhappy swap on its last arc.
            u = min(active)
            path = [u]
            while True:
                arcs = out_arcs(path[-1])
                if not arcs:
                    break
                path.append(arcs[0])
            if len(path) < 2:  # pragma: no cover - impossible on connected graphs
                raise RoutingError(
                    "token swapping stuck: misplaced token with no "
                    "improving neighbour (is the graph connected?)"
                )
            do_swap(path[-2], path[-1])
        if len(swaps) > swap_cap:  # pragma: no cover - defensive
            raise RoutingError(
                f"token swapping exceeded its swap budget ({swap_cap}); "
                "algorithm failed to converge"
            )
    return swaps


def approximate_token_swapping(
    graph: Graph,
    perm: Permutation,
    trials: int = 1,
    seed: int | None = None,
    backend: KernelBackend | str | None = None,
) -> list[tuple[int, int]]:
    """Serial swap sequence realizing ``perm`` on ``graph`` (4-approx ATS).

    Parameters
    ----------
    graph:
        Connected coupling graph.
    perm:
        Permutation to realize (token starting at ``v`` must reach
        ``perm(v)``).
    trials:
        Number of randomized runs; the best (fewest swaps) is returned.
        ``trials=1`` is fully deterministic.
    seed:
        Seed for the randomized tie-breaking when ``trials > 1``.
    backend:
        Kernel backend (instance, name, or ``None`` for the ambient
        default) computing the displacement budget.

    Returns
    -------
    List of swaps ``(u, v)``; applying them in order moves every token
    from ``v`` to ``perm(v)``.

    Raises
    ------
    RoutingError
        If sizes mismatch, the graph is disconnected, or the algorithm
        fails to converge within its approximation budget.
    """
    n = graph.n_vertices
    if perm.size != n:
        raise RoutingError(f"permutation size {perm.size} != graph size {n}")
    if trials < 1:
        raise RoutingError(f"trials must be >= 1, got {trials}")
    dist_mat = graph.distance_matrix()
    if (dist_mat < 0).any():
        raise RoutingError("token swapping requires a connected graph")

    dest = perm.targets.tolist()
    if all(dest[v] == v for v in range(n)):
        return []
    dist = dist_mat.tolist()
    nbrs = [list(graph.neighbors(v)) for v in range(n)]
    total_disp = get_backend(backend).total_displacement(dist_mat, dest)
    swap_cap = 4 * total_disp + 4 * n + 16

    best: list[tuple[int, int]] | None = None
    rng = np.random.default_rng(seed)
    for t in range(trials):
        trial_rng = rng if t > 0 else None  # first trial deterministic
        swaps = _serial_route(nbrs, dist, dest, trial_rng, swap_cap)
        if best is None or len(swaps) < len(best):
            best = swaps
    assert best is not None
    return best
