"""High-throughput service layer: cached, batched, parallel routing.

The modules compose bottom-up — :mod:`~repro.service.keys` (canonical
request fingerprints), :mod:`~repro.service.cache` (tiered LRU schedule
cache), :mod:`~repro.service.sharding` (sharded, admission-controlled
cache), :mod:`~repro.service.telemetry` (counters and latency
histograms), :mod:`~repro.service.executor` (dedup + cache + process
pool) — and :mod:`~repro.service.service` ties them into the
:class:`RoutingService` facade that the CLI's ``batch`` subcommand and
the benchmarks drive. On top of the facade sit the always-on front
ends: :mod:`~repro.service.aio` (:class:`AsyncRoutingService`, bounded
concurrency + per-request timeouts), and — sharing one
transport-agnostic dispatch surface, :mod:`~repro.service.handler` —
the NDJSON daemon (:mod:`~repro.service.daemon`, ``repro serve`` over
a UNIX socket or stdin/stdout) and the HTTP/JSON facade
(:mod:`~repro.service.http`, ``repro serve --http``, including the
Prometheus ``/metrics`` endpoint).
"""

from .aio import AsyncRoutingService
from .cache import CacheStats, LRUCache, ScheduleCache
from .daemon import DaemonClient, RoutingDaemon, wait_for_socket
from .executor import BatchExecutor, RouteRequest, RouteResult
from .handler import (
    ERROR_CODES,
    RequestHandler,
    render_prometheus,
    request_from_doc,
    transpile_request_from_doc,
)
from .http import HttpRoutingServer, http_request, wait_for_http
from .sharding import (
    AdmissionPolicy,
    CostThresholdAdmission,
    ShardedScheduleCache,
    admit_all,
    shard_index,
)
from .keys import (
    RequestKey,
    graph_fingerprint,
    graph_from_spec,
    graph_spec,
    permutation_fingerprint,
    request_key,
    text_fingerprint,
)
from .service import (
    RoutingService,
    TranspileOutcome,
    TranspileRequest,
    route_result_to_dict,
    transpile_metrics,
    transpile_outcome_to_dict,
)
from .telemetry import LatencyHistogram, Telemetry

__all__ = [
    "RequestKey",
    "graph_fingerprint",
    "graph_spec",
    "graph_from_spec",
    "permutation_fingerprint",
    "request_key",
    "text_fingerprint",
    "CacheStats",
    "LRUCache",
    "ScheduleCache",
    "AdmissionPolicy",
    "CostThresholdAdmission",
    "ShardedScheduleCache",
    "admit_all",
    "shard_index",
    "AsyncRoutingService",
    "RoutingDaemon",
    "DaemonClient",
    "RequestHandler",
    "ERROR_CODES",
    "render_prometheus",
    "request_from_doc",
    "transpile_request_from_doc",
    "wait_for_socket",
    "HttpRoutingServer",
    "http_request",
    "wait_for_http",
    "BatchExecutor",
    "RouteRequest",
    "RouteResult",
    "RoutingService",
    "TranspileRequest",
    "TranspileOutcome",
    "route_result_to_dict",
    "transpile_metrics",
    "transpile_outcome_to_dict",
    "LatencyHistogram",
    "Telemetry",
]
