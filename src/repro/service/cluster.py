"""Multi-host cache sharding: consistent hashing + remote-shard protocol.

:class:`~repro.service.sharding.ShardedScheduleCache` partitions one
*process's* cache; this module partitions the cache across *daemons*.
Routing results are pure functions of the canonical request fingerprint
(:mod:`repro.service.keys`), so any daemon that has computed a schedule
can serve it to every other daemon — the way tket-style routers
amortize repeated passes over circuit families — as long as all of them
agree on who owns which key.

Three pieces provide that agreement:

* :class:`HashRing` — consistent hashing with virtual nodes over the
  request-fingerprint digest. Every daemon builds the same ring from
  the same node ids, so ownership is a pure function of the digest; on
  membership change only ~1/n of the key space moves (see the
  hypothesis tests for the exact invariants).
* :class:`RemoteShardClient` — a thin client for the ``cache_get`` /
  ``cache_put`` / ``cache_stats`` operations that
  :class:`~repro.service.handler.RequestHandler` exposes on **both**
  transports: the NDJSON daemon framing (address = UNIX-socket path)
  and the HTTP facade (address = ``http://host:port``). Schedules ship
  as the :mod:`repro.routing.serialize` JSON documents.
* :class:`ClusterScheduleCache` — the ``ScheduleCache`` drop-in that
  the service layer actually holds. ``get`` probes the local tier
  first, then the key's remote owners in ring order; ``put`` writes
  the local tier plus every remote replica. Remote hits are
  **read-repaired**: promoted into the local tier and pushed to any
  replica that was probed and missed first.

Failure isolation is absolute: a dead shard degrades the cluster to
local compute, never to an error. Each node has a tiny circuit breaker
— after a transport failure the node is skipped for
``retry_interval`` seconds, then probed again — and every remote
failure is counted, not raised, so the routing hot path can only ever
see a cache miss.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Protocol, Sequence

from ..errors import ClusterShardError, ReproError
from ..routing.schedule import Schedule
from ..routing.serialize import schedule_from_json, schedule_to_json
from .cache import CacheStats, ScheduleCache
from .sharding import ShardedScheduleCache

__all__ = [
    "HashRing",
    "ShardClient",
    "RemoteShardClient",
    "InProcessShardClient",
    "ClusterScheduleCache",
    "ClusterStats",
]

#: Default virtual nodes per ring member. 128 points per node keeps the
#: max/min load ratio of a 3-node ring around ~1.2 while the ring stays
#: small enough to rebuild on every membership change.
DEFAULT_VNODES = 128

#: Seconds a failed node is skipped before being probed again.
DEFAULT_RETRY_INTERVAL = 30.0

#: Default transport timeout for shard operations (seconds). Cache
#: probes must be much cheaper than recomputing, so this is short: a
#: peer slower than this is treated as down and the key recomputed.
DEFAULT_SHARD_TIMEOUT = 5.0


class HashRing:
    """Consistent hashing with virtual nodes over digest hex strings.

    Each node is hashed to ``vnodes`` points on a 64-bit ring; a key
    (the first 16 hex chars of its SHA-256 request digest) is owned by
    the first node point at or clockwise after it. Because ownership
    depends only on the node ids and ``vnodes``, every process that
    builds a ring from the same members computes identical owners —
    the property multi-daemon cache sharding rests on.

    Parameters
    ----------
    nodes:
        Initial node ids (arbitrary non-empty strings — in a cluster,
        the addresses peers use to reach each node).
    vnodes:
        Virtual-node points per node; higher is smoother but slower to
        rebuild. Must be positive.

    Raises
    ------
    ValueError
        On a non-positive ``vnodes`` or a duplicate/empty node id.

    >>> ring = HashRing(["a", "b", "c"])
    >>> ring.owner("00" * 32) in {"a", "b", "c"}
    True
    >>> ring.replicas("00" * 32, 2) == ring.replicas("00" * 32, 2)
    True
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _node_point(node: str, replica: int) -> int:
        payload = f"{node}\x00{replica}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")

    @staticmethod
    def _key_point(digest: str) -> int:
        try:
            return int(digest[:16], 16)
        except ValueError:
            raise ValueError(f"digest must be a hex string, got {digest!r}") from None

    @property
    def nodes(self) -> frozenset[str]:
        """The current ring members (a snapshot)."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        """Place ``node`` (its ``vnodes`` points) on the ring.

        Raises
        ------
        ValueError
            If the id is empty or already a member.
        """
        if not node:
            raise ValueError("node id must be a non-empty string")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            bisect.insort(self._points, (self._node_point(node, i), node))

    def remove_node(self, node: str) -> None:
        """Remove ``node`` from the ring; its key span moves to successors.

        Raises
        ------
        ValueError
            If the node is not a member.
        """
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [(p, n) for (p, n) in self._points if n != node]

    def owner(self, digest: str) -> str:
        """The single node owning ``digest``.

        Raises
        ------
        ValueError
            On an empty ring or a non-hex digest.
        """
        owners = self.replicas(digest, 1)
        if not owners:
            raise ValueError("cannot look up an owner on an empty ring")
        return owners[0]

    def replicas(self, digest: str, n: int) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise from ``digest``.

        The list is deterministic, duplicate-free, and clamps to the
        member count; element 0 is the primary owner. An empty ring
        yields an empty list.
        """
        if n <= 0 or not self._points:
            return []
        start = bisect.bisect_left(self._points, (self._key_point(digest), ""))
        out: list[str] = []
        seen: set[str] = set()
        for k in range(len(self._points)):
            _, node = self._points[(start + k) % len(self._points)]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) >= min(n, len(self._nodes)):
                    break
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing(nodes={sorted(self._nodes)}, vnodes={self.vnodes})"


class ShardClient(Protocol):
    """The transport contract :class:`ClusterScheduleCache` speaks.

    Implementations raise :class:`~repro.errors.ClusterShardError` (or
    any :class:`~repro.errors.ReproError`) on transport failure; the
    cluster cache isolates the failure, it never propagates to routing.
    """

    def cache_get(self, digest: str) -> Schedule | None:
        """The shard's schedule for ``digest``, or ``None`` on a miss."""
        ...

    def cache_put(
        self, digest: str, schedule: Schedule, cost: float | None = None
    ) -> bool:
        """Store a schedule on the shard; ``True`` when acknowledged."""
        ...

    def cache_stats(self) -> dict[str, Any]:
        """The shard's local cache-stats document."""
        ...

    def close(self) -> None:
        """Release any transport resources (idempotent)."""
        ...


class RemoteShardClient:
    """Speak the cache ops to a remote daemon, over either transport.

    Parameters
    ----------
    address:
        ``http://`` / ``https://`` base URLs use the HTTP facade
        (``POST /v1/cache_get`` and friends); anything else is treated
        as a UNIX-socket path and spoken NDJSON via
        :class:`~repro.service.daemon.DaemonClient`.
    timeout:
        Per-operation transport timeout in seconds. Short by design
        (:data:`DEFAULT_SHARD_TIMEOUT`): a cache probe slower than this
        is worse than recomputing.

    The client is thread-safe (one lock around the shared connection)
    and reconnects transparently after a failure, which is what the
    cluster cache's retry-after-cooldown loop relies on.
    """

    def __init__(self, address: str, timeout: float = DEFAULT_SHARD_TIMEOUT) -> None:
        if not address:
            raise ValueError("shard address must be a non-empty string")
        self.address = address
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._is_http = address.startswith(("http://", "https://"))
        self._daemon: Any = None
        if not self._is_http:
            from .daemon import DaemonClient  # local import: avoids a cycle

            self._daemon = DaemonClient(address, timeout=self.timeout)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(self, doc: dict[str, Any]) -> dict[str, Any]:
        if self._is_http:
            from .http import http_request  # local import: avoids a cycle

            url = self.address.rstrip("/") + "/v1/" + str(doc["op"])
            status, body = http_request(url, doc, timeout=self.timeout)
            if not isinstance(body, dict):
                raise ClusterShardError(
                    f"shard {self.address}: non-JSON response (status {status})"
                )
            return body
        with self._lock:
            try:
                return self._daemon.request(doc)
            except ReproError:
                raise
            except (OSError, ValueError) as exc:
                # ValueError covers json.JSONDecodeError: a garbled line
                # (wrong service on the path, version skew, truncation)
                # must degrade like any other shard failure, and the
                # half-parsed connection cannot be trusted for the next
                # request either.
                self._daemon.close()
                raise ClusterShardError(f"shard {self.address}: {exc}") from exc

    def _checked(self, doc: dict[str, Any]) -> dict[str, Any]:
        resp = self._request(doc)
        if not resp.get("ok"):
            raise ClusterShardError(
                f"shard {self.address} refused {doc.get('op')}: "
                f"{resp.get('code')}: {resp.get('error')}"
            )
        return resp

    # ------------------------------------------------------------------
    # the ShardClient surface
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Whether the shard answers at all (never raises)."""
        try:
            if self._is_http:
                from .http import http_request  # local import: avoids a cycle

                status, body = http_request(
                    self.address.rstrip("/") + "/healthz", timeout=self.timeout
                )
                return status == 200 and isinstance(body, dict) and bool(body.get("ok"))
            return bool(self._request({"op": "ping"}).get("ok"))
        except ReproError:
            return False

    def cache_get(self, digest: str) -> Schedule | None:
        """Fetch ``digest`` from the shard's **local** cache tier.

        Returns
        -------
        Schedule | None
            The deserialized schedule, or ``None`` when the shard does
            not hold the key.

        Raises
        ------
        ClusterShardError
            On transport failure or a refused/malformed response.
        """
        resp = self._checked({"op": "cache_get", "digest": digest})
        if not resp.get("found"):
            return None
        try:
            return schedule_from_json(json.dumps(resp["schedule"]))
        except (KeyError, TypeError, ReproError) as exc:
            raise ClusterShardError(
                f"shard {self.address} returned a malformed schedule "
                f"for {digest[:12]}: {exc}"
            ) from exc

    def cache_put(
        self, digest: str, schedule: Schedule, cost: float | None = None
    ) -> bool:
        """Replicate a schedule onto the shard.

        Returns ``True`` when the shard accepted the entry (its local
        admission policy may still reject it silently).

        Raises
        ------
        ClusterShardError
            On transport failure or a refused response.
        """
        doc = {
            "op": "cache_put",
            "digest": digest,
            "schedule": json.loads(schedule_to_json(schedule)),
        }
        if cost is not None:
            doc["cost"] = float(cost)
        return bool(self._checked(doc).get("stored"))

    def cache_stats(self) -> dict[str, Any]:
        """The shard's local cache-stats document.

        Raises
        ------
        ClusterShardError
            On transport failure or a refused response.
        """
        return dict(self._checked({"op": "cache_stats"}).get("stats") or {})

    def close(self) -> None:
        """Close the underlying connection (HTTP clients are stateless)."""
        if self._daemon is not None:
            with self._lock:
                self._daemon.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteShardClient({self.address!r})"


class InProcessShardClient:
    """A :class:`ShardClient` over a cache object in this process.

    Lets tests and :mod:`examples.cluster_demo` build a multi-node ring
    without sockets: each "node" is just another cache instance. Pass
    the *local tier* of the other node (a
    :class:`~repro.service.cache.ScheduleCache` or
    :class:`~repro.service.sharding.ShardedScheduleCache`); passing a
    :class:`ClusterScheduleCache` automatically unwraps to its local
    tier so two nodes pointing at each other can never recurse.
    """

    def __init__(self, cache: Any) -> None:
        self.cache = getattr(cache, "local", cache)

    def ping(self) -> bool:
        """Always reachable."""
        return True

    def cache_get(self, digest: str) -> Schedule | None:
        """Probe the wrapped cache."""
        return self.cache.get(digest)

    def cache_put(
        self, digest: str, schedule: Schedule, cost: float | None = None
    ) -> bool:
        """Store into the wrapped cache."""
        self.cache.put(digest, schedule, cost=cost)
        return True

    def cache_stats(self) -> dict[str, Any]:
        """The wrapped cache's stats document."""
        return self.cache.as_dict()

    def close(self) -> None:
        """Nothing to release."""


@dataclass
class ClusterStats:
    """Cluster-level counters (monotonic since construction).

    ``remote_hits`` / ``remote_misses`` count *probes* answered by
    peers; ``remote_errors`` counts transport failures (each also
    trips that node's circuit breaker); ``read_repairs`` counts
    entries pushed back to replicas that missed; ``degraded_gets``
    counts lookups where at least one owner was skipped as dead —
    the "a dead shard degrades to local compute" path.
    """

    remote_hits: int = 0
    remote_misses: int = 0
    remote_errors: int = 0
    remote_puts: int = 0
    remote_put_errors: int = 0
    read_repairs: int = 0
    degraded_gets: int = 0

    def as_dict(self) -> dict[str, Any]:
        """The counters as a JSON-ready dict."""
        return {
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "remote_errors": self.remote_errors,
            "remote_puts": self.remote_puts,
            "remote_put_errors": self.remote_put_errors,
            "read_repairs": self.read_repairs,
            "degraded_gets": self.degraded_gets,
        }


@dataclass
class _NodeState:
    """Per-peer health + counters (guarded by the cluster lock)."""

    client: ShardClient
    hits: int = 0
    misses: int = 0
    errors: int = 0
    puts: int = 0
    consecutive_failures: int = 0
    down_until: float = 0.0
    last_error: str | None = None

    def as_dict(self, now: float) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "puts": self.puts,
            "up": now >= self.down_until,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


class ClusterScheduleCache:
    """One logical schedule cache spread over a ring of daemons.

    A ``ScheduleCache`` drop-in for the service layer: ``get`` / ``put``
    / ``__contains__`` / ``__len__`` / ``keys`` / ``clear`` / ``stats``
    / ``maxsize`` / ``disk_dir`` all exist, with cluster semantics:

    * ``get`` — local tier first (it doubles as a near-cache), then
      each remote owner of the key in ring order. A remote hit is
      promoted into the local tier and read-repaired onto any replica
      that was probed and missed before it.
    * ``put`` — local tier always (local compute is never wasted),
      plus every *remote* owner in the key's replica set.
    * Failure isolation — a peer that errors is marked down for
      ``retry_interval`` seconds and skipped; its keys fall back to
      local compute. No remote failure ever escapes as an exception.

    Parameters
    ----------
    local:
        The local cache tier (:class:`~repro.service.cache.ScheduleCache`
        or :class:`~repro.service.sharding.ShardedScheduleCache`).
    peers:
        Mapping of node id -> :class:`ShardClient`. Node ids must be
        the addresses *other* daemons use for this ring so every member
        computes identical ownership.
    node_id:
        This node's own ring id. ``None`` keeps the local node **off**
        the ring (client-only mode: every key is remote-owned — what
        ``repro batch --cluster`` uses); a daemon that is itself a
        shard passes the address its peers dial.
    replication:
        Owners per key (clamped to the ring size). 1 stores each key
        on exactly one shard; 2 tolerates one dead shard without
        losing warm entries.
    vnodes:
        Virtual nodes per ring member (see :class:`HashRing`).
    retry_interval:
        Seconds a failed peer is skipped before being retried.

    Raises
    ------
    ValueError
        On a non-positive ``replication`` / ``retry_interval``, or a
        ``node_id`` that collides with a peer id.
    """

    #: Tells the async front end that ``get``/``put`` may block on
    #: network I/O and must run on a worker thread, exactly like a
    #: disk-backed cache (see ``AsyncRoutingService._cache_get``).
    remote = True

    def __init__(
        self,
        local: ScheduleCache | ShardedScheduleCache,
        peers: Mapping[str, ShardClient],
        node_id: str | None = None,
        replication: int = 2,
        vnodes: int = DEFAULT_VNODES,
        retry_interval: float = DEFAULT_RETRY_INTERVAL,
    ) -> None:
        if replication <= 0:
            raise ValueError(f"replication must be positive, got {replication}")
        if retry_interval <= 0:
            raise ValueError(f"retry_interval must be positive, got {retry_interval}")
        if node_id is not None and node_id in peers:
            raise ValueError(f"node_id {node_id!r} collides with a peer id")
        self.local = local
        self.node_id = node_id
        self.replication = int(replication)
        self.retry_interval = float(retry_interval)
        members = list(peers)
        if node_id is not None:
            members.append(node_id)
        self.ring = HashRing(members, vnodes=vnodes)
        self._lock = threading.Lock()
        self._nodes: dict[str, _NodeState] = {
            nid: _NodeState(client=client) for nid, client in peers.items()
        }
        self.cluster_stats = ClusterStats()

    # ------------------------------------------------------------------
    # node health
    # ------------------------------------------------------------------
    def _live_client(self, node: str) -> ShardClient | None:
        """The node's client, or ``None`` while its breaker is open."""
        with self._lock:
            state = self._nodes[node]
            if time.monotonic() < state.down_until:
                return None
            return state.client

    def _mark_ok(self, node: str) -> None:
        with self._lock:
            state = self._nodes[node]
            state.consecutive_failures = 0
            state.down_until = 0.0
            state.last_error = None

    def _mark_failed(self, node: str, exc: Exception) -> None:
        with self._lock:
            state = self._nodes[node]
            state.errors += 1
            state.consecutive_failures += 1
            state.down_until = time.monotonic() + self.retry_interval
            state.last_error = f"{type(exc).__name__}: {exc}"
            self.cluster_stats.remote_errors += 1

    def dead_nodes(self) -> list[str]:
        """Peers currently skipped by the circuit breaker."""
        now = time.monotonic()
        with self._lock:
            return sorted(nid for nid, s in self._nodes.items() if now < s.down_until)

    # ------------------------------------------------------------------
    # the ScheduleCache surface
    # ------------------------------------------------------------------
    def _owners(self, digest: str) -> list[str]:
        return self.ring.replicas(digest, self.replication)

    def get(self, digest: str) -> Schedule | None:
        """Local tier, then each live remote owner; ``None`` on miss.

        May block on network I/O — the async front end runs it on a
        worker thread (see the ``remote`` class attribute). Never
        raises for a dead or misbehaving peer.
        """
        schedule = self.local.get(digest)
        if schedule is not None:
            return schedule
        missed: list[str] = []
        degraded = False
        for node in self._owners(digest):
            if node == self.node_id:
                continue  # the local tier already missed
            client = self._live_client(node)
            if client is None:
                degraded = True
                continue
            try:
                schedule = client.cache_get(digest)
            except ReproError as exc:
                self._mark_failed(node, exc)
                degraded = True
                continue
            self._mark_ok(node)
            if schedule is None:
                with self._lock:
                    self._nodes[node].misses += 1
                    self.cluster_stats.remote_misses += 1
                missed.append(node)
                continue
            with self._lock:
                self._nodes[node].hits += 1
                self.cluster_stats.remote_hits += 1
            # Promote into the local tier (near-cache) and repair the
            # replicas that answered "not found" before this hit.
            self.local.put(digest, schedule)
            for lagging in missed:
                self._repair(lagging, digest, schedule)
            return schedule
        if degraded:
            with self._lock:
                self.cluster_stats.degraded_gets += 1
        return None

    def _repair(self, node: str, digest: str, schedule: Schedule) -> None:
        """Best-effort read-repair of one lagging replica."""
        client = self._live_client(node)
        if client is None:
            return
        try:
            client.cache_put(digest, schedule)
        except ReproError as exc:
            self._mark_failed(node, exc)
            return
        with self._lock:
            self.cluster_stats.read_repairs += 1

    def put(self, digest: str, schedule: Schedule, cost: float | None = None) -> None:
        """Store locally and replicate to every remote owner (best effort).

        The local tier always receives the entry — a computing node
        never throws its own work away, and a fully dead cluster
        degrades to exactly the single-process cache. Remote failures
        are counted, never raised.
        """
        self.local.put(digest, schedule, cost=cost)
        for node in self._owners(digest):
            if node == self.node_id:
                continue  # stored by the local put above
            client = self._live_client(node)
            if client is None:
                continue
            try:
                client.cache_put(digest, schedule, cost=cost)
            except ReproError as exc:
                self._mark_failed(node, exc)
                with self._lock:
                    self.cluster_stats.remote_put_errors += 1
                continue
            self._mark_ok(node)
            with self._lock:
                self._nodes[node].puts += 1
                self.cluster_stats.remote_puts += 1

    def __contains__(self, digest: str) -> bool:
        """Local-tier containment only (no network probe)."""
        return digest in self.local

    def __len__(self) -> int:
        """Local-tier entry count (peers report theirs via ``cache_stats``)."""
        return len(self.local)

    def keys(self) -> Iterator[str]:
        """Local-tier digests only."""
        return self.local.keys()

    def clear(self) -> None:
        """Drop the local tier; remote shards are their daemons' business."""
        self.local.clear()

    @property
    def maxsize(self) -> int:
        """The local tier's in-memory capacity."""
        return self.local.maxsize

    @property
    def disk_dir(self):
        """The local tier's persistent directory (``None`` when memory-only)."""
        return self.local.disk_dir

    def close(self) -> None:
        """Close every peer client (idempotent; peers keep running)."""
        with self._lock:
            states = list(self._nodes.values())
        for state in states:
            try:
                state.client.close()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """The cluster view as plain cache counters (a fresh snapshot).

        A remote hit rescued a local miss, so cluster hits are local
        hits plus remote hits and cluster misses are local misses minus
        the rescued ones; the disk counters are the local tier's.
        """
        local = self.local.stats
        with self._lock:
            remote_hits = self.cluster_stats.remote_hits
        total = CacheStats(
            hits=local.hits + remote_hits,
            misses=max(local.misses - remote_hits, 0),
            evictions=local.evictions,
            puts=local.puts,
            disk_hits=local.disk_hits,
            disk_writes=local.disk_writes,
            disk_errors=local.disk_errors,
        )
        return total

    def per_node_stats(self) -> dict[str, dict[str, Any]]:
        """One health + counter dict per peer (for telemetry)."""
        now = time.monotonic()
        with self._lock:
            return {nid: s.as_dict(now) for nid, s in self._nodes.items()}

    def as_dict(self) -> dict[str, Any]:
        """Local-tier stats plus the ``cluster`` section, JSON-ready.

        The shape extends the sharded cache's ``as_dict``: callers (the
        stats document, Prometheus rendering) read the usual cache
        counters at the top level and cluster telemetry under
        ``"cluster"``. Involves no network I/O — peer stats are their
        own daemons' ``cache_stats`` documents.
        """
        doc = self.local.as_dict()
        with self._lock:
            cluster = self.cluster_stats.as_dict()
        doc["cluster"] = {
            **cluster,
            "node_id": self.node_id,
            "replication": self.replication,
            "ring_nodes": sorted(self.ring.nodes),
            "dead_nodes": self.dead_nodes(),
            "nodes": self.per_node_stats(),
        }
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterScheduleCache(node_id={self.node_id!r}, "
            f"peers={sorted(self._nodes)}, replication={self.replication})"
        )
