"""Multi-host cache sharding: consistent hashing + remote-shard protocol.

:class:`~repro.service.sharding.ShardedScheduleCache` partitions one
*process's* cache; this module partitions the cache across *daemons*.
Routing results are pure functions of the canonical request fingerprint
(:mod:`repro.service.keys`), so any daemon that has computed a schedule
can serve it to every other daemon — the way tket-style routers
amortize repeated passes over circuit families — as long as all of them
agree on who owns which key.

Four pieces provide that agreement:

* :class:`ClusterTopology` — the epoch-versioned membership object
  every other layer observes. Each change (join / leave / replace)
  swaps in a freshly built :class:`HashRing` and bumps a monotonic
  epoch under a compare-and-set guard, so concurrent administrators
  cannot split-brain a ring and observers can tell "the ring changed
  under me" from "my probe missed". ``--peer`` flags, a watched
  ``--topology-file`` (:class:`TopologyFileWatcher`, reloaded on mtime
  change or SIGHUP) and the runtime ``topology_update`` op are all
  just different writers of the same object.
* :class:`HashRing` — consistent hashing with virtual nodes over the
  request-fingerprint digest. Every daemon builds the same ring from
  the same node ids, so ownership is a pure function of the digest; on
  membership change only ~1/n of the key space moves (see the
  hypothesis tests for the exact invariants).
* :class:`RemoteShardClient` — a thin client for the ``cache_get`` /
  ``cache_put`` / ``cache_stats`` / ``topology_get`` /
  ``topology_update`` operations that
  :class:`~repro.service.handler.RequestHandler` exposes on **both**
  transports: the NDJSON daemon framing (address = UNIX-socket path)
  and the HTTP facade (address = ``http://host:port``). Schedules ship
  as base64-wrapped binary :mod:`repro.routing.codec` frames when the
  peer advertises the capability (learned from the ``codec`` field its
  responses echo), falling back to the :mod:`repro.routing.serialize`
  JSON documents for pre-codec daemons — so mixed-version rings keep
  interoperating during a rolling upgrade.
* :class:`ClusterScheduleCache` — the ``ScheduleCache`` drop-in that
  the service layer actually holds. ``get`` probes the local tier
  first, then the key's remote owners in ring order; ``put`` writes
  the local tier plus every remote replica. Remote hits are
  **read-repaired**: promoted into the local tier and pushed to any
  replica that was probed and missed first. Ownership is re-read from
  the topology on every operation, so a membership change takes
  effect mid-flight without restarting anything.

When a node **joins**, the members that lose primary ownership of keys
stream those now-foreign hot-tier entries to the newcomer over the
ordinary ``cache_put`` op (a bounded-rate background thread, aborted
by the next epoch bump), so a scale-up event ends with a warm ring
instead of a cold shard — see
:meth:`ClusterScheduleCache.wait_for_handoff`.

Failure isolation is absolute: a dead shard degrades the cluster to
local compute, never to an error. Each node has a tiny circuit breaker
— after a transport failure the node is skipped for
``retry_interval`` seconds, then probed again — and every remote
failure is counted, not raised, so the routing hot path can only ever
see a cache miss.
"""

from __future__ import annotations

import base64
import binascii
import bisect
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Protocol, Sequence

from ..errors import (
    ClusterShardError,
    DaemonDisconnectedError,
    ReproError,
    StaleEpochError,
)
from ..routing.codec import decode_schedule, encode_schedule, negotiated_version
from ..routing.schedule import Schedule
from ..routing.serialize import schedule_from_json, schedule_to_json
from .cache import CacheStats, ScheduleCache
from .logging import get_logger
from .sharding import ShardedScheduleCache
from .tracing import current_traceparent, span

__all__ = [
    "HashRing",
    "ClusterTopology",
    "TopologyView",
    "TopologyFileWatcher",
    "parse_topology_doc",
    "ShardClient",
    "RemoteShardClient",
    "InProcessShardClient",
    "ClusterScheduleCache",
    "ClusterStats",
]

#: Default virtual nodes per ring member. 128 points per node keeps the
#: max/min load ratio of a 3-node ring around ~1.2 while the ring stays
#: small enough to rebuild on every membership change.
DEFAULT_VNODES = 128

#: Seconds a failed node is skipped before being probed again
#: (constructor- and CLI-tunable; see ``repro serve --breaker-cooldown``).
DEFAULT_RETRY_INTERVAL = 30.0

#: Default transport timeout for shard operations (seconds). Cache
#: probes must be much cheaper than recomputing, so this is short: a
#: peer slower than this is treated as down and the key recomputed.
DEFAULT_SHARD_TIMEOUT = 5.0

#: Default key-space handoff rate (``cache_put`` pushes per second the
#: background handoff thread allows itself). Low enough that a scale-up
#: never floods the ring with replication traffic, high enough that a
#: few thousand hot entries migrate in seconds.
DEFAULT_HANDOFF_RATE = 500.0

#: Seconds between topology-file mtime polls.
DEFAULT_WATCH_INTERVAL = 1.0


class HashRing:
    """Consistent hashing with virtual nodes over digest hex strings.

    Each node is hashed to ``vnodes`` points on a 64-bit ring; a key
    (the first 16 hex chars of its SHA-256 request digest) is owned by
    the first node point at or clockwise after it. Because ownership
    depends only on the node ids and ``vnodes``, every process that
    builds a ring from the same members computes identical owners —
    the property multi-daemon cache sharding rests on.

    Parameters
    ----------
    nodes:
        Initial node ids (arbitrary non-empty strings — in a cluster,
        the addresses peers use to reach each node).
    vnodes:
        Virtual-node points per node; higher is smoother but slower to
        rebuild. Must be positive.

    Raises
    ------
    ValueError
        On a non-positive ``vnodes`` or a duplicate/empty node id.

    >>> ring = HashRing(["a", "b", "c"])
    >>> ring.owner("00" * 32) in {"a", "b", "c"}
    True
    >>> ring.replicas("00" * 32, 2) == ring.replicas("00" * 32, 2)
    True
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _node_point(node: str, replica: int) -> int:
        payload = f"{node}\x00{replica}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")

    @staticmethod
    def _key_point(digest: str) -> int:
        try:
            return int(digest[:16], 16)
        except ValueError:
            raise ValueError(f"digest must be a hex string, got {digest!r}") from None

    @property
    def nodes(self) -> frozenset[str]:
        """The current ring members (a snapshot)."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        """Place ``node`` (its ``vnodes`` points) on the ring.

        Raises
        ------
        ValueError
            If the id is empty or already a member.
        """
        if not node:
            raise ValueError("node id must be a non-empty string")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            bisect.insort(self._points, (self._node_point(node, i), node))

    def remove_node(self, node: str) -> None:
        """Remove ``node`` from the ring; its key span moves to successors.

        Raises
        ------
        ValueError
            If the node is not a member.
        """
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [(p, n) for (p, n) in self._points if n != node]

    def owner(self, digest: str) -> str:
        """The single node owning ``digest``.

        Raises
        ------
        ValueError
            On an empty ring or a non-hex digest.
        """
        owners = self.replicas(digest, 1)
        if not owners:
            raise ValueError("cannot look up an owner on an empty ring")
        return owners[0]

    def replicas(self, digest: str, n: int) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise from ``digest``.

        The list is deterministic, duplicate-free, and clamps to the
        member count; element 0 is the primary owner. An empty ring
        yields an empty list.
        """
        if n <= 0 or not self._points:
            return []
        start = bisect.bisect_left(self._points, (self._key_point(digest), ""))
        out: list[str] = []
        seen: set[str] = set()
        for k in range(len(self._points)):
            _, node = self._points[(start + k) % len(self._points)]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) >= min(n, len(self._nodes)):
                    break
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing(nodes={sorted(self._nodes)}, vnodes={self.vnodes})"


# ----------------------------------------------------------------------
# epoch-versioned membership
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologyView:
    """One immutable observation of the cluster membership.

    Readers take a view once per operation and use its ``ring`` for
    every ownership decision inside that operation, so a concurrent
    membership change can never split one lookup across two rings.
    The ``ring`` object is built fresh for each view and never mutated
    afterwards.
    """

    epoch: int
    members: frozenset[str]
    metadata: Mapping[str, Mapping[str, Any]]
    ring: HashRing

    def as_dict(self) -> dict[str, Any]:
        """The view as a JSON-ready topology document."""
        members = sorted(self.members)
        return {
            "epoch": self.epoch,
            "members": members,
            "metadata": {m: dict(self.metadata.get(m, {})) for m in members},
        }


class ClusterTopology:
    """Epoch-versioned, thread-safe cluster membership.

    The single source of truth for "who is on the ring right now".
    :class:`ClusterScheduleCache`, the request handler's
    ``topology_get`` / ``topology_update`` ops, the ``--topology-file``
    watcher and the ``repro topology`` admin CLI all observe or mutate
    this one object instead of owning private peer lists.

    Every successful mutation swaps in a complete new
    :class:`TopologyView` (member set, per-node metadata, freshly built
    :class:`HashRing`) under a strictly increasing **epoch**. Two
    guards keep concurrent writers coherent:

    * ``expected_epoch`` — compare-and-set: the update applies only if
      the current epoch still matches, else :class:`StaleEpochError`.
    * ``epoch`` — an explicit new epoch must be strictly greater than
      the current one, else :class:`StaleEpochError`. This is how a
      fleet converges on one shared epoch: the administrator computes
      ``E + 1`` once and pushes it to every member.

    Subscribers registered with :meth:`subscribe` are called with
    ``(old_view, new_view)`` after each change, outside the topology
    lock — this is the hook the cluster cache uses to prune clients
    and launch key-space handoff.

    >>> topo = ClusterTopology(["a", "b"])
    >>> topo.epoch
    1
    >>> topo.join("c").epoch
    2
    >>> sorted(topo.members)
    ['a', 'b', 'c']
    """

    def __init__(
        self,
        members: Sequence[str] = (),
        *,
        epoch: int = 1,
        vnodes: int = DEFAULT_VNODES,
        metadata: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> None:
        if epoch <= 0:
            raise ValueError(f"epoch must be positive, got {epoch}")
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[TopologyView, TopologyView], None]] = []
        self._view = self._build_view(int(epoch), set(members), dict(metadata or {}))

    def _build_view(
        self,
        epoch: int,
        members: set[str],
        metadata: Mapping[str, Mapping[str, Any]],
    ) -> TopologyView:
        meta = {m: dict(metadata.get(m, {})) for m in members}
        return TopologyView(
            epoch=epoch,
            members=frozenset(members),
            metadata=meta,
            ring=HashRing(sorted(members), vnodes=self.vnodes),
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The current epoch (monotonically increasing)."""
        return self._view.epoch

    @property
    def members(self) -> frozenset[str]:
        """The current member set (a snapshot)."""
        return self._view.members

    def view(self) -> TopologyView:
        """The current immutable :class:`TopologyView`."""
        return self._view

    def as_dict(self) -> dict[str, Any]:
        """The current topology as a JSON-ready document."""
        return self._view.as_dict()

    # ------------------------------------------------------------------
    # observing
    # ------------------------------------------------------------------
    def subscribe(self, fn: Callable[[TopologyView, TopologyView], None]) -> None:
        """Call ``fn(old_view, new_view)`` after every membership change.

        Callbacks run outside the topology lock, in the mutating
        thread; exceptions are swallowed (an observer must never be
        able to veto or corrupt a membership change).
        """
        with self._lock:
            self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TopologyView, TopologyView], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe` (idempotent).

        Compared with ``==``, not ``is``: subscribers are typically
        bound methods, and every attribute access creates a fresh
        bound-method object (identity never matches; equality does).
        """
        with self._lock:
            self._subscribers = [s for s in self._subscribers if s != fn]

    # ------------------------------------------------------------------
    # mutating
    # ------------------------------------------------------------------
    def update(
        self,
        members: Sequence[str] | None = None,
        *,
        action: str = "replace",
        node: str | None = None,
        epoch: int | None = None,
        expected_epoch: int | None = None,
        metadata: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> TopologyView:
        """Apply one membership change; returns the new (or unchanged) view.

        ``action`` is ``"join"`` / ``"leave"`` (with ``node``) or
        ``"replace"`` (with the full ``members`` list). A ``replace``
        that changes nothing — same member set, no explicit ``epoch``,
        no metadata — is a no-op and does **not** bump the epoch, so a
        re-read topology file or a repeated admin push cannot abort an
        in-flight handoff.

        Raises
        ------
        StaleEpochError
            When ``expected_epoch`` no longer matches, or ``epoch`` is
            not strictly newer than the current epoch.
        ReproError
            On a malformed change (unknown action, joining an existing
            member, leaving a non-member, missing fields).
        """
        with self._lock:
            cur = self._view
            if expected_epoch is not None and int(expected_epoch) != cur.epoch:
                raise StaleEpochError(
                    f"topology update expected epoch {int(expected_epoch)}, "
                    f"but the current epoch is {cur.epoch}; re-read the "
                    "topology and retry"
                )
            if action == "join":
                if not node:
                    raise ReproError("'node' required for a join")
                if node in cur.members:
                    raise ReproError(f"node {node!r} is already a ring member")
                new_members = set(cur.members) | {node}
            elif action == "leave":
                if not node:
                    raise ReproError("'node' required for a leave")
                if node not in cur.members:
                    raise ReproError(f"node {node!r} is not a ring member")
                new_members = set(cur.members) - {node}
            elif action == "replace":
                if members is None:
                    raise ReproError("'members' required for a replace")
                new_members = set(members)
            else:
                raise ReproError(f"unknown topology action {action!r}")
            merged_meta = {m: dict(cur.metadata.get(m, {})) for m in new_members}
            if metadata:
                for m, extra in metadata.items():
                    if m in merged_meta and isinstance(extra, Mapping):
                        merged_meta[m].update(extra)
            if epoch is not None:
                new_epoch = int(epoch)
                if new_epoch <= cur.epoch:
                    raise StaleEpochError(
                        f"topology epoch {new_epoch} is not newer than the "
                        f"current epoch {cur.epoch}"
                    )
            else:
                unchanged = new_members == set(cur.members) and merged_meta == {
                    m: dict(cur.metadata.get(m, {})) for m in cur.members
                }
                if action == "replace" and unchanged:
                    return cur  # idempotent reload: nothing changed
                new_epoch = cur.epoch + 1
            new = self._build_view(new_epoch, new_members, merged_meta)
            self._view = new
            subscribers = list(self._subscribers)
        for fn in subscribers:
            try:
                fn(cur, new)
            except Exception:  # noqa: BLE001 - observers cannot veto changes
                pass
        return new

    def join(self, node: str, **kwargs: Any) -> TopologyView:
        """Add one member (sugar for :meth:`update` with ``action="join"``)."""
        return self.update(action="join", node=node, **kwargs)

    def leave(self, node: str, **kwargs: Any) -> TopologyView:
        """Remove one member (sugar for :meth:`update` with ``action="leave"``)."""
        return self.update(action="leave", node=node, **kwargs)

    def replace(self, members: Sequence[str], **kwargs: Any) -> TopologyView:
        """Install a full member set (sugar for ``action="replace"``)."""
        return self.update(members=members, action="replace", **kwargs)

    def apply_doc(self, doc: Mapping[str, Any]) -> TopologyView:
        """Apply a validated ``topology_update`` request document.

        The document carries ``action`` (default ``replace``) plus
        ``node`` or ``members``, and optionally ``epoch`` /
        ``expected_epoch`` / ``metadata`` — the wire shape the handler
        op, the HTTP endpoint and the admin CLI all share.

        Raises
        ------
        ReproError
            On malformed fields (the handler maps this to
            ``bad_request``).
        StaleEpochError
            On a lost epoch race (mapped to ``stale_epoch``).
        """
        action = doc.get("action", "replace")
        if not isinstance(action, str):
            raise ReproError("'action' must be a string")
        members = doc.get("members")
        if members is not None:
            if not isinstance(members, list) or not all(
                isinstance(m, str) and m for m in members
            ):
                raise ReproError("'members' must be a list of non-empty strings")
        node = doc.get("node")
        if node is not None and (not isinstance(node, str) or not node):
            raise ReproError("'node' must be a non-empty string")
        epoch = doc.get("epoch")
        expected = doc.get("expected_epoch")
        try:
            epoch = int(epoch) if epoch is not None else None
            expected = int(expected) if expected is not None else None
        except (TypeError, ValueError):
            raise ReproError("'epoch' and 'expected_epoch' must be integers") from None
        metadata = doc.get("metadata")
        if metadata is not None and not isinstance(metadata, Mapping):
            raise ReproError("'metadata' must be a JSON object")
        return self.update(
            members=members,
            action=action,
            node=node,
            epoch=epoch,
            expected_epoch=expected,
            metadata=metadata,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        view = self._view
        return (
            f"ClusterTopology(epoch={view.epoch}, members={sorted(view.members)})"
        )


def parse_topology_doc(
    doc: Any,
) -> tuple[list[str], int | None, dict[str, dict[str, Any]]]:
    """Parse a topology-file document into ``(members, epoch, metadata)``.

    Accepted shapes: a bare JSON array of member addresses, or an
    object ``{"members": [...], "epoch": N}`` where each member is an
    address string or ``{"id": "...", "metadata": {...}}``. ``epoch``
    is optional (``None`` means "bump on change").

    Raises
    ------
    ReproError
        On any other shape.
    """
    epoch: int | None = None
    if isinstance(doc, Mapping):
        raw_members = doc.get("members")
        if "epoch" in doc:
            try:
                epoch = int(doc["epoch"])
            except (TypeError, ValueError):
                raise ReproError("topology 'epoch' must be an integer") from None
            if epoch <= 0:
                raise ReproError(f"topology 'epoch' must be positive, got {epoch}")
    else:
        raw_members = doc
    if not isinstance(raw_members, list):
        raise ReproError(
            "topology document must be a JSON array of member addresses or "
            'an object with a "members" array'
        )
    members: list[str] = []
    metadata: dict[str, dict[str, Any]] = {}
    for entry in raw_members:
        if isinstance(entry, str) and entry:
            members.append(entry)
        elif isinstance(entry, Mapping):
            node = entry.get("id")
            if not isinstance(node, str) or not node:
                raise ReproError("topology member objects need a non-empty 'id'")
            members.append(node)
            extra = entry.get("metadata")
            if extra is not None:
                if not isinstance(extra, Mapping):
                    raise ReproError("topology member 'metadata' must be an object")
                metadata[node] = dict(extra)
        else:
            raise ReproError(
                "topology members must be address strings or {'id': ...} objects"
            )
    return members, epoch, metadata


class TopologyFileWatcher:
    """Reload a :class:`ClusterTopology` from a watched JSON file.

    The runtime-reconfiguration path for deployments that manage
    membership as configuration (one file pushed to every host):
    ``repro serve --topology-file PATH`` starts this watcher, which
    polls the file's mtime every ``interval`` seconds and re-applies it
    on change; SIGHUP (wired by the CLI to :meth:`reload_now`) forces
    an immediate re-read. File semantics follow
    :func:`parse_topology_doc`: a file *with* an ``epoch`` is applied
    only while that epoch is newer than the current one (a stale file
    with a *different* member set records an error instead of silently
    rewinding the ring — except on the very first load, where the
    daemon's implicit single-member epoch 1 must not shadow a fleet's
    natural ``"epoch": 1`` starting file); a file without one bumps
    the epoch exactly when the member set actually changes.

    The watcher never raises from its thread — parse or apply failures
    land in :attr:`last_error` and the previous topology stays in
    force. Call :meth:`reload` directly (e.g. at daemon start) when a
    malformed file should fail loudly.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        path: str | os.PathLike,
        interval: float = DEFAULT_WATCH_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.topology = topology
        self.path = os.fspath(path)
        self.interval = float(interval)
        self.reloads = 0
        self.last_error: str | None = None
        self._last_mtime: int | None = None
        self._applied = False
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def reload(self) -> bool:
        """Read and apply the file now; ``True`` when the topology changed.

        Raises
        ------
        ReproError
            On an unreadable or malformed file, or a stale file epoch
            that disagrees with the current member set.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot read topology file {self.path}: {exc}") from exc
        members, epoch, metadata = parse_topology_doc(doc)
        before = self.topology.epoch
        if epoch is not None and epoch <= before:
            if frozenset(members) == self.topology.members:
                self._applied = True
                return False
            if self._applied:
                raise StaleEpochError(
                    f"topology file {self.path} carries stale epoch {epoch} "
                    f"(current {before}) but a different member set; bump the "
                    "file's epoch to apply it"
                )
            # First load: the daemon's implicit single-member topology
            # already sits at epoch 1, so a fleet's natural first file
            # ("epoch": 1) must still apply — install it as a plain
            # bump rather than refusing to start.
            epoch = None
        view = self.topology.replace(
            members, epoch=epoch, metadata=metadata or None
        )
        changed = view.epoch != before
        if changed:
            self.reloads += 1
        self._applied = True
        return changed

    def reload_now(self) -> None:
        """Wake the watcher thread for an immediate re-read (signal-safe)."""
        self._wake.set()

    def start(self) -> None:
        """Start the polling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-topology-watch", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the polling thread (idempotent; joins briefly)."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval + 1.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.interval)
            forced = self._wake.is_set()
            self._wake.clear()
            if self._stop.is_set():
                break
            try:
                mtime = os.stat(self.path).st_mtime_ns
            except OSError as exc:
                self.last_error = f"cannot stat {self.path}: {exc}"
                continue
            if not forced and mtime == self._last_mtime:
                continue
            self._last_mtime = mtime
            try:
                self.reload()
            except ReproError as exc:
                self.last_error = str(exc)
            else:
                self.last_error = None


class ShardClient(Protocol):
    """The transport contract :class:`ClusterScheduleCache` speaks.

    Implementations raise :class:`~repro.errors.ClusterShardError` (or
    any :class:`~repro.errors.ReproError`) on transport failure; the
    cluster cache isolates the failure, it never propagates to routing.
    """

    def cache_get(self, digest: str) -> Schedule | None:
        """The shard's schedule for ``digest``, or ``None`` on a miss."""
        ...

    def cache_put(
        self, digest: str, schedule: Schedule, cost: float | None = None
    ) -> bool:
        """Store a schedule on the shard; ``True`` when acknowledged."""
        ...

    def cache_stats(self) -> dict[str, Any]:
        """The shard's local cache-stats document."""
        ...

    def close(self) -> None:
        """Release any transport resources (idempotent)."""
        ...


class RemoteShardClient:
    """Speak the cache ops to a remote daemon, over either transport.

    Parameters
    ----------
    address:
        ``http://`` / ``https://`` base URLs use the HTTP facade
        (``POST /v1/cache_get`` and friends); anything else is treated
        as a UNIX-socket path and spoken NDJSON via
        :class:`~repro.service.daemon.DaemonClient`.
    timeout:
        Per-operation transport timeout in seconds. Short by design
        (:data:`DEFAULT_SHARD_TIMEOUT`): a cache probe slower than this
        is worse than recomputing.

    The client is thread-safe (one lock around the shared connection)
    and reconnects transparently after a failure, which is what the
    cluster cache's retry-after-cooldown loop relies on.
    """

    def __init__(self, address: str, timeout: float = DEFAULT_SHARD_TIMEOUT) -> None:
        if not address:
            raise ValueError("shard address must be a non-empty string")
        self.address = address
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._is_http = address.startswith(("http://", "https://"))
        self._daemon: Any = None
        # The peer's schedule-codec capability: ``None`` until the first
        # cache response teaches us (every response echoes ``codec``),
        # ``0`` for a pre-codec daemon (JSON documents only), ``>= 1``
        # for binary frames. Unknown peers are sent JSON — correct
        # against any version — and upgrade after one round trip.
        self._peer_codec: int | None = None
        if not self._is_http:
            from .daemon import DaemonClient  # local import: avoids a cycle

            self._daemon = DaemonClient(address, timeout=self.timeout)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(self, doc: dict[str, Any]) -> dict[str, Any]:
        # Propagate the caller's trace context across the hop: W3C
        # ``traceparent`` header over HTTP, a ``trace`` field in the
        # NDJSON request doc. The receiving daemon starts its own trace
        # under the same trace id, parented on our current span.
        traceparent = None if "trace" in doc else current_traceparent()
        if self._is_http:
            from .http import http_request  # local import: avoids a cycle

            url = self.address.rstrip("/") + "/v1/" + str(doc["op"])
            headers = {"traceparent": traceparent} if traceparent else None
            status, body = http_request(
                url, doc, timeout=self.timeout, headers=headers
            )
            if not isinstance(body, dict):
                raise ClusterShardError(
                    f"shard {self.address}: non-JSON response (status {status})"
                )
            return body
        if traceparent is not None:
            doc = {**doc, "trace": traceparent}
        with self._lock:
            try:
                return self._daemon.request(doc)
            except DaemonDisconnectedError:
                # A half-open socket — the peer idle-closed (or was
                # restarted) between two requests — is not a dead shard.
                # The client has already dropped the connection, so one
                # fresh-connection retry distinguishes "connection aged
                # out" from "node down" before the breaker trips. Only
                # idempotent ops retry: a topology_update whose response
                # was eaten may already be applied, and re-sending it
                # would turn success into a spurious CAS failure.
                if doc.get("op") == "topology_update":
                    raise
                try:
                    return self._daemon.request(doc)
                except ReproError:
                    raise
                except (OSError, ValueError) as exc:
                    self._daemon.close()
                    raise ClusterShardError(f"shard {self.address}: {exc}") from exc
            except ReproError:
                raise
            except (OSError, ValueError) as exc:
                # ValueError covers json.JSONDecodeError: a garbled line
                # (wrong service on the path, version skew, truncation)
                # must degrade like any other shard failure, and the
                # half-parsed connection cannot be trusted for the next
                # request either.
                self._daemon.close()
                raise ClusterShardError(f"shard {self.address}: {exc}") from exc

    def _checked(self, doc: dict[str, Any]) -> dict[str, Any]:
        resp = self._request(doc)
        if not resp.get("ok"):
            raise ClusterShardError(
                f"shard {self.address} refused {doc.get('op')}: "
                f"{resp.get('code')}: {resp.get('error')}"
            )
        return resp

    # ------------------------------------------------------------------
    # the ShardClient surface
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Whether the shard answers at all (never raises)."""
        try:
            if self._is_http:
                from .http import http_request  # local import: avoids a cycle

                status, body = http_request(
                    self.address.rstrip("/") + "/healthz", timeout=self.timeout
                )
                return status == 200 and isinstance(body, dict) and bool(body.get("ok"))
            return bool(self._request({"op": "ping"}).get("ok"))
        except ReproError:
            return False

    def _learn_codec(self, resp: Mapping[str, Any]) -> None:
        """Record the peer's codec capability from a response echo."""
        codec = resp.get("codec")
        if isinstance(codec, int) and codec >= 0:
            self._peer_codec = min(codec, negotiated_version())
        elif self._peer_codec is None:
            self._peer_codec = 0  # pre-codec daemons never echo the field

    def cache_get(self, digest: str) -> Schedule | None:
        """Fetch ``digest`` from the shard's **local** cache tier.

        The request advertises our codec version; a codec-aware peer
        answers with a binary ``schedule_b64`` frame, a pre-codec peer
        ignores the advert and answers the JSON document — both decode
        here.

        Returns
        -------
        Schedule | None
            The deserialized schedule, or ``None`` when the shard does
            not hold the key.

        Raises
        ------
        ClusterShardError
            On transport failure or a refused/malformed response.
        """
        resp = self._checked(
            {"op": "cache_get", "digest": digest, "codec": negotiated_version()}
        )
        self._learn_codec(resp)
        if not resp.get("found"):
            return None
        frame_b64 = resp.get("schedule_b64")
        try:
            if frame_b64 is not None:
                return decode_schedule(base64.b64decode(frame_b64, validate=True))
            return schedule_from_json(json.dumps(resp["schedule"]))
        except (KeyError, TypeError, binascii.Error, ReproError) as exc:
            raise ClusterShardError(
                f"shard {self.address} returned a malformed schedule "
                f"for {digest[:12]}: {exc}"
            ) from exc

    def cache_put(
        self, digest: str, schedule: Schedule, cost: float | None = None
    ) -> bool:
        """Replicate a schedule onto the shard.

        Ships the binary frame once the peer's codec capability is
        known (learned from any previous cache response), JSON
        otherwise. If a binary put is refused as ``bad_request`` — the
        peer was downgraded to a pre-codec build between requests — the
        client downgrades the capability and resends the entry as JSON
        once, so a rolling rollback costs one extra round trip instead
        of an error.

        Returns ``True`` when the shard accepted the entry (its local
        admission policy may still reject it silently).

        Raises
        ------
        ClusterShardError
            On transport failure or a refused response.
        """
        doc: dict[str, Any] = {
            "op": "cache_put",
            "digest": digest,
            "codec": negotiated_version(),
        }
        if cost is not None:
            doc["cost"] = float(cost)
        if min(self._peer_codec or 0, negotiated_version()) >= 1:
            frame = encode_schedule(schedule)
            doc["schedule_b64"] = base64.b64encode(frame).decode("ascii")
            try:
                resp = self._checked(doc)
            except ClusterShardError as exc:
                if "bad_request" not in str(exc):
                    raise
                self._peer_codec = 0
                del doc["schedule_b64"]
                doc["schedule"] = json.loads(schedule_to_json(schedule))
                resp = self._checked(doc)
        else:
            doc["schedule"] = json.loads(schedule_to_json(schedule))
            resp = self._checked(doc)
        self._learn_codec(resp)
        return bool(resp.get("stored"))

    def cache_stats(self) -> dict[str, Any]:
        """The shard's local cache-stats document.

        Raises
        ------
        ClusterShardError
            On transport failure or a refused response.
        """
        return dict(self._checked({"op": "cache_stats"}).get("stats") or {})

    def topology_get(self) -> dict[str, Any]:
        """The daemon's current topology document (epoch + members).

        Raises
        ------
        ClusterShardError
            On transport failure, a refused response, or a daemon
            running without cluster mode.
        """
        topo = self._checked({"op": "topology_get"}).get("topology")
        if not isinstance(topo, Mapping):
            raise ClusterShardError(
                f"shard {self.address} returned a malformed topology document"
            )
        return dict(topo)

    def topology_update(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Apply a topology change on the daemon; returns its new topology.

        ``doc`` is the ``topology_update`` request shape (``action`` /
        ``members`` / ``node`` / ``epoch`` / ``expected_epoch``); see
        :meth:`ClusterTopology.apply_doc`.

        Raises
        ------
        ClusterShardError
            On transport failure or a refused update (including a lost
            ``stale_epoch`` compare-and-set race — the refusing code is
            embedded in the message).
        """
        resp = self._checked({**dict(doc), "op": "topology_update"})
        return dict(resp.get("topology") or {})

    def gossip(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Deliver one gossip document; returns the peer's ack + view.

        ``doc`` is a :meth:`~repro.service.gossip.GossipNode.wire_doc`
        payload (``kind`` / ``from`` / ``epoch`` / ``members`` /
        ``states``). The response carries the peer's post-merge view
        back — the anti-entropy half of every probe.

        Raises
        ------
        ClusterShardError
            On transport failure or a refused response (including a
            daemon running without ``--gossip-interval``).
        """
        return self._checked({**dict(doc), "op": "gossip"})

    def service_stats(self) -> dict[str, Any]:
        """The daemon's full ``stats`` document (caches + telemetry).

        Unlike :meth:`cache_stats` this is the whole service snapshot —
        queue-depth gauges, latency histograms, hit rates — which is
        what the autoscaler reads its signals from.

        Raises
        ------
        ClusterShardError
            On transport failure or a refused response.
        """
        return dict(self._checked({"op": "stats"}).get("stats") or {})

    def trace_get(
        self,
        trace_id: str | None = None,
        limit: int | None = None,
        min_seconds: float | None = None,
    ) -> list[dict[str, Any]]:
        """Fetch finished trace documents from the daemon's trace ring.

        ``trace_id`` selects one trace; otherwise the newest traces,
        optionally filtered to those slower than ``min_seconds`` and
        truncated to ``limit``. Returns the raw
        :meth:`~repro.service.tracing.Trace.to_doc` documents (the
        ``repro trace`` CLI merges these across nodes by trace id).

        Raises
        ------
        ClusterShardError
            On transport failure or a refused response (including a
            daemon running with tracing disabled).
        """
        doc: dict[str, Any] = {"op": "trace_get"}
        if trace_id is not None:
            doc["trace_id"] = trace_id
        if limit is not None:
            doc["limit"] = int(limit)
        if min_seconds is not None:
            doc["min_seconds"] = float(min_seconds)
        traces = self._checked(doc).get("traces")
        return list(traces) if isinstance(traces, list) else []

    def close(self) -> None:
        """Close the underlying connection (HTTP clients are stateless)."""
        if self._daemon is not None:
            with self._lock:
                self._daemon.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteShardClient({self.address!r})"


class InProcessShardClient:
    """A :class:`ShardClient` over a cache object in this process.

    Lets tests and :mod:`examples.cluster_demo` build a multi-node ring
    without sockets: each "node" is just another cache instance. Pass
    the *local tier* of the other node (a
    :class:`~repro.service.cache.ScheduleCache` or
    :class:`~repro.service.sharding.ShardedScheduleCache`); passing a
    :class:`ClusterScheduleCache` automatically unwraps to its local
    tier so two nodes pointing at each other can never recurse.
    """

    def __init__(self, cache: Any) -> None:
        self.cache = getattr(cache, "local", cache)

    def ping(self) -> bool:
        """Always reachable."""
        return True

    def cache_get(self, digest: str) -> Schedule | None:
        """Probe the wrapped cache."""
        return self.cache.get(digest)

    def cache_put(
        self, digest: str, schedule: Schedule, cost: float | None = None
    ) -> bool:
        """Store into the wrapped cache."""
        self.cache.put(digest, schedule, cost=cost)
        return True

    def cache_stats(self) -> dict[str, Any]:
        """The wrapped cache's stats document."""
        return self.cache.as_dict()

    def close(self) -> None:
        """Nothing to release."""


@dataclass
class ClusterStats:
    """Cluster-level counters (monotonic since construction).

    ``remote_hits`` / ``remote_misses`` count *probes* answered by
    peers; ``remote_errors`` counts transport failures (each also
    trips that node's circuit breaker); ``read_repairs`` counts
    entries pushed back to replicas that missed; ``degraded_gets``
    counts lookups where at least one owner was skipped as dead —
    the "a dead shard degrades to local compute" path. The
    ``handoff_*`` counters track key-space handoff: ``handoff_rounds``
    background streams started by a topology change,
    ``handoff_keys_sent`` entries pushed to newly joined owners,
    ``handoff_errors`` failed pushes, ``handoff_aborts`` streams
    cut short by the next epoch bump (or close), and
    ``handoff_evicted`` entries dropped from the local tier after
    every new owner confirmed its copy (the key re-homed cleanly, so
    the old owner stops serving a stale-able duplicate). The
    ``sweep_*`` counters track the background anti-entropy sweep:
    ``sweep_rounds`` completed passes over the local key space,
    ``sweep_repairs`` entries pushed to owners that were missing them,
    and ``sweep_errors`` failed probes or pushes.
    """

    remote_hits: int = 0
    remote_misses: int = 0
    remote_errors: int = 0
    remote_puts: int = 0
    remote_put_errors: int = 0
    read_repairs: int = 0
    degraded_gets: int = 0
    handoff_rounds: int = 0
    handoff_keys_sent: int = 0
    handoff_errors: int = 0
    handoff_aborts: int = 0
    handoff_evicted: int = 0
    sweep_rounds: int = 0
    sweep_repairs: int = 0
    sweep_errors: int = 0

    def as_dict(self) -> dict[str, Any]:
        """The counters as a JSON-ready dict."""
        return {
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "remote_errors": self.remote_errors,
            "remote_puts": self.remote_puts,
            "remote_put_errors": self.remote_put_errors,
            "read_repairs": self.read_repairs,
            "degraded_gets": self.degraded_gets,
            "handoff_rounds": self.handoff_rounds,
            "handoff_keys_sent": self.handoff_keys_sent,
            "handoff_errors": self.handoff_errors,
            "handoff_aborts": self.handoff_aborts,
            "handoff_evicted": self.handoff_evicted,
            "sweep_rounds": self.sweep_rounds,
            "sweep_repairs": self.sweep_repairs,
            "sweep_errors": self.sweep_errors,
        }


@dataclass
class _NodeState:
    """Per-peer health + counters (guarded by the cluster lock).

    ``client`` is ``None`` only on the throwaway template used to
    shape stats for never-probed members; every state held in
    ``ClusterScheduleCache._nodes`` carries a real client.
    """

    client: ShardClient | None
    hits: int = 0
    misses: int = 0
    errors: int = 0
    puts: int = 0
    consecutive_failures: int = 0
    down_until: float = 0.0
    last_error: str | None = None

    def as_dict(self, now: float) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "puts": self.puts,
            "up": now >= self.down_until,
            "cooldown_remaining": max(0.0, self.down_until - now),
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


class ClusterScheduleCache:
    """One logical schedule cache spread over a ring of daemons.

    A ``ScheduleCache`` drop-in for the service layer: ``get`` / ``put``
    / ``__contains__`` / ``__len__`` / ``keys`` / ``clear`` / ``stats``
    / ``maxsize`` / ``disk_dir`` all exist, with cluster semantics:

    * ``get`` — local tier first (it doubles as a near-cache), then
      each remote owner of the key in ring order. A remote hit is
      promoted into the local tier and read-repaired onto any replica
      that was probed and missed before it.
    * ``put`` — local tier always (local compute is never wasted),
      plus every *remote* owner in the key's replica set.
    * Failure isolation — a peer that errors is marked down for
      ``retry_interval`` seconds and skipped; its keys fall back to
      local compute. No remote failure ever escapes as an exception.

    Membership is **observed, not owned**: every operation reads the
    current :class:`TopologyView` from the shared
    :class:`ClusterTopology`, so joins and leaves take effect without
    restarting anything. Shard clients are created lazily from member
    addresses (``client_factory``, default :class:`RemoteShardClient`)
    and pruned when a member leaves. When new members join while this
    node is on the ring, a bounded-rate background thread streams the
    hot-tier entries this node was the old primary owner of — and a
    newcomer now owns — to the new owner via ``cache_put`` (key-space
    handoff), aborting if the epoch moves again mid-stream.

    Parameters
    ----------
    local:
        The local cache tier (:class:`~repro.service.cache.ScheduleCache`
        or :class:`~repro.service.sharding.ShardedScheduleCache`).
    peers:
        Optional mapping of node id -> pre-wired :class:`ShardClient`
        (in-process rings, tests). When no ``topology`` is passed,
        these ids plus ``node_id`` form the initial membership —
        ``--peer`` is exactly this sugar; there is no separate static
        path.
    node_id:
        This node's own ring id. ``None`` keeps the local node **off**
        the ring (client-only mode: every key is remote-owned — what
        ``repro batch --cluster`` uses); a daemon that is itself a
        shard passes the address its peers dial.
    replication:
        Owners per key (clamped to the ring size). 1 stores each key
        on exactly one shard; 2 tolerates one dead shard without
        losing warm entries.
    vnodes:
        Virtual nodes per ring member (used when building the implicit
        topology; an explicit ``topology`` brings its own).
    retry_interval:
        Seconds a failed peer's circuit breaker stays open before the
        peer is probed again (``repro serve --breaker-cooldown``).
    topology:
        An explicit :class:`ClusterTopology` to observe (shared with
        the handler's ``topology_*`` ops and the file watcher).
        ``None`` builds one from ``peers`` + ``node_id``.
    client_factory:
        ``node_id -> ShardClient`` for members without a pre-wired
        client; defaults to :class:`RemoteShardClient` with
        ``shard_timeout``.
    shard_timeout:
        Transport timeout for default-constructed clients.
    handoff:
        Whether to stream owned keys to newly joined members.
    handoff_rate:
        Upper bound on handoff ``cache_put`` pushes per second (also
        paces the anti-entropy sweep).
    clock:
        Monotonic-seconds source for the circuit breakers (injectable
        so breaker-cooldown tests can use a virtual clock).

    Raises
    ------
    ValueError
        On a non-positive ``replication`` / ``retry_interval`` /
        ``handoff_rate``, or a ``node_id`` that collides with a peer id.
    """

    def __init__(
        self,
        local: ScheduleCache | ShardedScheduleCache,
        peers: Mapping[str, ShardClient] | None = None,
        node_id: str | None = None,
        replication: int = 2,
        vnodes: int = DEFAULT_VNODES,
        retry_interval: float = DEFAULT_RETRY_INTERVAL,
        *,
        topology: ClusterTopology | None = None,
        client_factory: Callable[[str], ShardClient] | None = None,
        shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
        handoff: bool = True,
        handoff_rate: float = DEFAULT_HANDOFF_RATE,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if replication <= 0:
            raise ValueError(f"replication must be positive, got {replication}")
        if retry_interval <= 0:
            raise ValueError(f"retry_interval must be positive, got {retry_interval}")
        if handoff_rate <= 0:
            raise ValueError(f"handoff_rate must be positive, got {handoff_rate}")
        peers = dict(peers or {})
        if node_id is not None and node_id in peers:
            raise ValueError(f"node_id {node_id!r} collides with a peer id")
        self.local = local
        self.node_id = node_id
        self.replication = int(replication)
        self.retry_interval = float(retry_interval)
        self.handoff_rate = float(handoff_rate)
        self._handoff_enabled = bool(handoff)
        self._preset_clients = peers
        self._client_factory = client_factory or (
            lambda address: RemoteShardClient(address, timeout=shard_timeout)
        )
        if topology is None:
            members = set(peers)
            if node_id is not None:
                members.add(node_id)
            topology = ClusterTopology(sorted(members), vnodes=vnodes)
        self.topology = topology
        self._clock = clock
        self._lock = threading.Lock()
        self._nodes: dict[str, _NodeState] = {}
        self._closed = False
        self._handoff_thread: threading.Thread | None = None
        self._sweep_stop = threading.Event()
        self._sweep_thread: threading.Thread | None = None
        self.cluster_stats = ClusterStats()
        topology.subscribe(self._on_topology_change)

    @property
    def ring(self) -> HashRing:
        """The current epoch's consistent-hash ring (a live snapshot)."""
        return self.topology.view().ring

    @property
    def epoch(self) -> int:
        """The topology epoch this cache currently observes."""
        return self.topology.epoch

    @property
    def remote(self) -> bool:
        """Whether ``get``/``put`` may block on I/O to other nodes.

        Consulted by the async front end to decide on a worker-thread
        hop (like a disk tier). True exactly when the current view
        contains any member besides this node.
        """
        return any(m != self.node_id for m in self.topology.members)

    # ------------------------------------------------------------------
    # node health
    # ------------------------------------------------------------------
    def _state(self, node: str) -> _NodeState:
        """The node's health state, creating its client lazily."""
        with self._lock:
            state = self._nodes.get(node)
            if state is None:
                client = self._preset_clients.get(node)
                if client is None:
                    client = self._client_factory(node)
                state = self._nodes[node] = _NodeState(client=client)
            return state

    def _live_client(self, node: str) -> ShardClient | None:
        """The node's client, or ``None`` while its breaker is open."""
        state = self._state(node)
        with self._lock:
            if self._clock() < state.down_until:
                return None
            return state.client

    def _mark_ok(self, node: str) -> None:
        state = self._state(node)
        with self._lock:
            state.consecutive_failures = 0
            state.down_until = 0.0
            state.last_error = None

    def _mark_failed(self, node: str, exc: Exception) -> None:
        state = self._state(node)
        with self._lock:
            state.errors += 1
            state.consecutive_failures += 1
            state.down_until = self._clock() + self.retry_interval
            state.last_error = f"{type(exc).__name__}: {exc}"
            self.cluster_stats.remote_errors += 1

    def dead_nodes(self) -> list[str]:
        """Peers currently skipped by the circuit breaker."""
        now = self._clock()
        with self._lock:
            return sorted(nid for nid, s in self._nodes.items() if now < s.down_until)

    # ------------------------------------------------------------------
    # topology changes + key-space handoff
    # ------------------------------------------------------------------
    def _on_topology_change(self, old: TopologyView, new: TopologyView) -> None:
        """React to a membership change: prune clients, start handoff."""
        removed: list[_NodeState] = []
        with self._lock:
            if self._closed:
                return
            for nid in list(self._nodes):
                if nid not in new.members:
                    removed.append(self._nodes.pop(nid))
        for state in removed:
            try:
                if state.client is not None:
                    state.client.close()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        self._maybe_start_handoff(old, new)

    def _maybe_start_handoff(self, old: TopologyView, new: TopologyView) -> None:
        if not self._handoff_enabled or self.node_id is None:
            return
        if self.node_id not in new.members:
            return
        newcomers = new.members - old.members - {self.node_id}
        if not newcomers:
            return
        thread = threading.Thread(
            target=self._handoff_worker,
            args=(old, new, frozenset(newcomers)),
            name=f"repro-handoff-epoch{new.epoch}",
            daemon=True,
        )
        with self._lock:
            self._handoff_thread = thread
            self.cluster_stats.handoff_rounds += 1
        thread.start()

    def _pace(self) -> None:
        """Sleep one ``handoff_rate`` slot (shared by handoff and sweep)."""
        time.sleep(1.0 / self.handoff_rate)

    def _handoff_worker(
        self, old: TopologyView, new: TopologyView, newcomers: frozenset[str]
    ) -> None:
        """Stream this node's now-foreign hot keys to the new owners.

        Runs in a background thread after a join. For every local-tier
        digest this node was the *old primary owner* of (the
        primary-only rule keeps N old members from pushing the same key
        N times), any newly joined node in the digest's new replica set
        receives the entry via ``cache_put``, at most ``handoff_rate``
        pushes per second. The stream aborts as soon as the topology
        epoch moves past the one it was started for, or the cache is
        closed.

        A key that re-homed completely — every newcomer copy was
        confirmed stored and this node is no longer in the key's new
        replica set — is then evicted from the local tier
        (``handoff_evicted``): the ring will route future lookups to
        the new owners, and keeping an unowned duplicate here only
        squeezes genuinely-owned keys out of the LRU. Any failed or
        skipped push keeps the local copy, so an entry always survives
        somewhere.
        """
        errors = 0
        evicted = 0
        aborted = False
        for digest in list(self.local.keys()):
            if self._closed or self.topology.epoch != new.epoch:
                aborted = True
                break
            old_owners = old.ring.replicas(digest, self.replication)
            if not old_owners or old_owners[0] != self.node_id:
                continue
            new_owners = new.ring.replicas(digest, self.replication)
            targets = [n for n in new_owners if n in newcomers]
            if not targets:
                continue
            schedule = self.local.get(digest)
            if schedule is None:
                continue  # evicted since the key listing
            digest_ok = True
            for node in targets:
                if self._closed or self.topology.epoch != new.epoch:
                    aborted = True
                    break
                client = self._live_client(node)
                if client is None:
                    errors += 1
                    digest_ok = False
                    continue
                with span("cache.handoff_put", node=node) as hsp:
                    try:
                        client.cache_put(digest, schedule)
                    except ReproError as exc:
                        hsp.status = "error"
                        self._mark_failed(node, exc)
                        errors += 1
                        digest_ok = False
                        continue
                self._mark_ok(node)
                with self._lock:
                    self.cluster_stats.handoff_keys_sent += 1
                self._pace()
            if aborted:
                break
            if digest_ok and self.node_id not in new_owners:
                if self.local.discard(digest):
                    evicted += 1
        with self._lock:
            self.cluster_stats.handoff_errors += errors
            self.cluster_stats.handoff_evicted += evicted
            if aborted:
                self.cluster_stats.handoff_aborts += 1

    def handoff_active(self) -> bool:
        """Whether a key-space handoff stream is currently running."""
        with self._lock:
            thread = self._handoff_thread
        return thread is not None and thread.is_alive()

    def wait_for_handoff(self, timeout: float | None = None) -> bool:
        """Block until the current handoff stream (if any) finishes.

        Returns ``True`` when no stream is running afterwards (``False``
        on timeout). Benchmarks and drills use this to assert a joined
        shard is warm before measuring it.
        """
        with self._lock:
            thread = self._handoff_thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    # ------------------------------------------------------------------
    # anti-entropy sweep
    # ------------------------------------------------------------------
    def anti_entropy_sweep(self) -> dict[str, Any]:
        """One repair pass over the local key space; returns a summary.

        For every local-tier digest this node co-owns under the current
        ring, each *other* owner is probed with ``cache_get``; owners
        that miss receive this node's copy via ``cache_put``
        (``sweep_repairs``). Keys whose every owner already holds a
        copy get **no** put — the sweep is idempotent on a healthy
        ring. Entries are content-addressed by their request digest, so
        any local copy is a valid repair source; the self-in-owners
        rule (rather than primary-only) lets a replica repair a primary
        that lost its copy, which is exactly the under-replication a
        crashed-and-rejoined node leaves behind.

        Pushes are paced by ``handoff_rate``. The pass aborts early —
        without counting a ``sweep_rounds`` round — when the topology
        epoch moves, the cache is closed, or :meth:`stop_sweeper` is
        called. Never raises for a dead or misbehaving peer.
        """
        view = self.topology.view()
        scanned = 0
        repairs = 0
        errors = 0
        aborted = False
        if self.node_id is not None and self.node_id in view.members:
            for digest in list(self.local.keys()):
                if (
                    self._closed
                    or self._sweep_stop.is_set()
                    or self.topology.epoch != view.epoch
                ):
                    aborted = True
                    break
                owners = view.ring.replicas(digest, self.replication)
                if self.node_id not in owners:
                    continue
                scanned += 1
                schedule: Schedule | None = None
                missing_local = False
                for node in owners:
                    if node == self.node_id:
                        continue
                    client = self._live_client(node)
                    if client is None:
                        errors += 1
                        continue
                    with span("cache.sweep_probe", node=node) as psp:
                        try:
                            held = client.cache_get(digest)
                        except ReproError as exc:
                            psp.status = "error"
                            self._mark_failed(node, exc)
                            errors += 1
                            continue
                        psp.set("hit", held is not None)
                    self._mark_ok(node)
                    if held is not None:
                        continue
                    if schedule is None:
                        schedule = self.local.get(digest)
                        if schedule is None:
                            missing_local = True  # evicted since the listing
                            break
                    with span("cache.sweep_put", node=node) as ssp:
                        try:
                            client.cache_put(digest, schedule)
                        except ReproError as exc:
                            ssp.status = "error"
                            self._mark_failed(node, exc)
                            errors += 1
                            continue
                    self._mark_ok(node)
                    repairs += 1
                    self._pace()
                if missing_local:
                    continue
        with self._lock:
            self.cluster_stats.sweep_repairs += repairs
            self.cluster_stats.sweep_errors += errors
            if not aborted:
                self.cluster_stats.sweep_rounds += 1
        return {
            "scanned": scanned,
            "repaired": repairs,
            "errors": errors,
            "aborted": aborted,
        }

    def start_sweeper(self, period: float) -> None:
        """Run :meth:`anti_entropy_sweep` every ``period`` seconds.

        Idempotent while a sweeper is running; the thread is a daemon
        and is stopped by :meth:`stop_sweeper` or :meth:`close`. This
        is what ``repro serve --sweep-interval`` starts.
        """
        if period <= 0:
            raise ValueError(f"sweep period must be positive, got {period}")
        with self._lock:
            if self._sweep_thread is not None and self._sweep_thread.is_alive():
                return
            self._sweep_stop.clear()
            thread = self._sweep_thread = threading.Thread(
                target=self._sweep_loop,
                args=(float(period),),
                name="repro-sweeper",
                daemon=True,
            )
        thread.start()

    def _sweep_loop(self, period: float) -> None:
        log = get_logger("repro.service.cluster")
        while not self._sweep_stop.wait(period):
            try:
                self.anti_entropy_sweep()
            except Exception:  # noqa: BLE001 - one bad pass must not stop repair
                log.exception("anti-entropy sweep failed")

    def stop_sweeper(self, timeout: float = 5.0) -> None:
        """Stop the background sweeper thread (idempotent)."""
        self._sweep_stop.set()
        with self._lock:
            thread = self._sweep_thread
            self._sweep_thread = None
        if thread is not None:
            thread.join(timeout)

    # ------------------------------------------------------------------
    # the ScheduleCache surface
    # ------------------------------------------------------------------
    def _owners(self, digest: str, view: TopologyView | None = None) -> list[str]:
        view = view or self.topology.view()
        return view.ring.replicas(digest, self.replication)

    def get(self, digest: str) -> Schedule | None:
        """Local tier, then each live remote owner; ``None`` on miss.

        Ownership comes from one topology view taken at entry, so a
        concurrent membership change can never split this lookup across
        two rings. May block on network I/O — the async front end runs
        it on a worker thread (see the ``remote`` property). Never
        raises for a dead or misbehaving peer.
        """
        with span("cache.local_get") as lsp:
            schedule = self.local.get(digest)
            lsp.set("hit", schedule is not None)
        if schedule is not None:
            return schedule
        view = self.topology.view()
        missed: list[str] = []
        degraded = False
        for node in self._owners(digest, view):
            if node == self.node_id:
                continue  # the local tier already missed
            client = self._live_client(node)
            if client is None:
                degraded = True
                continue
            with span("cache.remote_get", node=node) as rsp:
                try:
                    schedule = client.cache_get(digest)
                except ReproError as exc:
                    rsp.status = "error"
                    self._mark_failed(node, exc)
                    degraded = True
                    continue
                rsp.set("hit", schedule is not None)
            self._mark_ok(node)
            if schedule is None:
                state = self._state(node)
                with self._lock:
                    state.misses += 1
                    self.cluster_stats.remote_misses += 1
                missed.append(node)
                continue
            state = self._state(node)
            with self._lock:
                state.hits += 1
                self.cluster_stats.remote_hits += 1
            # Promote into the local tier (near-cache) and repair the
            # replicas that answered "not found" before this hit.
            self.local.put(digest, schedule)
            for lagging in missed:
                self._repair(lagging, digest, schedule)
            return schedule
        if degraded:
            with self._lock:
                self.cluster_stats.degraded_gets += 1
        return None

    def _repair(self, node: str, digest: str, schedule: Schedule) -> None:
        """Best-effort read-repair of one lagging replica."""
        client = self._live_client(node)
        if client is None:
            return
        with span("cache.read_repair", node=node) as rsp:
            try:
                client.cache_put(digest, schedule)
            except ReproError as exc:
                rsp.status = "error"
                self._mark_failed(node, exc)
                return
        with self._lock:
            self.cluster_stats.read_repairs += 1

    def put(self, digest: str, schedule: Schedule, cost: float | None = None) -> None:
        """Store locally and replicate to every remote owner (best effort).

        The local tier always receives the entry — a computing node
        never throws its own work away, and a fully dead cluster
        degrades to exactly the single-process cache. Remote failures
        are counted, never raised.
        """
        self.local.put(digest, schedule, cost=cost)
        view = self.topology.view()
        for node in self._owners(digest, view):
            if node == self.node_id:
                continue  # stored by the local put above
            client = self._live_client(node)
            if client is None:
                continue
            with span("cache.remote_put", node=node) as rsp:
                try:
                    client.cache_put(digest, schedule, cost=cost)
                except ReproError as exc:
                    rsp.status = "error"
                    self._mark_failed(node, exc)
                    with self._lock:
                        self.cluster_stats.remote_put_errors += 1
                    continue
            self._mark_ok(node)
            state = self._state(node)
            with self._lock:
                state.puts += 1
                self.cluster_stats.remote_puts += 1

    def __contains__(self, digest: str) -> bool:
        """Local-tier containment only (no network probe)."""
        return digest in self.local

    def __len__(self) -> int:
        """Local-tier entry count (peers report theirs via ``cache_stats``)."""
        return len(self.local)

    def keys(self) -> Iterator[str]:
        """Local-tier digests only."""
        return self.local.keys()

    def discard(self, digest: str) -> bool:
        """Drop ``digest`` from the local tier only; True when present.

        Remote owners keep their copies — this is the handoff-eviction
        primitive, not a cluster-wide delete.
        """
        return self.local.discard(digest)

    def clear(self) -> None:
        """Drop the local tier; remote shards are their daemons' business."""
        self.local.clear()

    @property
    def maxsize(self) -> int:
        """The local tier's in-memory capacity."""
        return self.local.maxsize

    @property
    def disk_dir(self):
        """The local tier's persistent directory (``None`` when memory-only)."""
        return self.local.disk_dir

    def close(self) -> None:
        """Close every peer client (idempotent; peers keep running).

        Also stops observing the topology, stops the background
        anti-entropy sweeper, and aborts any in-flight key-space
        handoff stream.
        """
        with self._lock:
            self._closed = True
            states = list(self._nodes.values())
        self.topology.unsubscribe(self._on_topology_change)
        self.stop_sweeper()
        self.wait_for_handoff(timeout=1.0)  # the worker sees _closed fast
        for state in states:
            try:
                if state.client is not None:
                    state.client.close()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        for client in self._preset_clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """The cluster view as plain cache counters (a fresh snapshot).

        A remote hit rescued a local miss, so cluster hits are local
        hits plus remote hits and cluster misses are local misses minus
        the rescued ones; the disk counters are the local tier's.
        """
        local = self.local.stats
        with self._lock:
            remote_hits = self.cluster_stats.remote_hits
        total = CacheStats(
            hits=local.hits + remote_hits,
            misses=max(local.misses - remote_hits, 0),
            evictions=local.evictions,
            puts=local.puts,
            disk_hits=local.disk_hits,
            disk_writes=local.disk_writes,
            disk_errors=local.disk_errors,
        )
        return total

    def per_node_stats(self) -> dict[str, dict[str, Any]]:
        """One health + counter dict per peer (for telemetry).

        Members never probed yet (no client materialized) report
        all-zero counters and ``up: true`` — a fresh joiner is assumed
        healthy until a probe says otherwise.
        """
        now = self._clock()
        with self._lock:
            stats = {nid: s.as_dict(now) for nid, s in self._nodes.items()}
        fresh = _NodeState(client=None).as_dict(now)
        for nid in self.topology.members:
            if nid != self.node_id and nid not in stats:
                stats[nid] = dict(fresh)
        return stats

    def as_dict(self) -> dict[str, Any]:
        """Local-tier stats plus the ``cluster`` section, JSON-ready.

        The shape extends the sharded cache's ``as_dict``: callers (the
        stats document, Prometheus rendering) read the usual cache
        counters at the top level and cluster telemetry under
        ``"cluster"``. Involves no network I/O — peer stats are their
        own daemons' ``cache_stats`` documents.
        """
        doc = self.local.as_dict()
        view = self.topology.view()
        with self._lock:
            cluster = self.cluster_stats.as_dict()
        doc["cluster"] = {
            **cluster,
            "node_id": self.node_id,
            "replication": self.replication,
            "epoch": view.epoch,
            "retry_interval": self.retry_interval,
            "handoff_active": self.handoff_active(),
            "ring_nodes": sorted(view.members),
            "dead_nodes": self.dead_nodes(),
            "nodes": self.per_node_stats(),
        }
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        view = self.topology.view()
        return (
            f"ClusterScheduleCache(node_id={self.node_id!r}, "
            f"epoch={view.epoch}, members={sorted(view.members)}, "
            f"replication={self.replication})"
        )
