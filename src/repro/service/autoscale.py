"""Metrics-driven ring autoscaling: ``/metrics`` in, ``topology`` out.

The gossip layer (:mod:`repro.service.gossip`) makes the ring heal
itself when members die; this module makes it *resize* itself when load
changes. An :class:`Autoscaler` is the supervisor the ``repro
autoscale`` command runs: each step it

1. **observes** — reads the topology from the first reachable contact
   node, then every member's ``stats`` document, and condenses them
   into one :class:`ClusterObservation` (total queued requests across
   the fair-queue gauges, the worst per-member ``pipeline.execute``
   p99, the mean schedule-cache hit rate);
2. **decides** — compares the observation against an
   :class:`AutoscalePolicy`: sustained pressure (deep queues, slow
   p99s, or a cold cache) scales up by one node drawn from the spare
   ``pool``, an idle ring scales back down by returning a pool node,
   and a ``cooldown`` between actions keeps one burst from flapping
   the ring; and
3. **acts** — pushes the membership change with exactly the admin
   CLI's ordering and compare-and-set discipline (newcomer first
   without CAS, then every member under ``expected_epoch``; on
   scale-down the stayers first, the leaver last and best-effort), so
   a racing administrator or a second autoscaler loses the CAS instead
   of splitting the ring.

Scale-down only ever removes nodes the autoscaler itself may manage
(the ``pool``) — the seed members an operator placed are never
touched. ``benchmarks/bench_autoscale.py`` drives a live 3-node ring
to 5 under load through this exact code path and gates zero request
errors with converged epochs.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from ..errors import ReproError
from .cluster import RemoteShardClient
from .logging import get_logger

__all__ = [
    "AutoscaleDecision",
    "AutoscalePolicy",
    "Autoscaler",
    "ClusterObservation",
]

#: Seconds between autoscaler evaluation steps (``repro autoscale
#: --interval``).
DEFAULT_AUTOSCALE_INTERVAL = 5.0


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and bounds for one autoscaler.

    ``queue_high`` / ``p99_high`` / ``hit_rate_low`` are the pressure
    signals — any one of them firing requests a scale-up (``None``
    disables that signal). The ring scales down only when the total
    queue is at or under ``queue_low`` **and** no pressure signal
    fires. ``cooldown`` seconds must pass after any action before the
    next one, so a single burst cannot flap the ring; ``min_nodes`` /
    ``max_nodes`` bound the ring size regardless of signals.
    """

    min_nodes: int = 1
    max_nodes: int = 8
    queue_high: float = 8.0
    queue_low: float = 1.0
    p99_high: float | None = None
    hit_rate_low: float | None = None
    cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes ({self.max_nodes}) must be >= min_nodes "
                f"({self.min_nodes})"
            )
        if self.queue_low > self.queue_high:
            raise ValueError(
                f"queue_low ({self.queue_low}) must be <= queue_high "
                f"({self.queue_high})"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


@dataclass(frozen=True)
class ClusterObservation:
    """One condensed reading of the ring (see :meth:`Autoscaler.observe`).

    ``queued`` sums every member's fair-queue depth gauges; ``p99`` is
    the worst per-member ``pipeline.execute`` p99 (``None`` before any
    request completed); ``hit_rate`` is the mean schedule-cache hit
    rate over the members that answered; ``reachable`` lists them.
    """

    epoch: int
    members: tuple[str, ...]
    reachable: tuple[str, ...]
    queued: float
    p99: float | None
    hit_rate: float | None

    def as_dict(self) -> dict[str, Any]:
        """The observation as a JSON-ready document (for logs/benchmarks)."""
        return {
            "epoch": self.epoch,
            "members": list(self.members),
            "reachable": list(self.reachable),
            "queued": self.queued,
            "p99": self.p99,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class AutoscaleDecision:
    """What one evaluation step concluded (``scale_up`` / ``scale_down`` /
    ``hold``), why, and which node it applies to."""

    action: str
    reason: str
    node: str | None = None

    def as_dict(self) -> dict[str, Any]:
        """The decision as a JSON-ready document (for logs/benchmarks)."""
        return {"action": self.action, "reason": self.reason, "node": self.node}


def _sum_gauge(gauges: Any, name: str) -> float:
    """Total of one gauge across its labeled series (0.0 when absent)."""
    if not isinstance(gauges, Mapping):
        return 0.0
    value = gauges.get(name)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if isinstance(value, list):
        total = 0.0
        for series in value:
            if isinstance(series, Mapping):
                v = series.get("value")
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    total += float(v)
        return total
    return 0.0


@dataclass
class _StatsReading:
    queued: float = 0.0
    p99: float | None = None
    hit_rate: float | None = None


class Autoscaler:
    """The observe → decide → act supervisor for one ring.

    Parameters
    ----------
    contacts:
        Daemon addresses asked for the current topology, in order; the
        first one that answers wins. Usually the seed members.
    pool:
        Spare daemon addresses the autoscaler may add to the ring —
        and the only ones it will ever remove. They must already be
        running (the autoscaler joins capacity, it does not provision
        machines).
    policy:
        Thresholds and bounds; ``None`` uses the defaults.
    client_factory:
        ``address -> RemoteShardClient``-shaped client builder
        (injectable for tests); defaults to
        :class:`~repro.service.cluster.RemoteShardClient`.
    clock:
        Monotonic-seconds source for the cooldown timer.
    """

    def __init__(
        self,
        contacts: Sequence[str],
        pool: Sequence[str] = (),
        policy: AutoscalePolicy | None = None,
        *,
        client_factory: Callable[[str], Any] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not contacts:
            raise ValueError("at least one contact address is required")
        self.contacts = list(contacts)
        self.pool = list(dict.fromkeys(pool))  # de-duplicated, order kept
        self.policy = policy or AutoscalePolicy()
        self._factory = client_factory or RemoteShardClient
        self._clock = clock
        self._last_action: float | None = None
        self._log = get_logger("repro.service.autoscale")
        #: History of (observation, decision) dicts, newest last —
        #: what ``bench_autoscale`` asserts against.
        self.history: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # observe
    # ------------------------------------------------------------------
    def _call(self, address: str, method: str, *args: Any) -> Any:
        """One client call with guaranteed close; raises ReproError."""
        client = self._factory(address)
        try:
            return getattr(client, method)(*args)
        finally:
            try:
                client.close()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass

    def _read_stats(self, address: str) -> _StatsReading | None:
        try:
            stats = self._call(address, "service_stats")
        except ReproError:
            return None
        if not isinstance(stats, Mapping):
            return None
        reading = _StatsReading()
        telemetry = stats.get("telemetry")
        if isinstance(telemetry, Mapping):
            reading.queued = _sum_gauge(telemetry.get("gauges"), "tenant_queue_depth")
            latency = telemetry.get("latency")
            if isinstance(latency, Mapping):
                execute = latency.get("pipeline.execute")
                if isinstance(execute, Mapping):
                    p99 = execute.get("p99_seconds")
                    if isinstance(p99, (int, float)) and not isinstance(p99, bool):
                        reading.p99 = float(p99)
        cache = stats.get("schedule_cache")
        if isinstance(cache, Mapping):
            rate = cache.get("hit_rate")
            if isinstance(rate, (int, float)) and not isinstance(rate, bool):
                reading.hit_rate = float(rate)
        return reading

    def observe(self) -> ClusterObservation:
        """Read the ring: topology from a contact, stats from every member.

        Raises
        ------
        ReproError
            When no contact answers ``topology_get`` at all — without a
            topology there is nothing to scale.
        """
        topo: Mapping[str, Any] | None = None
        errors: list[str] = []
        for address in self.contacts:
            try:
                topo = self._call(address, "topology_get")
                break
            except ReproError as exc:
                errors.append(f"{address}: {exc}")
        if topo is None:
            raise ReproError(
                "no contact node answered topology_get: " + "; ".join(errors)
            )
        epoch = int(topo.get("epoch", 0))
        members = tuple(sorted(str(m) for m in topo.get("members", [])))
        queued = 0.0
        p99: float | None = None
        rates: list[float] = []
        reachable: list[str] = []
        for member in members:
            reading = self._read_stats(member)
            if reading is None:
                continue
            reachable.append(member)
            queued += reading.queued
            if reading.p99 is not None and (p99 is None or reading.p99 > p99):
                p99 = reading.p99
            if reading.hit_rate is not None:
                rates.append(reading.hit_rate)
        return ClusterObservation(
            epoch=epoch,
            members=members,
            reachable=tuple(reachable),
            queued=queued,
            p99=p99,
            hit_rate=sum(rates) / len(rates) if rates else None,
        )

    # ------------------------------------------------------------------
    # decide
    # ------------------------------------------------------------------
    def _pressure(self, obs: ClusterObservation) -> str | None:
        """The first firing pressure signal, as a reason string."""
        policy = self.policy
        if obs.queued > policy.queue_high:
            return f"queued {obs.queued:.0f} > queue_high {policy.queue_high:.0f}"
        if (
            policy.p99_high is not None
            and obs.p99 is not None
            and obs.p99 > policy.p99_high
        ):
            return f"p99 {obs.p99:.4f}s > p99_high {policy.p99_high:.4f}s"
        if (
            policy.hit_rate_low is not None
            and obs.hit_rate is not None
            and obs.hit_rate < policy.hit_rate_low
        ):
            return (
                f"hit_rate {obs.hit_rate:.2f} < hit_rate_low "
                f"{policy.hit_rate_low:.2f}"
            )
        return None

    def decide(self, obs: ClusterObservation) -> AutoscaleDecision:
        """Map one observation to an action under the policy."""
        policy = self.policy
        if self._last_action is not None:
            elapsed = self._clock() - self._last_action
            if elapsed < policy.cooldown:
                return AutoscaleDecision(
                    "hold",
                    f"cooldown ({policy.cooldown - elapsed:.1f}s remaining)",
                )
        size = len(obs.members)
        pressure = self._pressure(obs)
        if pressure is not None:
            if size >= policy.max_nodes:
                return AutoscaleDecision(
                    "hold", f"{pressure}, but already at max_nodes {policy.max_nodes}"
                )
            spares = [n for n in self.pool if n not in obs.members]
            if not spares:
                return AutoscaleDecision("hold", f"{pressure}, but the pool is empty")
            return AutoscaleDecision("scale_up", pressure, node=spares[0])
        if obs.queued <= policy.queue_low and size > policy.min_nodes:
            # Only pool nodes may be returned; remove the most recently
            # added one (last in pool order) so the ring shrinks in
            # reverse join order.
            removable = [n for n in self.pool if n in obs.members]
            if removable:
                return AutoscaleDecision(
                    "scale_down",
                    f"queued {obs.queued:.0f} <= queue_low {policy.queue_low:.0f}",
                    node=removable[-1],
                )
        return AutoscaleDecision("hold", "within thresholds")

    # ------------------------------------------------------------------
    # act
    # ------------------------------------------------------------------
    def act(self, decision: AutoscaleDecision, obs: ClusterObservation) -> bool:
        """Push the decided membership change; True when fully applied.

        Mirrors the ``repro topology`` admin flow: on a join the
        newcomer is updated first (no CAS — abort if it is
        unreachable, so no live member ever routes keys to a dead
        address), then every existing member under an
        ``expected_epoch`` compare-and-set; on a leave the staying
        members first (CAS), the leaver last and best-effort. A lost
        CAS race means someone else changed the ring — the next
        observation sees their change, so it is logged, not raised.
        The cooldown timer starts on any attempt, win or lose.
        """
        if decision.action == "hold" or decision.node is None:
            return False
        self._last_action = self._clock()
        node = decision.node
        if decision.action == "scale_up":
            new_members = sorted(set(obs.members) | {node})
            push_order = [(node, False)] + [(m, True) for m in obs.members]
        else:
            new_members = sorted(set(obs.members) - {node})
            if not new_members:
                return False
            push_order = [(m, True) for m in new_members] + [(node, False)]
        doc = {"members": new_members, "epoch": obs.epoch + 1}
        applied = True
        for address, cas in push_order:
            update = {**doc, "expected_epoch": obs.epoch} if cas else doc
            try:
                self._call(address, "topology_update", update)
            except ReproError as exc:
                if decision.action == "scale_up" and address == node:
                    self._log.warning(
                        "autoscale aborted: joining node %s unreachable (%s)",
                        node,
                        exc,
                    )
                    return False
                if decision.action == "scale_down" and address == node:
                    continue  # the leaver may already be gone
                self._log.warning(
                    "autoscale update lost on %s (%s); deferring to next cycle",
                    address,
                    exc,
                )
                applied = False
        return applied

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def step(self) -> tuple[ClusterObservation, AutoscaleDecision]:
        """One observe → decide → act cycle; returns both halves."""
        obs = self.observe()
        decision = self.decide(obs)
        if decision.action != "hold":
            self.act(decision, obs)
        self.history.append(
            {"observation": obs.as_dict(), "decision": decision.as_dict()}
        )
        return obs, decision

    def run(
        self,
        interval: float = DEFAULT_AUTOSCALE_INTERVAL,
        *,
        iterations: int | None = None,
        stop: threading.Event | None = None,
    ) -> None:
        """Step every ``interval`` seconds until stopped.

        ``iterations`` bounds the number of steps (``None`` = forever);
        ``stop`` ends the loop early (and is what makes the sleep
        interruptible). An unreachable cluster logs and retries — the
        supervisor outliving a full outage is the point of having one.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        stop = stop or threading.Event()
        done = 0
        while iterations is None or done < iterations:
            try:
                obs, decision = self.step()
            except ReproError as exc:
                self._log.warning("autoscale step failed: %s", exc)
            else:
                if decision.action != "hold":
                    self._log.info(
                        "autoscale %s %s (%s) at epoch %s",
                        decision.action,
                        decision.node,
                        decision.reason,
                        obs.epoch,
                    )
            done += 1
            if iterations is not None and done >= iterations:
                break
            if stop.wait(interval):
                break
