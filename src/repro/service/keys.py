"""Canonical, collision-safe fingerprints for routing requests.

The service layer caches schedules across calls and processes, so cache
keys must be

* **structural** — two graphs with the same vertex set and edge set get
  the same key regardless of how they were built (``GridGraph(2, 3)``
  and ``Graph(6, <grid edges>)`` compare equal, so they must also hash
  equal here);
* **stable across process restarts** — no dependence on ``id()``,
  ``PYTHONHASHSEED`` or dict iteration order, because the disk tier of
  the cache outlives the process;
* **collision-safe** — keys are SHA-256 digests over an unambiguous,
  length-prefixed byte encoding, so distinct requests get distinct keys
  for every practical purpose.

Two related encodings live here:

* :func:`graph_fingerprint` / :func:`request_key` — the hashes;
* :func:`graph_spec` / :func:`graph_from_spec` — a small JSON-able
  description that *reconstructs* the graph in a worker process (the
  batch executor ships specs, not pickled objects, across the pool).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..errors import GraphError
from ..graphs.base import Graph
from ..graphs.grid import GridGraph
from ..perm.permutation import Permutation

__all__ = [
    "RequestKey",
    "graph_fingerprint",
    "graph_spec",
    "graph_from_spec",
    "permutation_fingerprint",
    "canonical_options",
    "request_key",
    "text_fingerprint",
]

#: Bump when the byte encoding changes; part of every digest so stale
#: on-disk cache entries from an older encoding can never be returned.
_KEY_VERSION = 1


def _h(*parts: bytes) -> str:
    """SHA-256 hex digest of length-prefixed parts (unambiguous concat)."""
    h = hashlib.sha256()
    h.update(f"repro.service.v{_KEY_VERSION}".encode())
    for p in parts:
        h.update(len(p).to_bytes(8, "little"))
        h.update(p)
    return h.hexdigest()


def graph_fingerprint(graph: Graph) -> str:
    """Structural digest of a coupling graph.

    Depends only on the vertex count and the canonical edge set —
    matching :meth:`repro.graphs.base.Graph.__eq__` — never on the
    concrete subclass, the ``name`` label, or construction order.

    Returns
    -------
    str
        A SHA-256 hex digest; equal graphs (in the structural sense
        above) always hash equal, across processes and restarts.
    """
    edges = np.asarray(graph.edges, dtype=np.int64).reshape(-1, 2)
    return _h(
        b"graph",
        graph.n_vertices.to_bytes(8, "little"),
        edges.tobytes(),
    )


def permutation_fingerprint(perm: Permutation) -> str:
    """Digest of a permutation's destination array.

    Returns
    -------
    str
        A SHA-256 hex digest over the little-endian int64 encoding of
        ``perm.targets`` — equal permutations hash equal regardless of
        how they were constructed.
    """
    return _h(b"perm", np.ascontiguousarray(perm.targets, dtype=np.int64).tobytes())


def text_fingerprint(text: str) -> str:
    """Digest of an arbitrary text payload (e.g. a QASM document).

    Returns
    -------
    str
        A SHA-256 hex digest of the UTF-8 bytes, domain-separated from
        the other fingerprint kinds so a QASM document can never
        collide with, say, a graph encoding.
    """
    return _h(b"text", text.encode("utf-8"))


def canonical_options(options: Mapping[str, Any] | None) -> str:
    """Options rendered as canonical JSON (sorted keys, no whitespace).

    The ``backend`` option (kernel-backend selection, see
    :mod:`repro.kernels`) is excluded from the encoding: every backend
    is contractually required to produce the identical schedule, so the
    choice must not split the cache.

    Raises
    ------
    TypeError
        If an option value is not JSON-serializable — unserializable
        options could not be fingerprinted deterministically.
    """
    if not options:
        return "{}"
    opts = {k: v for k, v in options.items() if k != "backend"}
    if not opts:
        return "{}"
    return json.dumps(opts, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RequestKey:
    """A routing request's identity: digest plus human-readable parts.

    ``digest`` alone decides cache equality; the remaining fields exist
    for logging and JSONL output.
    """

    digest: str
    graph: str
    perm: str
    router: str
    options: str

    @property
    def short(self) -> str:
        """First 12 hex chars — enough for logs, not for equality."""
        return self.digest[:12]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.short


def request_key(
    graph: Graph,
    perm: Permutation,
    router: str,
    options: Mapping[str, Any] | None = None,
) -> RequestKey:
    """Fingerprint a ``(graph, permutation, router, options)`` request.

    Parameters
    ----------
    graph, perm:
        The routing instance (hashed structurally — see
        :func:`graph_fingerprint` / :func:`permutation_fingerprint`).
    router:
        The router name; different routers cache separately.
    options:
        Router options, canonicalized by :func:`canonical_options` so
        key order cannot split the cache.

    Returns
    -------
    RequestKey
        The digest plus the human-readable component fingerprints.

    Raises
    ------
    TypeError
        If an option value is not JSON-serializable (it could not be
        fingerprinted deterministically).
    """
    g = graph_fingerprint(graph)
    p = permutation_fingerprint(perm)
    opts = canonical_options(options)
    digest = _h(
        b"request",
        g.encode(),
        p.encode(),
        router.encode("utf-8"),
        opts.encode("utf-8"),
    )
    return RequestKey(digest=digest, graph=g, perm=p, router=router, options=opts)


# ----------------------------------------------------------------------
# graph specs: reconstructible descriptions for worker processes
# ----------------------------------------------------------------------
def graph_spec(graph: Graph) -> dict[str, Any]:
    """A JSON-able description sufficient to rebuild ``graph``.

    Grid graphs are described by their shape (compact, and the rebuilt
    object keeps the grid's O(1) Manhattan metric); anything else falls
    back to the explicit edge list.
    """
    if isinstance(graph, GridGraph):
        return {"kind": "grid", "rows": graph.n_rows, "cols": graph.n_cols}
    return {
        "kind": "generic",
        "n_vertices": graph.n_vertices,
        "edges": [[u, v] for u, v in graph.edges],
        "name": graph.name,
    }


def graph_from_spec(spec: Mapping[str, Any]) -> Graph:
    """Rebuild a graph from :func:`graph_spec` output.

    Raises
    ------
    GraphError
        On an unknown or malformed spec.
    """
    try:
        kind = spec["kind"]
        if kind == "grid":
            return GridGraph(int(spec["rows"]), int(spec["cols"]))
        if kind == "generic":
            return Graph(
                int(spec["n_vertices"]),
                [(int(u), int(v)) for u, v in spec["edges"]],
                name=str(spec.get("name", "graph")),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph spec: {exc}") from exc
    raise GraphError(f"unknown graph spec kind {kind!r}")
