"""Structured logging for the service stack.

One stdlib ``logging`` hierarchy rooted at ``repro`` replaces the
daemon's ad-hoc stderr prints. :func:`configure_logging` (called by
``repro serve`` from ``--log-level`` / ``--log-json``) installs a
single stream handler; with ``--log-json`` every line is one JSON
object whose schema is stable for log shippers::

    {"ts": 1717..., "level": "INFO", "logger": "repro.service.daemon",
     "message": "...", "trace_id": "...", "span_id": "...", ...}

The ``trace_id`` / ``span_id`` correlation fields are filled from the
active trace (:mod:`repro.service.tracing`) at emit time — log lines
written inside a traced request link back to its span tree without any
caller cooperation. Extra fields passed via ``logger.info(...,
extra={...})`` are merged into the JSON object.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Any

__all__ = ["JsonFormatter", "configure_logging", "get_logger"]

#: Logger-record attributes that are stdlib plumbing, not user payload.
_RESERVED = frozenset(
    logging.LogRecord(
        "", 0, "", 0, "", None, None
    ).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: str = "repro.service") -> logging.Logger:
    """A logger in the ``repro`` hierarchy (dots make children)."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


class JsonFormatter(logging.Formatter):
    """Formats each record as one JSON object per line.

    Adds ``trace_id``/``span_id`` from the active trace context when the
    record does not already carry them, so logs emitted inside a traced
    request correlate with its spans.
    """

    def format(self, record: logging.LogRecord) -> str:
        doc: dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                doc[key] = value
        if "trace_id" not in doc:
            # Imported lazily: tracing imports telemetry and this module
            # must stay importable first.
            from .tracing import _CURRENT

            cur = _CURRENT.get()
            if cur is not None:
                state, sp = cur
                doc["trace_id"] = state.trace_id
                doc["span_id"] = sp.span_id
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(doc, default=str, separators=(",", ":"))


def configure_logging(
    level: str = "info",
    json_output: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install the service log handler on the ``repro`` root logger.

    Idempotent: a prior handler installed by this function is replaced,
    so re-invocation (tests, repeated ``serve``) never double-logs.
    Returns the configured root logger.

    Parameters
    ----------
    level:
        Case-insensitive stdlib level name (``"debug"``, ``"info"``,
        ``"warning"``, ``"error"``).
    json_output:
        Emit :class:`JsonFormatter` lines instead of human-readable text.
    stream:
        Destination (default ``sys.stderr``).

    Raises
    ------
    ValueError
        On an unknown level name.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_service_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_service_handler = True  # type: ignore[attr-defined]
    if json_output:
        handler.setFormatter(JsonFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"
        )
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root
