"""Long-lived routing daemon: newline-delimited JSON over a UNIX socket.

A cold ``repro batch`` invocation pays interpreter start-up, the scipy
import and process-pool spawn before it routes anything — fine for one
big batch, ruinous for many small ones. The daemon keeps an
:class:`~repro.service.aio.AsyncRoutingService` (worker pool + schedule
cache) warm across client invocations: start it once with ``repro
serve --socket PATH``, then point any number of ``repro batch --daemon
PATH`` runs (or raw socket clients) at it.

Wire protocol — one JSON object per line, one response line per
request, in order, per connection:

* ``{"op": "ping"}`` → ``{"ok": true, "op": "ping"}``
* ``{"op": "stats"}`` → ``{"ok": true, "op": "stats", "stats": {...}}``
* ``{"op": "route", "rows": 4, "cols": 4, "workload": "random",
  "seed": 0, "router": "local", "options": {...},
  "include_schedule": false, "timeout": 30.0}`` → the
  :func:`~repro.service.service.route_result_to_dict` document plus
  ``"op"``. ``op`` defaults to ``"route"``, so a ``repro batch``
  request file works verbatim as daemon input.
* ``{"op": "shutdown"}`` → ``{"ok": true, "op": "shutdown"}``, then
  the server drains in-flight connections and exits.

Any request may carry an ``"id"``; it is echoed on the response.
Malformed lines yield ``{"ok": false, "error": ...}`` — one bad client
never takes the daemon down. Connections are served concurrently;
within a connection, requests are answered in order (which is what
makes the pipelined :class:`DaemonClient` simple).

``serve_pipe`` speaks the same protocol over stdin/stdout for
socket-less environments (containers, subprocess supervision, tests).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import sys
import time
from collections import deque
from typing import Any, IO, Mapping, Sequence

from ..errors import ReproError
from ..graphs.grid import GridGraph
from ..perm.generators import make_workload
from ..perm.permutation import Permutation
from .aio import AsyncRoutingService
from .executor import RouteRequest
from .service import route_result_to_dict

__all__ = [
    "RoutingDaemon",
    "DaemonClient",
    "request_from_doc",
    "wait_for_socket",
]

#: Seconds the daemon waits for in-flight connections after a shutdown
#: request before force-closing them.
DRAIN_GRACE_SECONDS = 10.0

#: Maximum concurrently dispatched requests per connection; matches the
#: client's default pipelining window so one connection can saturate
#: the worker pool without unbounded in-flight state.
CONNECTION_WINDOW = 64


def request_from_doc(doc: Mapping[str, Any]) -> RouteRequest:
    """Build a :class:`RouteRequest` from a JSON request document.

    The document needs ``rows``/``cols`` plus either an explicit
    ``perm`` array or a ``workload`` name (with optional ``seed``), and
    optionally ``router`` / ``options`` — the same shape the ``repro
    batch`` request file uses.

    Raises
    ------
    ReproError
        On a malformed document (missing keys, bad grid, bad perm).
    """
    if not isinstance(doc, Mapping):
        raise ReproError("expected a JSON object")
    try:
        rows, cols = int(doc["rows"]), int(doc["cols"])
    except (KeyError, TypeError, ValueError):
        raise ReproError("'rows' and 'cols' integers required") from None
    grid = GridGraph(rows, cols)
    if "perm" in doc:
        perm = Permutation(doc["perm"])
    elif "workload" in doc:
        perm = make_workload(doc["workload"], grid, seed=doc.get("seed", 0))
    else:
        raise ReproError("needs 'perm' or 'workload'")
    options = doc.get("options", {})
    if not isinstance(options, Mapping):
        raise ReproError("'options' must be a JSON object")
    return RouteRequest(
        graph=grid,
        perm=perm,
        router=str(doc.get("router", "local")),
        options=dict(options),
    )


class RoutingDaemon:
    """Serve an :class:`AsyncRoutingService` over NDJSON transports.

    One daemon instance runs one ``serve_*`` call; the wrapped service
    (and its worker pool and caches) stays warm for the daemon's whole
    lifetime and is closed on exit via
    :meth:`AsyncRoutingService.aclose`.
    """

    def __init__(self, service: AsyncRoutingService) -> None:
        self.service = service
        self._stop: asyncio.Event | None = None
        self._active_connections = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_line(self, line: str | bytes) -> dict[str, Any]:
        """One request line -> one response document (never raises)."""
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("expected a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        op = doc.get("op", "route")
        try:
            if op == "ping":
                resp: dict[str, Any] = {"ok": True, "op": "ping"}
            elif op == "stats":
                resp = {"ok": True, "op": "stats", "stats": self.service.stats()}
            elif op == "shutdown":
                resp = {"ok": True, "op": "shutdown"}
            elif op == "route":
                resp = await self._route(doc)
            else:
                resp = {"ok": False, "error": f"unknown op {op!r}"}
        except ReproError as exc:
            resp = {"ok": False, "op": op, "error": str(exc)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - one bad request, one error line
            resp = {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}
        if "id" in doc:
            resp["id"] = doc["id"]
        return resp

    async def _route(self, doc: dict[str, Any]) -> dict[str, Any]:
        req = request_from_doc(doc)
        timeout = doc.get("timeout")
        result = await self.service.submit_async(
            req.graph,
            req.perm,
            router=req.router,
            timeout=float(timeout) if timeout is not None else None,
            **dict(req.options),
        )
        resp = route_result_to_dict(
            result, include_schedule=bool(doc.get("include_schedule"))
        )
        resp["op"] = "route"
        return resp

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------
    def _ensure_loop_state(self) -> asyncio.Event:
        if self._stop is None:
            self._stop = asyncio.Event()
        return self._stop

    def request_shutdown(self) -> None:
        """Ask the serve loop to drain and exit (signal-handler safe)."""
        if self._stop is not None:
            self._stop.set()

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: pipelined dispatch, responses in request order.

        Requests are dispatched as concurrent tasks the moment their
        line arrives (up to :data:`CONNECTION_WINDOW` in flight), so a
        single pipelined client — ``repro batch --daemon`` — actually
        exercises the worker pool instead of being serialized line by
        line. Responses are written strictly in request order, which is
        the protocol contract the client's pipelining relies on.

        The loop waits on three signals at once — the next line, the
        oldest in-flight response, the daemon stop event — so responses
        flush while the read is parked, idle connections exit promptly
        on shutdown, and accepted requests are always answered before
        the connection closes.
        """
        stop = self._ensure_loop_state()
        self._active_connections += 1
        self._writers.add(writer)
        pending: "deque[asyncio.Task[dict[str, Any]]]" = deque()
        line_task: "asyncio.Task[bytes] | None" = None
        stop_task = asyncio.ensure_future(stop.wait())
        eof = False
        try:
            while True:
                want_line = (
                    not eof
                    and not stop.is_set()
                    and len(pending) < CONNECTION_WINDOW
                )
                if want_line and line_task is None:
                    line_task = asyncio.ensure_future(reader.readline())
                waiters: set = {pending[0]} if pending else set()
                if line_task is not None:
                    waiters.add(line_task)
                if not stop.is_set():
                    # Once stop fires its task is permanently done and
                    # would turn this wait into a busy-spin; from then
                    # on we only wait on real work (drain).
                    waiters.add(stop_task)
                if not waiters:
                    break
                await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)

                # Flush every completed head-of-line response.
                while pending and pending[0].done():
                    resp = await pending.popleft()
                    writer.write((json.dumps(resp) + "\n").encode("utf-8"))
                    await writer.drain()
                    if resp.get("op") == "shutdown" and resp.get("ok"):
                        stop.set()

                # Ingest a completed read.
                if line_task is not None and line_task.done():
                    line = line_task.result()
                    line_task = None
                    if not line:
                        eof = True
                    elif line.strip():
                        pending.append(
                            asyncio.ensure_future(self._dispatch_line(line))
                        )

                if stop.is_set() or eof:
                    if line_task is not None:
                        line_task.cancel()
                        with contextlib.suppress(asyncio.CancelledError):
                            await line_task
                        line_task = None
                    if not pending:
                        break
                    # else: keep looping to answer accepted requests.
        except (OSError, ValueError):
            pass  # client went away mid-request, or sent an overlong line
        finally:
            stop_task.cancel()
            if line_task is not None:
                line_task.cancel()
            for task in pending:
                task.cancel()
            self._active_connections -= 1
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def serve_unix(self, path: str | os.PathLike) -> None:
        """Listen on a UNIX socket until a shutdown request or signal.

        A *stale* socket file at ``path`` (nothing listening) is
        removed first; a *live* one raises
        :class:`~repro.errors.ReproError` instead of silently hijacking
        a running daemon's address. On shutdown the server stops
        accepting, waits up to :data:`DRAIN_GRACE_SECONDS` for
        in-flight connections, then force-closes stragglers, removes
        the socket file and closes the service.

        Raises
        ------
        ReproError
            If another daemon is already listening on ``path``.
        """
        path = os.fspath(path)
        stop = self._ensure_loop_state()
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(1.0)
                probe.connect(path)
            except OSError:
                # Nothing answering: a stale file from a dead daemon.
                with contextlib.suppress(OSError):
                    os.unlink(path)
            else:
                raise ReproError(f"a daemon is already listening on {path}")
            finally:
                probe.close()
        # 1 MiB line limit: room for explicit perms on very large grids.
        server = await asyncio.start_unix_server(
            self._handle_conn, path=path, limit=2**20
        )
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        try:
            await stop.wait()
        finally:
            for sig in installed:
                with contextlib.suppress(Exception):
                    loop.remove_signal_handler(sig)
            server.close()
            await server.wait_closed()
            await self._drain()
            with contextlib.suppress(OSError):
                os.unlink(path)
            await self.service.aclose()

    async def serve_pipe(
        self,
        in_stream: IO[str] | None = None,
        out_stream: IO[str] | None = None,
    ) -> None:
        """Serve the protocol over text streams (default stdin/stdout).

        EOF on the input stream is treated as a shutdown request, so
        supervising processes can stop the daemon by closing its stdin.
        """
        in_stream = in_stream if in_stream is not None else sys.stdin
        out_stream = out_stream if out_stream is not None else sys.stdout
        stop = self._ensure_loop_state()
        loop = asyncio.get_running_loop()
        try:
            while not stop.is_set():
                line = await loop.run_in_executor(None, in_stream.readline)
                if not line:
                    break
                if not line.strip():
                    continue
                resp = await self._dispatch_line(line)
                out_stream.write(json.dumps(resp) + "\n")
                out_stream.flush()
                if resp.get("op") == "shutdown" and resp.get("ok"):
                    break
        finally:
            await self.service.aclose()

    async def _drain(self) -> None:
        """Wait for in-flight connections, then force-close stragglers."""
        deadline = time.monotonic() + DRAIN_GRACE_SECONDS
        while self._active_connections > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
def wait_for_socket(path: str | os.PathLike, timeout: float = 10.0) -> None:
    """Block until a daemon accepts connections on ``path``.

    Raises
    ------
    ReproError
        If nothing is listening before ``timeout`` elapses.
    """
    path = os.fspath(path)
    deadline = time.monotonic() + timeout
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(1.0)
            sock.connect(path)
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"no daemon listening on {path} after {timeout}s"
                ) from None
            time.sleep(0.05)
        finally:
            sock.close()


class DaemonClient:
    """Synchronous, pipelined client for the daemon's socket protocol.

    >>> client = DaemonClient("/tmp/repro.sock")   # doctest: +SKIP
    >>> client.ping()                              # doctest: +SKIP
    True

    Responses on one connection arrive in request order, so
    :meth:`route_batch` pipelines a window of requests ahead of the
    reads instead of paying a round-trip per request.
    """

    def __init__(self, socket_path: str | os.PathLike, timeout: float = 300.0) -> None:
        self.socket_path = os.fspath(socket_path)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file: Any = None

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ReproError(
                f"cannot connect to daemon at {self.socket_path}: {exc}"
            ) from exc
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _send(self, doc: Mapping[str, Any]) -> None:
        self._ensure_connected()
        self._file.write((json.dumps(dict(doc)) + "\n").encode("utf-8"))

    def _recv(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ReproError("daemon closed the connection")
        resp = json.loads(line)
        if not isinstance(resp, dict):
            raise ReproError(f"malformed daemon response: {resp!r}")
        return resp

    def request(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """One request, one response."""
        self._send(doc)
        self._file.flush()
        return self._recv()

    def ping(self) -> bool:
        """Whether the daemon answers."""
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict[str, Any]:
        """The daemon's :meth:`RoutingService.stats` document."""
        resp = self.request({"op": "stats"})
        if not resp.get("ok"):
            raise ReproError(f"stats failed: {resp.get('error')}")
        return resp["stats"]

    def shutdown(self) -> bool:
        """Request a graceful daemon shutdown."""
        return bool(self.request({"op": "shutdown"}).get("ok"))

    def route(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Route one request document (see :func:`request_from_doc`)."""
        return self.request({**dict(doc), "op": "route"})

    def route_batch(
        self, docs: Sequence[Mapping[str, Any]], window: int = CONNECTION_WINDOW
    ) -> list[dict[str, Any]]:
        """Route many documents, pipelining up to ``window`` in flight.

        The window bounds the number of unread responses buffered in
        the socket, which keeps a huge batch from deadlocking both
        sides on full kernel buffers — valid only up to the server's
        :data:`CONNECTION_WINDOW`, so larger requests are clamped.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        window = min(window, CONNECTION_WINDOW)
        responses: list[dict[str, Any]] = []
        sent = 0
        while len(responses) < len(docs):
            while sent < len(docs) and sent - len(responses) < window:
                self._send({**dict(docs[sent]), "op": "route"})
                sent += 1
            self._file.flush()
            responses.append(self._recv())
        return responses

    def close(self) -> None:
        """Close the connection (the daemon keeps running)."""
        if self._file is not None:
            with contextlib.suppress(Exception):
                self._file.close()
            self._file = None
        if self._sock is not None:
            with contextlib.suppress(Exception):
                self._sock.close()
            self._sock = None

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
