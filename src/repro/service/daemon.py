"""Long-lived routing daemon: newline-delimited JSON over a UNIX socket.

A cold ``repro batch`` invocation pays interpreter start-up, the scipy
import and process-pool spawn before it routes anything — fine for one
big batch, ruinous for many small ones. The daemon keeps an
:class:`~repro.service.aio.AsyncRoutingService` (worker pool + schedule
cache) warm across client invocations: start it once with ``repro
serve --socket PATH``, then point any number of ``repro batch --daemon
PATH`` runs (or raw socket clients) at it.

Wire protocol — one JSON object per line, one response line per
request, in order, per connection:

* ``{"op": "ping"}`` → ``{"ok": true, "op": "ping"}``
* ``{"op": "stats"}`` → ``{"ok": true, "op": "stats", "stats": {...}}``
* ``{"op": "route", "rows": 4, "cols": 4, "workload": "random",
  "seed": 0, "router": "local", "options": {...},
  "include_schedule": false, "timeout": 30.0}`` → the
  :func:`~repro.service.service.route_result_to_dict` document plus
  ``"op"``. ``op`` defaults to ``"route"``, so a ``repro batch``
  request file works verbatim as daemon input.
* ``{"op": "cache_get", "digest": "..."}`` /
  ``{"op": "cache_put", "digest": "...", "schedule": {...}, "cost": 0.1}``
  / ``{"op": "cache_stats"}`` → the remote-shard cache protocol that
  :mod:`repro.service.cluster` peers speak, served from the **local**
  cache tier only (see :class:`~repro.service.handler.RequestHandler`).
* ``{"op": "topology_get"}`` / ``{"op": "topology_update", ...}`` →
  read / change the daemon's epoch-versioned cluster membership at
  runtime (join, leave, replace; epoch compare-and-set). SIGHUP asks
  the daemon to re-read its ``--topology-file`` when one is configured
  (the ``on_reload`` hook).
* ``{"op": "shutdown"}`` → ``{"ok": true, "op": "shutdown"}``, then
  the server drains in-flight connections and exits.

Any request may carry an ``"id"``; it is echoed on the response.
Malformed lines yield ``{"ok": false, "error": ...}`` — one bad client
never takes the daemon down. Connections are served concurrently;
within a connection, requests are answered in order (which is what
makes the pipelined :class:`DaemonClient` simple).

``serve_pipe`` speaks the same protocol over stdin/stdout for
socket-less environments (containers, subprocess supervision, tests);
it installs the same signal handlers as the socket transport, so
SIGTERM lets an in-flight request finish and be answered before the
process exits.

This module is *pure framing*: it reads lines and writes lines. Op
dispatch, tenancy, admission control and error mapping all live in the
shared :class:`~repro.service.pipeline.RequestPipeline`, which the
HTTP front end (:mod:`repro.service.http`) drives too — one request
lifecycle, two framings.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import sys
import time
from collections import deque
from typing import Any, Callable, IO, Mapping, Sequence

from ..errors import DaemonDisconnectedError, ReproError
from .aio import AsyncRoutingService
from .handler import request_from_doc
from .logging import get_logger
from .pipeline import RequestPipeline

_log = get_logger("repro.service.daemon")

__all__ = [
    "RoutingDaemon",
    "DaemonClient",
    "request_from_doc",
    "wait_for_socket",
]

#: Seconds the daemon waits for in-flight connections after a shutdown
#: request before force-closing them.
DRAIN_GRACE_SECONDS = 10.0

#: Maximum concurrently dispatched requests per connection; matches the
#: client's default pipelining window so one connection can saturate
#: the worker pool without unbounded in-flight state.
CONNECTION_WINDOW = 64

#: Seconds a starting daemon waits for the socket bind lock before
#: giving up (another daemon is mid-start on the same path, or a stale
#: lock file with an unreadable pid is in the way).
SOCKET_LOCK_TIMEOUT = 5.0


def _lock_is_stale(lock_path: str) -> bool:
    """Whether a bind-lock file was left behind by a dead daemon.

    The lock records its creator's pid; a pid that no longer exists
    means the holder crashed between locking and unlocking. Unreadable
    or mid-write (empty) files are treated as live — the waiter keeps
    polling until its timeout rather than breaking a lock it cannot
    attribute.
    """
    try:
        with open(lock_path, "r", encoding="ascii") as fh:
            pid = int(fh.read().strip())
    except (OSError, ValueError):
        return False
    if pid <= 0:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except OSError:
        return False  # e.g. PermissionError: alive, owned by someone else
    return False


@contextlib.contextmanager
def _socket_bind_lock(path: str, timeout: float | None = None):
    """Serialize the probe → unlink → bind sequence across daemons.

    Two daemons starting concurrently on the same path can both probe a
    stale socket file, both ``os.unlink`` it, and the later unlink
    silently removes the earlier daemon's *freshly bound* socket
    (TOCTOU). An ``O_CREAT|O_EXCL`` lock file next to the socket makes
    the whole sequence mutually exclusive; a lock abandoned by a
    crashed daemon is broken once its recorded pid is dead.

    Raises
    ------
    ReproError
        If the lock cannot be acquired before ``timeout``
        (:data:`SOCKET_LOCK_TIMEOUT` by default) elapses.
    """
    if timeout is None:
        timeout = SOCKET_LOCK_TIMEOUT
    lock_path = path + ".lock"
    deadline = time.monotonic() + timeout
    delay = 0.002
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            break
        except FileExistsError:
            if _lock_is_stale(lock_path):
                try:
                    os.unlink(lock_path)
                    continue  # broke the stale lock; retry immediately
                except OSError:
                    pass  # cannot remove it: fall through to the timed wait
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"timed out waiting for socket lock {lock_path}; another "
                    "daemon is starting on this path (delete the lock file "
                    "if its owner is gone)"
                ) from None
            time.sleep(delay)
            delay = min(delay * 2, 0.1)
    try:
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        yield
    finally:
        with contextlib.suppress(OSError):
            os.unlink(lock_path)


def install_signal_handlers(
    loop: "asyncio.AbstractEventLoop",
    stop: Callable[[], None],
    on_reload: Callable[[], None] | None = None,
) -> list[signal.Signals]:
    """Install the serve-loop signal handlers; returns what was installed.

    SIGTERM and SIGINT trigger ``stop`` (graceful drain); SIGHUP — when
    the platform has it and ``on_reload`` is given — triggers the
    reload hook (topology-file re-read). Shared by the NDJSON daemon
    and the HTTP server so the two serve loops cannot drift. Signals
    that cannot be installed (non-main thread, unsupported platform)
    are skipped silently; pass the returned list to
    :func:`remove_signal_handlers` on the way out.
    """
    handlers: list[tuple[signal.Signals, Callable[[], None]]] = [
        (signal.SIGTERM, stop),
        (signal.SIGINT, stop),
    ]
    if on_reload is not None and hasattr(signal, "SIGHUP"):
        handlers.append((signal.SIGHUP, on_reload))
    installed: list[signal.Signals] = []
    for sig, handler in handlers:
        try:
            loop.add_signal_handler(sig, handler)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or unsupported platform
    return installed


def remove_signal_handlers(
    loop: "asyncio.AbstractEventLoop", installed: Sequence[signal.Signals]
) -> None:
    """Remove handlers previously added by :func:`install_signal_handlers`."""
    for sig in installed:
        with contextlib.suppress(Exception):
            loop.remove_signal_handler(sig)


class RoutingDaemon:
    """Serve an :class:`AsyncRoutingService` over NDJSON transports.

    One daemon instance runs one ``serve_*`` call; the wrapped service
    (and its worker pool and caches) stays warm for the daemon's whole
    lifetime and is closed on exit via
    :meth:`AsyncRoutingService.aclose`.

    ``on_reload`` (when given) is installed as the SIGHUP handler for
    the serve loop's lifetime — the runtime-reconfiguration hook the
    CLI wires to :meth:`TopologyFileWatcher.reload_now` so operators
    can force a topology re-read with ``kill -HUP``.
    """

    def __init__(
        self,
        service: AsyncRoutingService,
        on_reload: Callable[[], None] | None = None,
    ) -> None:
        self.service = service
        self.pipeline = RequestPipeline(service)
        self.on_reload = on_reload
        self._stop: asyncio.Event | None = None
        self._active_connections = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_line(self, line: str | bytes) -> dict[str, Any]:
        """One request line -> one response document (never raises).

        Delegates to the shared transport-agnostic
        :class:`~repro.service.pipeline.RequestPipeline`, which the
        HTTP front end (:mod:`repro.service.http`) drives too — one
        request lifecycle, two framings.
        """
        return await self.pipeline.process_line(line)

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------
    def _ensure_loop_state(self) -> asyncio.Event:
        if self._stop is None:
            self._stop = asyncio.Event()
        return self._stop

    def request_shutdown(self) -> None:
        """Ask the serve loop to drain and exit (signal-handler safe)."""
        if self._stop is not None:
            self._stop.set()

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: pipelined dispatch, responses in request order.

        Requests are dispatched as concurrent tasks the moment their
        line arrives (up to :data:`CONNECTION_WINDOW` in flight), so a
        single pipelined client — ``repro batch --daemon`` — actually
        exercises the worker pool instead of being serialized line by
        line. Responses are written strictly in request order, which is
        the protocol contract the client's pipelining relies on.

        The loop waits on three signals at once — the next line, the
        oldest in-flight response, the daemon stop event — so responses
        flush while the read is parked, idle connections exit promptly
        on shutdown, and accepted requests are always answered before
        the connection closes.
        """
        stop = self._ensure_loop_state()
        self._active_connections += 1
        self._writers.add(writer)
        pending: "deque[asyncio.Task[dict[str, Any]]]" = deque()
        line_task: "asyncio.Task[bytes] | None" = None
        stop_task = asyncio.ensure_future(stop.wait())
        eof = False
        try:
            while True:
                want_line = (
                    not eof
                    and not stop.is_set()
                    and len(pending) < CONNECTION_WINDOW
                )
                if want_line and line_task is None:
                    line_task = asyncio.ensure_future(reader.readline())
                waiters: set = {pending[0]} if pending else set()
                if line_task is not None:
                    waiters.add(line_task)
                if not stop.is_set():
                    # Once stop fires its task is permanently done and
                    # would turn this wait into a busy-spin; from then
                    # on we only wait on real work (drain).
                    waiters.add(stop_task)
                if not waiters:
                    break
                await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)

                # Flush every completed head-of-line response.
                while pending and pending[0].done():
                    resp = await pending.popleft()
                    writer.write((json.dumps(resp) + "\n").encode("utf-8"))
                    await writer.drain()
                    if resp.get("op") == "shutdown" and resp.get("ok"):
                        stop.set()

                # Ingest a completed read.
                if line_task is not None and line_task.done():
                    line = line_task.result()
                    line_task = None
                    if not line:
                        eof = True
                    elif line.strip():
                        pending.append(
                            asyncio.ensure_future(self._dispatch_line(line))
                        )

                if stop.is_set() or eof:
                    if line_task is not None:
                        line_task.cancel()
                        with contextlib.suppress(asyncio.CancelledError):
                            await line_task
                        line_task = None
                    if not pending:
                        break
                    # else: keep looping to answer accepted requests.
        except (OSError, ValueError) as exc:
            # Client went away mid-request, or sent an overlong line.
            _log.debug(
                "connection dropped: %s", exc, extra={"error_type": type(exc).__name__}
            )
        finally:
            stop_task.cancel()
            if line_task is not None:
                line_task.cancel()
            for task in pending:
                task.cancel()
            self._active_connections -= 1
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def serve_unix(self, path: str | os.PathLike) -> None:
        """Listen on a UNIX socket until a shutdown request or signal.

        A *stale* socket file at ``path`` (nothing listening) is
        removed first; a *live* one raises
        :class:`~repro.errors.ReproError` instead of silently hijacking
        a running daemon's address. The probe → unlink → bind sequence
        runs under an ``O_CREAT|O_EXCL`` lock file (``<path>.lock``) so
        two daemons racing the same path cannot both remove the stale
        file and silently steal each other's fresh bind. On shutdown
        the server stops
        accepting, waits up to :data:`DRAIN_GRACE_SECONDS` for
        in-flight connections, then force-closes stragglers, removes
        the socket file and closes the service.

        Raises
        ------
        ReproError
            If another daemon is already listening on ``path``, or the
            bind lock cannot be acquired.
        """
        path = os.fspath(path)
        stop = self._ensure_loop_state()
        with _socket_bind_lock(path):
            if os.path.exists(path):
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    probe.settimeout(1.0)
                    probe.connect(path)
                except OSError:
                    # Nothing answering: a stale file from a dead daemon.
                    with contextlib.suppress(OSError):
                        os.unlink(path)
                else:
                    raise ReproError(f"a daemon is already listening on {path}")
                finally:
                    probe.close()
            # 1 MiB line limit: room for explicit perms on very large grids.
            server = await asyncio.start_unix_server(
                self._handle_conn, path=path, limit=2**20
            )
        loop = asyncio.get_running_loop()
        installed = install_signal_handlers(loop, stop.set, self.on_reload)
        _log.info("daemon listening", extra={"socket": path})
        try:
            await stop.wait()
        finally:
            remove_signal_handlers(loop, installed)
            server.close()
            await server.wait_closed()
            await self._drain()
            with contextlib.suppress(OSError):
                os.unlink(path)
            await self.service.aclose()
            _log.info("daemon stopped", extra={"socket": path})

    async def serve_pipe(
        self,
        in_stream: IO[str] | None = None,
        out_stream: IO[str] | None = None,
    ) -> None:
        """Serve the protocol over text streams (default stdin/stdout).

        EOF on the input stream is treated as a shutdown request, so
        supervising processes can stop the daemon by closing its stdin.
        SIGTERM/SIGINT go through the same shutdown hook as
        :meth:`serve_unix` (and SIGHUP through the same ``on_reload``
        hook): a signal arriving while a request is being dispatched
        lets that request finish and its response line flush before the
        loop exits and the service closes — supervisors never lose an
        answered-but-unwritten response.
        """
        in_stream = in_stream if in_stream is not None else sys.stdin
        out_stream = out_stream if out_stream is not None else sys.stdout
        stop = self._ensure_loop_state()
        loop = asyncio.get_running_loop()
        installed = install_signal_handlers(loop, stop.set, self.on_reload)
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            while not stop.is_set():
                line_task = loop.run_in_executor(None, in_stream.readline)
                await asyncio.wait(
                    {line_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
                )
                if not line_task.done():
                    # Stop fired while parked on the read: nothing is
                    # in flight. The blocking readline cannot be
                    # cancelled; the executor thread is abandoned to
                    # die with the process.
                    break
                line = line_task.result()
                if not line:
                    break
                if not line.strip():
                    continue
                resp = await self._dispatch_line(line)
                out_stream.write(json.dumps(resp) + "\n")
                out_stream.flush()
                if resp.get("op") == "shutdown" and resp.get("ok"):
                    break
        finally:
            stop_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await stop_task
            remove_signal_handlers(loop, installed)
            await self.service.aclose()

    async def _drain(self) -> None:
        """Wait for in-flight connections, then force-close stragglers."""
        deadline = time.monotonic() + DRAIN_GRACE_SECONDS
        while self._active_connections > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
def poll_with_backoff(
    probe: Callable[[], bool], timeout: float, describe: str, cap: float = 0.5
) -> None:
    """Run ``probe`` with exponential backoff until truthy or timeout.

    One implementation of the wait-for-a-server loop, shared by
    :func:`wait_for_socket` and
    :func:`~repro.service.http.wait_for_http`: 2 ms doubling to
    ``cap``, clamped to the remaining budget, so a fast server start is
    noticed in milliseconds while a slow one is not hammered.

    Raises
    ------
    ReproError
        If ``probe`` never returns truthy before ``timeout`` elapses;
        the message leads with ``describe`` and names the elapsed wait.
    """
    t0 = time.monotonic()
    deadline = t0 + timeout
    delay = 0.002
    while True:
        if probe():
            return
        now = time.monotonic()
        if now >= deadline:
            raise ReproError(
                f"{describe} after {now - t0:.1f}s (timeout {timeout}s)"
            )
        time.sleep(min(delay, max(deadline - now, 0.0)))
        delay = min(delay * 2, cap)


def wait_for_socket(path: str | os.PathLike, timeout: float = 10.0) -> None:
    """Block until a daemon accepts connections on ``path``.

    Raises
    ------
    ReproError
        If nothing is listening before ``timeout`` elapses; the message
        names the path and the elapsed wait.
    """
    path = os.fspath(path)

    def probe() -> bool:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(1.0)
            sock.connect(path)
            return True
        except OSError:
            return False
        finally:
            sock.close()

    poll_with_backoff(probe, timeout, f"no daemon listening on {path}")


class DaemonClient:
    """Synchronous, pipelined client for the daemon's socket protocol.

    >>> client = DaemonClient("/tmp/repro.sock")   # doctest: +SKIP
    >>> client.ping()                              # doctest: +SKIP
    True

    Responses on one connection arrive in request order, so
    :meth:`route_batch` pipelines a window of requests ahead of the
    reads instead of paying a round-trip per request.

    A connection that dies mid-request (daemon killed, socket reset)
    raises :class:`~repro.errors.DaemonDisconnectedError` and marks the
    client disconnected, so the *next* call transparently reconnects
    instead of writing into a dead socket forever.
    """

    def __init__(self, socket_path: str | os.PathLike, timeout: float = 300.0) -> None:
        self.socket_path = os.fspath(socket_path)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file: Any = None

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ReproError(
                f"cannot connect to daemon at {self.socket_path}: {exc}"
            ) from exc
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _disconnected(self, detail: str) -> DaemonDisconnectedError:
        """Drop the dead connection; the next call will reconnect."""
        self.close()
        return DaemonDisconnectedError(
            f"daemon at {self.socket_path} {detail}; the connection has "
            "been dropped and the next request will reconnect"
        )

    def _send(self, doc: Mapping[str, Any]) -> None:
        self._ensure_connected()
        try:
            self._file.write((json.dumps(dict(doc)) + "\n").encode("utf-8"))
        except OSError as exc:
            raise self._disconnected(f"went away mid-send ({exc})") from exc

    def _flush(self) -> None:
        try:
            self._file.flush()
        except OSError as exc:
            raise self._disconnected(f"went away mid-send ({exc})") from exc

    def _recv(self) -> dict[str, Any]:
        try:
            line = self._file.readline()
        except OSError as exc:
            raise self._disconnected(f"died mid-request ({exc})") from exc
        if not line:
            # Half-open connection: the daemon died (or force-closed us)
            # between our send and its response.
            raise self._disconnected("closed the connection mid-request")
        resp = json.loads(line)
        if not isinstance(resp, dict):
            raise ReproError(f"malformed daemon response: {resp!r}")
        return resp

    def request(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """One request, one response."""
        self._send(doc)
        self._flush()
        return self._recv()

    def ping(self) -> bool:
        """Whether the daemon answers."""
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict[str, Any]:
        """The daemon's :meth:`RoutingService.stats` document."""
        resp = self.request({"op": "stats"})
        if not resp.get("ok"):
            raise ReproError(f"stats failed: {resp.get('error')}")
        return resp["stats"]

    def shutdown(self) -> bool:
        """Request a graceful daemon shutdown."""
        return bool(self.request({"op": "shutdown"}).get("ok"))

    def route(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Route one request document (see :func:`request_from_doc`)."""
        return self.request({**dict(doc), "op": "route"})

    def trace_get(
        self,
        trace_id: str | None = None,
        limit: int | None = None,
        min_seconds: float | None = None,
    ) -> list[dict[str, Any]]:
        """Fetch finished trace documents from the daemon's trace ring.

        Same semantics as the ``trace_get`` op (see
        :meth:`~repro.service.handler.RequestHandler.trace_get_doc`).

        Raises
        ------
        ReproError
            When the daemon refuses (e.g. tracing disabled).
        """
        doc: dict[str, Any] = {"op": "trace_get"}
        if trace_id is not None:
            doc["trace_id"] = trace_id
        if limit is not None:
            doc["limit"] = int(limit)
        if min_seconds is not None:
            doc["min_seconds"] = float(min_seconds)
        resp = self.request(doc)
        if not resp.get("ok"):
            raise ReproError(f"trace_get failed: {resp.get('error')}")
        traces = resp.get("traces")
        return list(traces) if isinstance(traces, list) else []

    def route_batch(
        self, docs: Sequence[Mapping[str, Any]], window: int = CONNECTION_WINDOW
    ) -> list[dict[str, Any]]:
        """Route many documents, pipelining up to ``window`` in flight.

        The window bounds the number of unread responses buffered in
        the socket, which keeps a huge batch from deadlocking both
        sides on full kernel buffers — valid only up to the server's
        :data:`CONNECTION_WINDOW`, so larger requests are clamped.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        window = min(window, CONNECTION_WINDOW)
        responses: list[dict[str, Any]] = []
        sent = 0
        while len(responses) < len(docs):
            while sent < len(docs) and sent - len(responses) < window:
                self._send({**dict(docs[sent]), "op": "route"})
                sent += 1
            self._flush()
            responses.append(self._recv())
        return responses

    def close(self) -> None:
        """Close the connection (the daemon keeps running)."""
        if self._file is not None:
            with contextlib.suppress(Exception):
                self._file.close()
            self._file = None
        if self._sock is not None:
            with contextlib.suppress(Exception):
                self._sock.close()
            self._sock = None

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
