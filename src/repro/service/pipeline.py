"""The transport-agnostic request-lifecycle pipeline.

Every request that reaches the service — over the NDJSON daemon
(:mod:`repro.service.daemon`), the HTTP facade
(:mod:`repro.service.http`), or a direct
:meth:`~repro.service.handler.RequestHandler.dispatch` call — runs the
same ordered stages, implemented exactly once here:

``decode → authenticate → admit → enqueue → execute → encode``

* **decode** — bytes to a request document (the transport does the
  framing; the pipeline records the timing as a ``pipeline.decode``
  span and stage metric so decode cost is visible per trace).
* **authenticate** — API key to :class:`~repro.service.tenancy.Tenant`
  via the :class:`~repro.service.tenancy.TenantRegistry`. Work ops
  only; introspection and the cluster peer protocol run as the system
  tenant so health probes and peers are never locked out.
* **admit** — load shedding and rate limiting: the global and
  per-tenant queue-depth bounds and the tenant's token bucket, all
  charged in :func:`~repro.service.tenancy.estimate_cost` units. A
  refusal is the stable ``rate_limited`` code (HTTP 429 with
  ``Retry-After``); batches are admitted all-or-nothing.
* **enqueue** — the wait for a weighted-fair scheduler slot, emitted by
  :class:`~repro.service.tenancy.FairScheduler` as the
  ``pipeline.enqueue`` span while the execute stage runs the op.
* **execute** — the op dispatch itself (previously duplicated between
  the two transports), with the tenant bound into the execution
  context so the async facade schedules it fairly.
* **encode** — outcome accounting (``tenant_requests`` labeled
  counters, the registry's per-tenant outcome counts), trace-id echo
  and error finalization.

Each stage emits a trace span named ``pipeline.<stage>`` and a latency
histogram under the same name; the root span keeps the historical
``handler.<op>`` name so existing trace tooling and dashboards keep
working. :meth:`RequestPipeline.process_http` additionally owns the
HTTP endpoint table (URL → op document), so neither transport contains
any op dispatch or error mapping — ``daemon.py`` and ``http.py`` are
pure framing, which CI lint-guards.

Stable error codes added by the pipeline on top of the handler's table:
``unauthorized`` (HTTP 401 — no or unknown API key while tenancy is
enforced) and ``rate_limited`` (HTTP 429 + ``Retry-After`` — throttled
or shed by admission control).
"""

from __future__ import annotations

import asyncio
import json
import math
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import AuthenticationError, RateLimitedError, ReproError
from .aio import AsyncRoutingService
from .handler import TRACED_OPS, RequestHandler, error_doc
from .logging import get_logger
from .tenancy import SYSTEM_TENANT, Tenant, bind_tenant, estimate_doc_cost
from .tracing import record_stage_spans, span, start_trace

__all__ = [
    "HttpResponse",
    "RequestPipeline",
    "WORK_OPS",
    "framing_error",
    "status_for",
]

_log = get_logger("repro.service.pipeline")

#: Ops that do tenant-billable compute and therefore pass the
#: authenticate and admit stages. Everything else (introspection, the
#: cluster cache/topology protocol, ``trace_get``) executes as the
#: system tenant, exempt from admission, so peers and probes keep
#: working keyless.
WORK_OPS = frozenset({"route", "transpile", "route_batch", "transpile_batch"})

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"


def status_for(resp: Mapping[str, Any]) -> int:
    """HTTP status for a pipeline response document.

    Validation failures are client errors; per-request routing/timeout
    failures are *results* (the request was processed) and stay 200,
    matching the batch error-isolation contract. ``unauthorized`` maps
    to 401 and ``rate_limited`` to 429 (pair it with a ``Retry-After``
    header — :meth:`RequestPipeline.process_http` does).
    """
    if resp.get("ok"):
        return 200
    code = resp.get("code")
    if code in ("bad_json", "bad_request", "unknown_op"):
        return 400
    if code == "unauthorized":
        return 401
    if code == "stale_epoch":
        return 409
    if code == "rate_limited":
        return 429
    if code == "internal":
        return 500
    return 200


def framing_error(code: str, message: str) -> dict[str, Any]:
    """An ``"ok": false`` payload for transport-level (framing) failures.

    The one error-document constructor the transports may call —
    protocol-level refusals (``bad_http``, ``length_required``,
    ``payload_too_large``) happen before a request document exists, so
    they cannot go through :meth:`RequestPipeline.process`.
    """
    return error_doc(code, message)


@dataclass(frozen=True)
class HttpResponse:
    """One HTTP answer from :meth:`RequestPipeline.process_http`.

    The transport writes exactly this — status line, extra headers,
    serialized payload — plus its own framing (``Content-Length``,
    ``Connection``). ``payload`` is a JSON-ready object or a
    pre-rendered string (the Prometheus exposition).
    """

    #: HTTP status code.
    status: int
    #: JSON-ready dict/list, or a pre-rendered text body.
    payload: Any
    #: ``Content-Type`` of the payload.
    content_type: str = _JSON
    #: Extra response headers, e.g. ``Retry-After`` on 429.
    headers: tuple[tuple[str, str], ...] = field(default=())


class RequestPipeline:
    """The one place a request's lifecycle is defined.

    Wraps an :class:`AsyncRoutingService` (and its
    :class:`~repro.service.tenancy.TenantRegistry` and
    :class:`~repro.service.tenancy.FairScheduler`); the transports call
    :meth:`process_line` (NDJSON) or :meth:`process_http` (HTTP) and
    write the answer — nothing else.
    """

    def __init__(
        self,
        service: AsyncRoutingService,
        handler: RequestHandler | None = None,
    ) -> None:
        self.service = service
        self.handler = handler if handler is not None else RequestHandler(service)
        self.tenants = service.tenants
        self.scheduler = service.scheduler

    @property
    def telemetry(self):
        """The shared telemetry registry (the wrapped service's)."""
        return self.service.telemetry

    # ------------------------------------------------------------------
    # NDJSON entry point
    # ------------------------------------------------------------------
    async def process_line(
        self, line: str | bytes, api_key: str | None = None
    ) -> dict[str, Any]:
        """One raw request line -> one response document (never raises).

        The JSON decode *is* the decode stage for this framing; its
        timing is threaded into :meth:`process` so it shows up as the
        ``pipeline.decode`` span and stage metric.
        """
        t0 = time.perf_counter()
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("expected a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self.telemetry.observe("pipeline.decode", time.perf_counter() - t0)
            return error_doc("bad_json", f"bad request: {exc}")
        return await self.process(
            doc, api_key=api_key, decode_seconds=time.perf_counter() - t0
        )

    # ------------------------------------------------------------------
    # the lifecycle
    # ------------------------------------------------------------------
    async def process(
        self,
        doc: dict[str, Any],
        *,
        api_key: str | None = None,
        decode_seconds: float = 0.0,
    ) -> dict[str, Any]:
        """Run one request document through every lifecycle stage.

        Never raises (failures come back as ``"ok": false`` documents
        with a stable ``code``), except ``asyncio.CancelledError``,
        which propagates so transports can tear connections down
        cleanly. Work ops run under a root trace span named
        ``handler.<op>`` with the tenant in its attributes; a ``trace``
        field carrying a W3C ``traceparent`` joins the caller's trace.
        """
        op = doc.get("op", "route")
        buffer = self.handler.traces if op in TRACED_OPS else None
        traceparent = doc.get("trace")
        tel = self.telemetry
        tenant = SYSTEM_TENANT
        outcome = "admitted"
        with start_trace(
            f"handler.{op}",
            buffer,
            traceparent=traceparent if isinstance(traceparent, str) else None,
            node_id=self.handler.node_id(),
            op=str(op),
        ) as root:
            # The transport already decoded; lay the stage into the
            # trace retroactively so every stage appears as a span.
            record_stage_spans(
                {"decode": {"seconds": decode_seconds, "count": 1}},
                prefix="pipeline.",
            )
            tel.observe("pipeline.decode", decode_seconds)
            try:
                t0 = time.perf_counter()
                with span("pipeline.authenticate") as asp:
                    tenant = self._authenticate(doc, api_key, op)
                    asp.set("tenant", tenant.name)
                tel.observe("pipeline.authenticate", time.perf_counter() - t0)
                root.set("tenant", tenant.name)
                t0 = time.perf_counter()
                with span("pipeline.admit", tenant=tenant.name):
                    self._admit(tenant, doc, op)
                tel.observe("pipeline.admit", time.perf_counter() - t0)
                t0 = time.perf_counter()
                with span("pipeline.execute"), bind_tenant(tenant):
                    resp = await self._execute(op, doc)
                tel.observe("pipeline.execute", time.perf_counter() - t0)
            except AuthenticationError as exc:
                outcome = "unauthorized"
                resp = error_doc("unauthorized", str(exc), op=str(op))
                _log.warning(
                    "request refused: unauthorized",
                    extra={"op": str(op), "tenant": tenant.name},
                )
            except RateLimitedError as exc:
                outcome = exc.reason
                resp = error_doc("rate_limited", str(exc), op=str(op))
                resp["retry_after"] = exc.retry_after
                _log.warning(
                    "request refused: rate limited",
                    extra={
                        "op": str(op),
                        "tenant": tenant.name,
                        "reason": exc.reason,
                        "retry_after": exc.retry_after,
                    },
                )
            except ReproError as exc:
                resp = error_doc("bad_request", str(exc), op=str(op))
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - one bad request, one error doc
                resp = error_doc(
                    "internal", f"{type(exc).__name__}: {exc}", op=str(op)
                )
            t0 = time.perf_counter()
            with span("pipeline.encode", tenant=tenant.name, outcome=outcome):
                if op in WORK_OPS:
                    tel.incr(
                        "tenant_requests",
                        labels={"tenant": tenant.name, "outcome": outcome},
                    )
                    self.tenants.note(tenant.name, outcome)
                if buffer is not None:
                    if not resp.get("ok"):
                        root.status = "error"
                    resp.setdefault("trace_id", root.trace_id)
            tel.observe("pipeline.encode", time.perf_counter() - t0)
        if "id" in doc:
            resp["id"] = doc["id"]
        return resp

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def _authenticate(
        self, doc: Mapping[str, Any], api_key: str | None, op: Any
    ) -> Tenant:
        """The authenticate stage: request -> :class:`Tenant`.

        Work ops resolve through the registry — a ``api_key`` field in
        the document wins over the transport-supplied key (the HTTP
        ``Authorization`` / ``X-API-Key`` headers). Non-work ops run as
        the system tenant.

        Raises
        ------
        AuthenticationError
            When the registry is enforced and the key is missing or
            unknown (the ``unauthorized`` code).
        ReproError
            When ``api_key`` is present but not a string.
        """
        if op not in WORK_OPS:
            return SYSTEM_TENANT
        key = doc.get("api_key")
        if key is None:
            key = api_key
        elif not isinstance(key, str):
            raise ReproError("'api_key' must be a string")
        return self.tenants.authenticate(key or None)

    def _admit(self, tenant: Tenant, doc: Mapping[str, Any], op: Any) -> None:
        """The admit stage: load shedding and rate limiting.

        Checks, in order: the global queue-depth bound, the tenant's
        ``max_queued`` quota, the tenant's token bucket (charged the
        cost estimate; a batch charges the sum of its entries,
        all-or-nothing). Only this stage ever sheds — work that passes
        admission always eventually executes, however slowly.

        Raises
        ------
        RateLimitedError
            On any refusal (the ``rate_limited`` code / HTTP 429).
        """
        if op not in WORK_OPS:
            return
        if op in ("route_batch", "transpile_batch"):
            entries = doc.get("requests")
            if isinstance(entries, list):
                n = len(entries)
                cost = sum(
                    estimate_doc_cost(e) if isinstance(e, Mapping) else 1.0
                    for e in entries
                )
            else:
                n, cost = 1, 1.0  # malformed; validation rejects it later
        else:
            n, cost = 1, estimate_doc_cost(doc)
        bound = self.scheduler.max_queue_depth
        queued = self.scheduler.queued
        if bound is not None and queued + n > bound:
            raise RateLimitedError(
                f"queue is full ({queued} queued, bound {bound}); "
                "the service is shedding load",
                retry_after=1.0,
                reason="shed",
            )
        if tenant.max_queued is not None:
            tenant_queued = self.scheduler.queued_for(tenant.name)
            if tenant_queued + n > tenant.max_queued:
                raise RateLimitedError(
                    f"tenant {tenant.name!r} queue quota reached "
                    f"({tenant_queued} queued, quota {tenant.max_queued})",
                    retry_after=1.0,
                    reason="shed",
                )
        retry_after = self.tenants.throttle(tenant, cost)
        if retry_after is not None:
            raise RateLimitedError(
                f"tenant {tenant.name!r} is over its rate limit; "
                f"retry in {retry_after:.2f}s",
                retry_after=retry_after,
                reason="throttled",
            )

    async def _execute(self, op: Any, doc: dict[str, Any]) -> dict[str, Any]:
        """The execute stage: the op dispatch table (default ``route``).

        This is the single dispatch surface both transports share; the
        per-op implementations live on :class:`RequestHandler`.
        """
        handler = self.handler
        if op == "ping":
            return {"ok": True, "op": "ping", **handler.health_info()}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": handler.stats()}
        if op == "metrics":
            return {
                "ok": True,
                "op": "metrics",
                "metrics": handler.prometheus_metrics(),
            }
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "route":
            return await handler.route_doc(doc)
        if op == "transpile":
            return await handler.transpile_doc(doc)
        if op == "route_batch":
            return await self._batch_doc(doc, transpile=False)
        if op == "transpile_batch":
            return await self._batch_doc(doc, transpile=True)
        if op == "cache_get":
            return await handler.cache_get_doc(doc)
        if op == "cache_put":
            return await handler.cache_put_doc(doc)
        if op == "cache_stats":
            return {
                "ok": True,
                "op": "cache_stats",
                "stats": handler.local_cache_stats(),
            }
        if op == "topology_get":
            return handler.topology_get_doc()
        if op == "topology_update":
            return handler.topology_update_doc(doc)
        if op == "gossip":
            # A ping_req proxies a synchronous probe to a third node, so
            # this op can block for a gossip transport timeout — keep it
            # off the event loop.
            return await asyncio.to_thread(handler.gossip_doc, doc)
        if op == "trace_get":
            return handler.trace_get_doc(doc)
        return error_doc("unknown_op", f"unknown op {op!r}")

    async def _batch_doc(
        self, doc: Mapping[str, Any], transpile: bool
    ) -> dict[str, Any]:
        """One ``route_batch`` / ``transpile_batch`` op document.

        ``{"requests": [...], "timeout": null, "include_schedule":
        false}`` (or ``include_qasm`` for transpile) — per-entry errors
        are isolated into their result slots, exactly like the batch
        CLI. Raises :class:`ReproError` on a malformed envelope.
        """
        docs = doc.get("requests")
        if not isinstance(docs, list):
            raise ReproError("'requests' must be a JSON array")
        try:
            timeout = (
                float(doc["timeout"]) if doc.get("timeout") is not None else None
            )
        except (TypeError, ValueError):
            raise ReproError("'timeout' must be a number") from None
        if transpile:
            results = await self.handler.transpile_batch_docs(
                docs, include_qasm=bool(doc.get("include_qasm")), timeout=timeout
            )
            batch_op = "transpile_batch"
        else:
            results = await self.handler.route_batch_docs(
                docs,
                include_schedule=bool(doc.get("include_schedule")),
                timeout=timeout,
            )
            batch_op = "route_batch"
        return {
            "ok": True,
            "op": batch_op,
            "count": len(results),
            "results": results,
        }

    # ------------------------------------------------------------------
    # HTTP entry point (the endpoint table)
    # ------------------------------------------------------------------
    async def process_http(
        self,
        method: str,
        path: str,
        query: str,
        headers: Mapping[str, str],
        body: bytes,
        *,
        draining: bool = False,
    ) -> HttpResponse:
        """One parsed HTTP request -> the complete :class:`HttpResponse`.

        Owns the endpoint table (URL + method → op document), the
        ``Authorization: Bearer`` / ``X-API-Key`` header extraction,
        the ``traceparent`` propagation, and the status/``Retry-After``
        mapping. The transport (:mod:`repro.service.http`) only frames:
        it parses the message, calls this, and writes the answer. The
        transport detects a granted shutdown from the returned payload
        (``op == "shutdown"`` and ``ok``) — this method has no access
        to the serve loop.
        """
        self.telemetry.incr("http_requests")
        api_key = self._api_key_from_headers(headers)
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return HttpResponse(
                200,
                {
                    "ok": True,
                    "status": "draining" if draining else "serving",
                    **self.handler.health_info(),
                },
            )
        if path == "/v1/traces":
            if method != "GET":
                return self._method_not_allowed(method, path)
            doc, err = self._trace_query(query)
            if err is not None:
                return HttpResponse(400, err)
            return self._doc_response(await self.process(doc))
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return HttpResponse(200, {"ok": True, "stats": self.handler.stats()})
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return HttpResponse(
                200, self.handler.prometheus_metrics(), content_type=_PROM
            )
        if path == "/v1/shutdown":
            if method != "POST":
                return self._method_not_allowed(method, path)
            return HttpResponse(200, {"ok": True, "op": "shutdown"})
        if path in (
            "/v1/route",
            "/v1/route_batch",
            "/v1/transpile_batch",
            "/v1/cache_get",
            "/v1/cache_put",
            "/v1/topology_update",
            "/v1/gossip",
        ):
            if method != "POST":
                return self._method_not_allowed(method, path)
            return await self._op_from_body(
                path.rsplit("/", 1)[1], body, headers, api_key
            )
        if path in ("/v1/cache_stats", "/v1/topology_get"):
            if method not in ("GET", "POST"):
                return self._method_not_allowed(method, path)
            return self._doc_response(
                await self.process({"op": path.rsplit("/", 1)[1]})
            )
        if path == "/v1/topology":
            if method == "GET":
                return self._doc_response(await self.process({"op": "topology_get"}))
            if method == "POST":
                return await self._op_from_body(
                    "topology_update", body, headers, api_key
                )
            return self._method_not_allowed(method, path)
        return HttpResponse(404, error_doc("not_found", f"no endpoint at {path}"))

    async def _op_from_body(
        self,
        op: str,
        body: bytes,
        headers: Mapping[str, str],
        api_key: str | None,
    ) -> HttpResponse:
        """Decode a JSON body into an op document and run the pipeline."""
        t0 = time.perf_counter()
        doc, err = self._parse_body(body)
        decode_seconds = time.perf_counter() - t0
        if err is not None:
            self.telemetry.observe("pipeline.decode", decode_seconds)
            return HttpResponse(400, err)
        assert doc is not None
        resp = await self.process(
            self._with_trace({**doc, "op": op}, headers),
            api_key=api_key,
            decode_seconds=decode_seconds,
        )
        return self._doc_response(resp)

    def _doc_response(self, resp: dict[str, Any]) -> HttpResponse:
        """Map a response document to status + headers (``Retry-After``)."""
        extra: tuple[tuple[str, str], ...] = ()
        if resp.get("code") == "rate_limited":
            try:
                seconds = max(1, math.ceil(float(resp.get("retry_after", 1.0))))
            except (TypeError, ValueError):
                seconds = 1
            extra = (("Retry-After", str(seconds)),)
        return HttpResponse(status_for(resp), resp, headers=extra)

    @staticmethod
    def _api_key_from_headers(headers: Mapping[str, str]) -> str | None:
        """``Authorization: Bearer <key>`` (preferred) or ``X-API-Key``."""
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            key = auth[7:].strip()
            if key:
                return key
        return headers.get("x-api-key") or None

    @staticmethod
    def _with_trace(doc: dict[str, Any], headers: Mapping[str, str]) -> dict[str, Any]:
        """Copy an inbound ``traceparent`` header into the op document.

        The pipeline reads trace context uniformly from ``doc["trace"]``
        on both transports; an explicit ``trace`` field in the body
        wins over the header.
        """
        traceparent = headers.get("traceparent")
        if traceparent and "trace" not in doc:
            return {**doc, "trace": traceparent}
        return doc

    def _method_not_allowed(self, method: str, path: str) -> HttpResponse:
        return HttpResponse(
            405,
            error_doc("method_not_allowed", f"{method} not supported on {path}"),
        )

    @staticmethod
    def _trace_query(
        query: str,
    ) -> tuple[dict[str, Any], None] | tuple[None, dict[str, Any]]:
        """``GET /v1/traces`` query params as a ``trace_get`` op document."""
        try:
            params = urllib.parse.parse_qs(query, strict_parsing=False)
        except ValueError as exc:  # pragma: no cover - parse_qs is lenient
            return None, error_doc("bad_request", f"bad query string: {exc}")
        doc: dict[str, Any] = {"op": "trace_get"}
        if "id" in params:
            doc["trace_id"] = params["id"][-1]
        if "limit" in params:
            try:
                doc["limit"] = int(params["limit"][-1])
            except ValueError:
                return None, error_doc("bad_request", "'limit' must be an integer")
        if "min_seconds" in params:
            try:
                doc["min_seconds"] = float(params["min_seconds"][-1])
            except ValueError:
                return None, error_doc(
                    "bad_request", "'min_seconds' must be a number"
                )
        return doc, None

    @staticmethod
    def _parse_body(
        body: bytes,
    ) -> tuple[dict[str, Any], None] | tuple[None, dict[str, Any]]:
        """The request body as a JSON object, or a ``bad_json`` error doc."""
        try:
            doc = json.loads(body)
            if not isinstance(doc, dict):
                raise ValueError("expected a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return None, error_doc("bad_json", f"bad request body: {exc}")
        return doc, None
