"""Batch execution: dedup → cache → process-pool fan-out.

The executor turns a list of routing requests into a list of results
with three cost-avoidance layers, applied in order:

1. **Dedup** — identical requests inside one batch (same canonical key)
   are routed once; duplicates share the schedule.
2. **Cache** — keys already in the :class:`~repro.service.cache.ScheduleCache`
   are served synchronously without touching the pool.
3. **Fan-out** — the remaining unique misses run on a persistent
   ``concurrent.futures`` process pool. Workers receive graph *specs*
   (not pickled graph objects) and return binary
   :mod:`repro.routing.codec` frames instead of nested layer lists, so
   crossing the pool boundary costs three buffer copies rather than a
   per-swap pickle walk; the parent decodes straight into the lazy
   flat-array schedule representation.

Misses are dispatched to the pool in descending estimated-cost order
(stable, restored on collection) so one expensive route starts first
instead of straggling the final chunk; under heavy cost skew the
``pool.map`` chunksize drops to 1 so cheap requests never queue behind
an expensive chunk-mate.

Guarantees: results come back in input order regardless of completion
order, and a failing instance yields an error *result* (``source ==
"error"``) instead of poisoning the batch. If the pool itself dies
(e.g. a worker is OOM-killed), the affected requests are recomputed
inline rather than lost.

Lifecycle: :meth:`BatchExecutor.close` is terminal and idempotent —
concurrent callers all observe a single shutdown, and any submission
after close raises :class:`~repro.errors.ServiceClosedError` instead of
resurrecting the pool or surfacing a raw ``BrokenProcessPool``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..errors import ScheduleError, ServiceClosedError
from ..graphs.base import Graph
from ..perm.permutation import Permutation
from ..routing.base import StageProfiler, make_router, profile
from ..routing.codec import decode_schedule, encode_schedule
from ..routing.schedule import Schedule
from .cache import ScheduleCache
from .cluster import ClusterScheduleCache
from .keys import RequestKey, graph_from_spec, graph_spec, request_key
from .sharding import ShardedScheduleCache
from .telemetry import Telemetry

__all__ = [
    "RouteRequest",
    "RouteResult",
    "BatchExecutor",
    "record_stage_telemetry",
]

#: Cost spread (max/min estimated cost) beyond which a pool batch is
#: considered skewed and the ``pool.map`` chunksize is capped at 1.
_SKEW_RATIO = 4


@dataclass(frozen=True)
class RouteRequest:
    """One routing instance: permutation ``perm`` on ``graph`` via ``router``.

    ``options`` are forwarded to the router factory
    (:func:`repro.routing.base.make_router`) and participate in the
    cache key, so e.g. ``ats`` with different trial counts caches
    separately.
    """

    graph: Graph
    perm: Permutation
    router: str = "local"
    options: Mapping[str, Any] = field(default_factory=dict)

    def key(self) -> RequestKey:
        """The request's canonical cache key."""
        return request_key(self.graph, self.perm, self.router, self.options)


@dataclass
class RouteResult:
    """Outcome of one request, aligned with its position in the batch.

    ``source`` records how the schedule was obtained: ``"computed"``
    (routed this batch), ``"cache"`` (served from the schedule cache),
    ``"dedup"`` (shared with an identical request earlier in the batch),
    or ``"error"`` (routing failed; see ``error``, ``schedule is None``).
    """

    index: int
    key: RequestKey
    router: str
    schedule: Schedule | None
    seconds: float
    source: str
    error: str | None = None
    #: Per-stage compute profile ``{stage: {"seconds", "count"}}`` for
    #: computed results (empty for cache/dedup hits and errors).
    stages: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Kernel backend that computed the schedule (``None`` for cache and
    #: dedup hits, errors, and routers that predate backend reporting).
    backend: str | None = None

    @property
    def ok(self) -> bool:
        """Whether a schedule was produced."""
        return self.schedule is not None

    @property
    def depth(self) -> int | None:
        """Schedule depth, or ``None`` on error."""
        return self.schedule.depth if self.schedule is not None else None

    @property
    def size(self) -> int | None:
        """Schedule swap count, or ``None`` on error."""
        return self.schedule.size if self.schedule is not None else None


def _warm_worker() -> None:
    """Pool initializer: pay the lazy heavy imports once per worker.

    The grid routers import scipy on their first call (a ~0.5 s hit);
    routing a trivial instance at worker start moves that cost out of
    the first real request's latency.
    """
    try:
        from ..graphs.grid import GridGraph

        make_router("local").route(GridGraph(2, 2), Permutation([1, 0, 2, 3]))
    except Exception:  # noqa: BLE001 - warming is best-effort
        pass


def _route_in_worker(
    payload: tuple[str, dict, list[int], str, dict, Any],
) -> tuple[str, str, Any, float, dict, str | None]:
    """Pool worker: rebuild the instance, route it, return a codec frame.

    Module-level so it pickles by reference. Never raises: failures are
    returned as ``(digest, "error", message, seconds, stages, backend)``
    tuples, which is what keeps one bad instance from killing the whole
    batch. Successes carry the schedule as a binary
    :func:`~repro.routing.codec.encode_schedule` frame (``bytes``
    pickle as one opaque buffer; nested layer lists used to pickle swap
    by swap). The two trailing elements carry the per-stage routing
    profile and the kernel-backend name the schedule records — workers
    cannot share the parent's trace context, so both are collected here
    and shipped back with the result.

    The payload's last element is the executor's default kernel-backend
    spec; a ``backend`` key inside ``options`` (per-request override)
    wins over it.
    """
    digest, spec, targets, router_name, options, default_backend = payload
    t0 = time.perf_counter()
    profiler = StageProfiler()
    try:
        graph = graph_from_spec(spec)
        perm = Permutation(targets)
        opts = dict(options)
        backend_spec = opts.pop("backend", default_backend)
        router = make_router(router_name, backend=backend_spec, **opts)
        with profile(profiler):
            schedule = router.route(graph, perm)
        frame = encode_schedule(schedule)
        backend = schedule.metadata.get("backend")
        return (
            digest, "ok", frame, time.perf_counter() - t0,
            profiler.as_dict(), backend,
        )
    except Exception as exc:  # noqa: BLE001 - error isolation is the contract
        msg = f"{type(exc).__name__}: {exc}"
        return (digest, "error", msg, time.perf_counter() - t0, {}, None)


class BatchExecutor:
    """Cache-aware, deduplicating, optionally parallel request runner.

    Parameters
    ----------
    cache:
        Schedule cache consulted before any work and updated after.
        ``None`` disables caching (every unique request is computed).
    max_workers:
        Process-pool size. ``0`` or ``1`` computes inline in this
        process (no pool, no pickling); ``None`` uses ``os.cpu_count()``.
    telemetry:
        Optional :class:`~repro.service.telemetry.Telemetry` receiving
        per-request counters and latencies.
    verify:
        When true, every computed schedule is re-verified against its
        request before being cached or returned (defense in depth; the
        routers already guarantee this).
    kernel_backend:
        Default kernel-backend spec (name, see :mod:`repro.kernels`)
        applied to computed routes. ``None`` uses the ambient default
        (``REPRO_KERNEL_BACKEND`` or auto-detection); a per-request
        ``backend`` option overrides it. Backend choice never affects
        cache keys — all backends produce identical schedules.
    """

    def __init__(
        self,
        cache: ScheduleCache | ShardedScheduleCache | ClusterScheduleCache | None = None,
        max_workers: int | None = 1,
        telemetry: Telemetry | None = None,
        verify: bool = False,
        kernel_backend: str | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be >= 0, got {max_workers}")
        self.cache = cache
        self.max_workers = max_workers
        self.telemetry = telemetry or Telemetry()
        self.verify = verify
        self.kernel_backend = kernel_backend
        self._pool: ProcessPoolExecutor | None = None
        self._threads: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether misses fan out to a process pool."""
        return self.max_workers is None or self.max_workers > 1

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (terminal)."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(
                "executor is closed; create a new BatchExecutor/RoutingService"
            )

    def _get_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            self._ensure_open()
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, initializer=_warm_worker
                )
            return self._pool

    def _get_threads(self) -> ThreadPoolExecutor:
        """Thread fallback for :meth:`submit_job` when not parallel.

        Sized independently of ``max_workers`` so an async front end on
        an inline executor still gets non-blocking (if GIL-bound)
        concurrency.
        """
        with self._pool_lock:
            self._ensure_open()
            if self._threads is None:
                self._threads = ThreadPoolExecutor(
                    max_workers=min(32, (os.cpu_count() or 1) * 4),
                    thread_name_prefix="repro-exec",
                )
            return self._threads

    def reset_pool(self) -> None:
        """Tear down a broken pool so the next job respawns it.

        Recovery, not shutdown: unlike :meth:`close` this is not
        terminal. Used internally (and by the async front end) after a
        ``BrokenProcessPool``-style failure.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut down the worker pools. Terminal and idempotent.

        Safe to call from concurrent threads: exactly one caller performs
        the shutdown, the rest return immediately. Submitting work after
        close raises :class:`~repro.errors.ServiceClosedError`.
        """
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            threads, self._threads = self._threads, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if threads is not None:
            threads.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # generic fan-out
    # ------------------------------------------------------------------
    def run_jobs(
        self,
        fn,
        payloads: Sequence[Any],
        max_chunksize: int | None = None,
    ) -> list[Any]:
        """Map a no-raise, module-level worker over payloads.

        Uses the process pool when parallel (falling back to inline
        execution if the pool dies wholesale), otherwise runs inline.
        ``fn`` must be picklable by reference and must encode failures
        in its return value — an exception escaping ``fn`` in a worker
        triggers the inline fallback for the entire job list.

        ``max_chunksize`` caps the batching heuristic: callers that
        dispatch payloads with heavily skewed per-item cost pass a small
        cap so an expensive item never drags chunk-mates behind it.
        """
        self._ensure_open()
        if self.parallel and len(payloads) > 1:
            try:
                pool = self._get_pool()
                workers = self.max_workers or os.cpu_count() or 1
                chunksize = max(1, len(payloads) // (4 * workers))
                if max_chunksize is not None:
                    chunksize = max(1, min(chunksize, max_chunksize))
                return list(pool.map(fn, payloads, chunksize=chunksize))
            except Exception:  # noqa: BLE001 - BrokenProcessPool and friends
                self.telemetry.incr("pool_failures")
                self.reset_pool()
        return [fn(p) for p in payloads]

    def submit_job(self, fn: Callable[[Any], Any], payload: Any) -> Future:
        """Submit one payload, returning its ``concurrent.futures.Future``.

        The single-request analogue of :meth:`run_jobs`, built for async
        front ends that wrap the future with ``asyncio.wrap_future``
        instead of blocking on ``pool.map``. Parallel executors use the
        process pool (falling back to the thread pool if the pool is
        broken); inline executors run ``fn`` on the thread pool so the
        caller's event loop never blocks. Same contract as
        :meth:`run_jobs`: ``fn`` must encode failures in its return
        value.
        """
        self._ensure_open()
        if self.parallel:
            try:
                return self._get_pool().submit(fn, payload)
            except ServiceClosedError:
                raise
            except Exception:  # noqa: BLE001 - BrokenProcessPool and friends
                self.telemetry.incr("pool_failures")
                self.reset_pool()
        return self._get_threads().submit(fn, payload)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, requests: Sequence[RouteRequest]) -> list[RouteResult]:
        """Run a batch; the result list is index-aligned with the input.

        Raises
        ------
        ServiceClosedError
            If the executor has been closed.
        """
        self._ensure_open()
        t_batch = time.perf_counter()
        results: list[RouteResult | None] = [None] * len(requests)

        # Phase 1: keys, in-batch dedup, cache lookups.
        first_of: dict[str, int] = {}  # digest -> index of first occurrence
        misses: list[int] = []  # indices that must actually be routed
        miss_keys: dict[int, RequestKey] = {}  # reuse phase-1 fingerprints
        for i, req in enumerate(requests):
            key = req.key()
            if key.digest in first_of:
                results[i] = RouteResult(
                    index=i, key=key, router=req.router, schedule=None,
                    seconds=0.0, source="dedup",
                )
                continue
            first_of[key.digest] = i
            cached = self.cache.get(key.digest) if self.cache is not None else None
            if cached is not None:
                results[i] = RouteResult(
                    index=i, key=key, router=req.router, schedule=cached,
                    seconds=0.0, source="cache",
                )
            else:
                misses.append(i)
                miss_keys[i] = key

        # Phase 2: route the unique misses (pool or inline).
        if misses:
            if self.parallel and len(misses) > 1:
                outcomes = self._run_pool(requests, misses, miss_keys)
            else:
                outcomes = [
                    self._run_inline(requests[i], i, miss_keys[i])
                    for i in misses
                ]
            for result in outcomes:
                req = requests[result.index]
                if result.ok and self.verify:
                    try:
                        result.schedule.verify(req.graph, req.perm)
                    except Exception as exc:  # noqa: BLE001 - isolate per request
                        result = RouteResult(
                            index=result.index, key=result.key,
                            router=result.router, schedule=None,
                            seconds=result.seconds, source="error",
                            error=f"verification failed: {exc}",
                        )
                if result.ok and self.cache is not None:
                    self.cache.put(
                        result.key.digest, result.schedule, cost=result.seconds
                    )
                results[result.index] = result

        # Phase 3: resolve dedup placeholders against their originals.
        for i, res in enumerate(results):
            if res is not None and res.source == "dedup":
                orig = results[first_of[res.key.digest]]
                results[i] = RouteResult(
                    index=i, key=res.key, router=res.router,
                    schedule=orig.schedule, seconds=0.0,
                    source="dedup" if orig.ok else "error",
                    error=orig.error,
                )

        final = [r for r in results if r is not None]
        assert len(final) == len(requests)
        self._record_telemetry(final, time.perf_counter() - t_batch)
        return final

    def _run_inline(
        self, req: RouteRequest, index: int, key: RequestKey | None = None
    ) -> RouteResult:
        """Route one request in this process, catching its failure."""
        if key is None:
            key = req.key()
        t0 = time.perf_counter()
        profiler = StageProfiler()
        try:
            opts = dict(req.options)
            backend_spec = opts.pop("backend", self.kernel_backend)
            router = make_router(req.router, backend=backend_spec, **opts)
            with profile(profiler):
                schedule = router.route(req.graph, req.perm)
            return RouteResult(
                index=index, key=key, router=req.router, schedule=schedule,
                seconds=time.perf_counter() - t0, source="computed",
                stages=profiler.as_dict(),
                backend=schedule.metadata.get("backend"),
            )
        except Exception as exc:  # noqa: BLE001 - error isolation is the contract
            return RouteResult(
                index=index, key=key, router=req.router, schedule=None,
                seconds=time.perf_counter() - t0, source="error",
                error=f"{type(exc).__name__}: {exc}",
            )

    def _run_pool(
        self,
        requests: Sequence[RouteRequest],
        misses: list[int],
        keys: dict[int, RequestKey],
    ) -> list[RouteResult]:
        """Fan unique misses out over the process pool.

        Payloads go to the pool sorted by descending estimated cost
        (vertex count — route time grows superlinearly in it) so the
        most expensive instance starts immediately instead of
        straggling the last chunk; the sort is stable and the original
        order is restored on collection. When the batch's cost spread
        exceeds :data:`_SKEW_RATIO` the chunksize is capped at 1 —
        with descending order a large chunk would put all the expensive
        instances on one worker.
        """
        payloads = []
        costs = []
        for i in misses:
            req = requests[i]
            costs.append(req.graph.n_vertices)
            payloads.append((
                keys[i].digest,
                graph_spec(req.graph),
                req.perm.targets.tolist(),
                req.router,
                dict(req.options),
                self.kernel_backend,
            ))
        order = sorted(range(len(misses)), key=lambda p: -costs[p])
        skewed = bool(costs) and max(costs) > _SKEW_RATIO * min(costs)
        raw_sorted = self.run_jobs(
            _route_in_worker,
            [payloads[p] for p in order],
            max_chunksize=1 if skewed else None,
        )
        raw: list[Any] = [None] * len(misses)
        for slot, p in enumerate(order):
            raw[p] = raw_sorted[slot]

        out: list[RouteResult] = []
        for i, (_digest, status, body, seconds, stages, backend) in zip(misses, raw):
            req = requests[i]
            if status == "ok":
                try:
                    schedule = decode_schedule(body)
                    if schedule.n_vertices != req.graph.n_vertices:
                        raise ScheduleError(
                            f"schedule on {schedule.n_vertices} vertices for a "
                            f"{req.graph.n_vertices}-vertex graph"
                        )
                    out.append(RouteResult(
                        index=i, key=keys[i], router=req.router,
                        schedule=schedule, seconds=seconds, source="computed",
                        stages=stages, backend=backend,
                    ))
                    continue
                except Exception as exc:  # noqa: BLE001
                    body = f"worker returned invalid schedule: {exc}"
            out.append(RouteResult(
                index=i, key=keys[i], router=req.router, schedule=None,
                seconds=seconds, source="error", error=str(body),
            ))
        return out

    def _record_telemetry(
        self, results: Sequence[RouteResult], batch_seconds: float
    ) -> None:
        tel = self.telemetry
        tel.incr("batches")
        tel.observe("batch", batch_seconds)
        for r in results:
            tel.incr("requests")
            tel.incr(f"source_{r.source}")
            if r.source == "computed":
                tel.observe("route", r.seconds)
                record_stage_telemetry(tel, r.router, r.backend, r.stages)


def record_stage_telemetry(
    telemetry: Telemetry,
    router: str,
    backend: str | None,
    stages: Mapping[str, Mapping[str, float]],
) -> None:
    """Roll a per-stage compute profile into stage histograms.

    Histogram names follow ``stage.{router}.{backend}.{stage}`` (the
    backend segment is ``-`` when unknown, e.g. for transpile requests
    that never surface a schedule), which the Prometheus endpoint
    renders as ``repro_stage_seconds{router=...,backend=...,stage=...}``
    — the same decomposition traces show, aggregated.
    """
    for stage_name, info in stages.items():
        telemetry.observe(
            f"stage.{router}.{backend or '-'}.{stage_name}",
            float(info.get("seconds", 0.0)),
        )
