"""Request-scoped distributed tracing for the service stack.

A *trace* follows one request end to end: the transport hands the
handler a W3C-style ``traceparent`` (or the handler mints a fresh one),
:func:`start_trace` opens the root span, and every interesting stage —
cache tiers, executor queue wait, pool compute, remote shard hops, the
routing algorithm's own phases — wraps itself in :func:`span`. Spans
carry monotonic timestamps, a status, and free-form key/value
attributes; finished traces land in a bounded in-memory
:class:`TraceBuffer` queryable over every transport (``GET /v1/traces``
and the ``trace_get`` NDJSON op) and renderable with ``repro trace``.

Propagation is by value, not by baggage: :func:`current_traceparent`
yields a ``00-<trace-id>-<span-id>-01`` string naming the active span,
the remote client attaches it (HTTP header / NDJSON ``trace`` field),
and the receiving handler starts its *own* trace whose root span is
parented on the caller's span id. Each node therefore buffers only the
spans it recorded; a cross-node span tree is reassembled by fetching
the same trace id from every node and merging on parent links (what
the CLI does).

Everything here is stdlib-only and cheap on the hot path: :class:`span`
costs one contextvar read when no trace is active, and a live span is a
slotted object stamped with counter-derived ids (one ``os.urandom``
call per *trace*, not per span) and wall-clock times derived from a
single per-trace anchor — so instrumentation can be unconditional even
on cache-hit requests (see ``benchmarks/bench_tracing.py`` for the
overhead gate).
"""

from __future__ import annotations

import logging as _stdlib_logging
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Mapping, cast

from .telemetry import Telemetry

__all__ = [
    "Span",
    "Trace",
    "TraceBuffer",
    "span",
    "start_trace",
    "current_traceparent",
    "format_traceparent",
    "parse_traceparent",
    "record_stage_spans",
]

_slow_log = _stdlib_logging.getLogger("repro.service.tracing")


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a W3C ``traceparent`` value (version 00, sampled flag)."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(value: str) -> tuple[str, str] | None:
    """Extract ``(trace_id, span_id)`` from a ``traceparent`` string.

    Returns ``None`` (rather than raising) on anything malformed — an
    unparseable header from a foreign client should start a fresh trace,
    not fail the request.
    """
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


@dataclass(slots=True)
class Span:
    """One timed operation within a trace.

    ``t0``/``t1`` are ``time.perf_counter`` readings, comparable only
    within the recording process — cross-node ordering uses parent
    links, never clocks. ``start_unix`` is wall time for display.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_unix: float
    t0: float
    t1: float | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span wall time in seconds (0.0 while still open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach a key/value attribute (JSON-serializable values only)."""
        self.attrs[key] = value

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready document (used by ``trace_get`` / ``/v1/traces``)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_seconds": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_doc` output (clients/CLI)."""
        sp = cls(
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_id=(
                str(doc["parent_id"]) if doc.get("parent_id") else None
            ),
            name=str(doc["name"]),
            start_unix=float(doc.get("start_unix", 0.0)),
            t0=0.0,
            t1=float(doc.get("duration_seconds", 0.0)),
            status=str(doc.get("status", "ok")),
            attrs=dict(doc.get("attrs") or {}),
        )
        return sp


class _NoopSpan:
    """Stand-in yielded by :func:`span` when no trace is active.

    ``status`` is writable (and never read) so error paths can mark a
    span failed without caring whether a trace is live.
    """

    __slots__ = ("status",)

    def __init__(self) -> None:
        self.status = "ok"

    def set(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


@dataclass
class Trace:
    """All spans one node recorded for a single trace id.

    ``spans`` is ordered by completion time with the root span last; a
    multi-node request yields one :class:`Trace` per participating node,
    stitched together by span parentage (the remote node's root span is
    parented on the calling node's client span).
    """

    trace_id: str
    name: str
    node_id: str
    spans: list[Span]

    @property
    def root(self) -> Span:
        """The root span (last completed)."""
        return self.spans[-1]

    @property
    def duration(self) -> float:
        """Root-span duration in seconds."""
        return self.root.duration

    @property
    def start_unix(self) -> float:
        """Root-span wall-clock start."""
        return self.root.start_unix

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready document (used by ``trace_get`` / ``/v1/traces``)."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "node_id": self.node_id,
            "start_unix": self.start_unix,
            "duration_seconds": self.duration,
            "status": self.root.status,
            "spans": [sp.to_doc() for sp in self.spans],
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Trace":
        """Rebuild a trace from :meth:`to_doc` output (clients/CLI)."""
        return cls(
            trace_id=str(doc["trace_id"]),
            name=str(doc.get("name", "")),
            node_id=str(doc.get("node_id", "")),
            spans=[Span.from_doc(d) for d in doc.get("spans", [])],
        )


class _TraceState:
    """Mutable per-trace collector shared by all of a trace's spans.

    Owns the trace's entropy and clocks: span ids are minted by
    incrementing one random 64-bit counter (unique within the trace,
    collision-free across traces for all practical purposes) and span
    wall-clock starts are derived from a single ``time.time`` /
    ``perf_counter`` anchor pair — the hot path never touches
    ``os.urandom`` or ``time.time`` after trace start.
    """

    __slots__ = ("trace_id", "spans", "unix0", "p0", "_next_id")

    def __init__(
        self, trace_id: str | None, unix0: float, p0: float
    ) -> None:
        if trace_id is None:
            raw = os.urandom(24)
            trace_id = raw[:16].hex()
            seed = raw[16:]
        else:
            seed = os.urandom(8)
        self.trace_id = trace_id
        self.spans: list[Span] = []
        self.unix0 = unix0
        self.p0 = p0
        self._next_id = int.from_bytes(seed, "big")

    def new_span_id(self) -> str:
        sid = self._next_id & 0xFFFFFFFFFFFFFFFF
        self._next_id = sid + 1
        # The all-zero span id is reserved by the traceparent spec.
        return format(sid or 1, "016x")


_CURRENT: ContextVar[tuple[_TraceState, Span] | None] = ContextVar(
    "repro_current_span", default=None
)


def current_traceparent() -> str | None:
    """``traceparent`` naming the active span, or ``None`` outside a trace.

    This is what :class:`~repro.service.cluster.RemoteShardClient`
    attaches to outbound shard requests so the owning node's spans join
    the caller's trace.
    """
    cur = _CURRENT.get()
    if cur is None:
        return None
    state, sp = cur
    return format_traceparent(state.trace_id, sp.span_id)


class span:
    """Open a child span of the current span for the enclosed block.

    No-op (yields an inert span) when no trace is active. The span's
    status flips to ``"error"`` if the block raises; the exception
    propagates unchanged.

    A class-based context manager (rather than a generator) because this
    sits on the service's warm path — cache-hit requests open spans too,
    and generator context managers cost roughly twice as much per
    enter/exit.
    """

    __slots__ = ("_name", "_attrs", "_state", "_span", "_token")

    def __init__(self, name: str, **attrs: Any) -> None:
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        cur = _CURRENT.get()
        if cur is None:
            self._token = None
            return cast(Span, _NOOP)
        state, parent = cur
        t0 = time.perf_counter()
        sp = Span(
            trace_id=state.trace_id,
            span_id=state.new_span_id(),
            parent_id=parent.span_id,
            name=self._name,
            start_unix=state.unix0 + (t0 - state.p0),
            t0=t0,
            attrs=self._attrs,
        )
        self._state = state
        self._span = sp
        self._token = _CURRENT.set((state, sp))
        return sp

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._token is None:
            return False
        sp = self._span
        if exc_type is not None:
            sp.status = "error"
        sp.t1 = time.perf_counter()
        self._state.spans.append(sp)
        _CURRENT.reset(self._token)
        return False


class start_trace:
    """Open a trace's root span and record the trace into ``buffer``.

    With a valid ``traceparent`` the trace id is inherited and the root
    span is parented on the caller's span (distributed continuation);
    otherwise a fresh trace id is minted. With ``buffer=None`` the whole
    block is a no-op — callers gate tracing by passing their buffer or
    not.
    """

    __slots__ = (
        "_name",
        "_buffer",
        "_traceparent",
        "_node_id",
        "_attrs",
        "_state",
        "_root",
        "_token",
    )

    def __init__(
        self,
        name: str,
        buffer: "TraceBuffer | None",
        *,
        traceparent: str | None = None,
        node_id: str = "",
        **attrs: Any,
    ) -> None:
        self._name = name
        self._buffer = buffer
        self._traceparent = traceparent
        self._node_id = node_id
        self._attrs = attrs

    def __enter__(self) -> Span:
        if self._buffer is None:
            self._token = None
            return cast(Span, _NOOP)
        parent_id: str | None = None
        trace_id: str | None = None
        if self._traceparent:
            parsed = parse_traceparent(self._traceparent)
            if parsed is not None:
                trace_id, parent_id = parsed
        unix0 = time.time()
        p0 = time.perf_counter()
        state = _TraceState(trace_id, unix0, p0)
        root = Span(
            trace_id=state.trace_id,
            span_id=state.new_span_id(),
            parent_id=parent_id,
            name=self._name,
            start_unix=unix0,
            t0=p0,
            attrs=self._attrs,
        )
        self._state = state
        self._root = root
        self._token = _CURRENT.set((state, root))
        return root

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._token is None:
            return False
        root = self._root
        if exc_type is not None:
            root.status = "error"
        root.t1 = time.perf_counter()
        state = self._state
        state.spans.append(root)
        _CURRENT.reset(self._token)
        buffer = self._buffer
        assert buffer is not None
        buffer.add(Trace(state.trace_id, self._name, self._node_id, state.spans))
        return False


def record_stage_spans(
    stages: Mapping[str, Mapping[str, Any]], prefix: str = "stage."
) -> None:
    """Synthesize child spans from a stage-profile dict.

    Pool workers cannot share the parent process's contextvars, so the
    routing phases are profiled in-worker
    (:class:`repro.routing.base.StageProfiler`) and shipped back as
    ``{stage: {"seconds": ..., "count": ...}}``; this helper turns them
    into spans under the *current* span (the compute span), laid out
    sequentially from its start. Durations are exact; the offsets are
    presentational. No-op outside a trace.
    """
    cur = _CURRENT.get()
    if cur is None or not stages:
        return
    state, parent = cur
    offset = 0.0
    for stage_name in sorted(stages):
        info = stages[stage_name]
        seconds = float(info.get("seconds", 0.0))
        sp = Span(
            trace_id=state.trace_id,
            span_id=state.new_span_id(),
            parent_id=parent.span_id,
            name=prefix + stage_name,
            start_unix=parent.start_unix + offset,
            t0=parent.t0 + offset,
            t1=parent.t0 + offset + seconds,
            attrs={"count": int(info.get("count", 0))},
        )
        state.spans.append(sp)
        offset += seconds


def _freeze(trace: Trace) -> tuple:
    """Flatten a trace into nested tuples of scalars for ring storage.

    Retaining 512 live ``Trace``/``Span`` object graphs makes every
    generational GC pass rescan thousands of tracked containers — a tax
    charged to *all* requests in proportion to their allocation rate.
    Scalar-only tuples are untracked by CPython's collector after the
    first pass, so a frozen ring costs the GC (almost) nothing.
    """
    return (
        trace.trace_id,
        trace.name,
        trace.node_id,
        trace.duration,
        tuple(
            (
                sp.span_id,
                sp.parent_id,
                sp.name,
                sp.start_unix,
                sp.t0,
                sp.t1,
                sp.status,
                tuple(sp.attrs.items()),
            )
            for sp in trace.spans
        ),
    )


def _thaw(entry: tuple) -> Trace:
    """Rebuild a :class:`Trace` from :func:`_freeze` output."""
    trace_id, name, node_id, _duration, spans_t = entry
    spans = [
        Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=span_name,
            start_unix=start_unix,
            t0=t0,
            t1=t1,
            status=status,
            attrs=dict(attrs_t),
        )
        for (
            span_id,
            parent_id,
            span_name,
            start_unix,
            t0,
            t1,
            status,
            attrs_t,
        ) in spans_t
    ]
    return Trace(trace_id, name, node_id, spans)


class TraceBuffer:
    """Thread-safe ring buffer of finished traces.

    Holds the most recent ``capacity`` traces (default 512, evicting the
    oldest); traces slower than ``slow_threshold`` seconds are also
    emitted through the structured logger so they survive eviction. When
    a :class:`~repro.service.telemetry.Telemetry` is attached, the
    buffer keeps the ``trace_buffer_size`` gauge and
    ``traces_recorded`` / ``traces_dropped`` / ``traces_slow`` counters
    current. Entries are stored flattened (:func:`_freeze`) so the ring
    is invisible to the garbage collector; :meth:`get` and :meth:`list`
    rebuild :class:`Trace` objects on demand.
    """

    def __init__(
        self,
        capacity: int = 512,
        slow_threshold: float = 0.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.slow_threshold = slow_threshold
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self._traces: deque[tuple] = deque(maxlen=capacity)
        self._dropped = 0
        self._slow = 0

    def add(self, trace: Trace) -> None:
        """Record a finished trace (evicting the oldest at capacity)."""
        slow = (
            self.slow_threshold > 0.0
            and trace.duration >= self.slow_threshold
        )
        entry = _freeze(trace)
        with self._lock:
            evicted = len(self._traces) == self.capacity
            if evicted:
                self._dropped += 1
            self._traces.append(entry)
            if slow:
                self._slow += 1
            size = len(self._traces)
        if self._telemetry is not None:
            self._telemetry.set_gauge("trace_buffer_size", size)
            self._telemetry.incr("traces_recorded")
            if evicted:
                self._telemetry.incr("traces_dropped")
            if slow:
                self._telemetry.incr("traces_slow")
        if slow:
            _slow_log.warning(
                "slow trace %s (%s): %.6fs >= %.6fs threshold",
                trace.trace_id,
                trace.name,
                trace.duration,
                self.slow_threshold,
                extra={
                    "trace_id": trace.trace_id,
                    "span_id": trace.root.span_id,
                    "duration_seconds": trace.duration,
                },
            )

    def get(self, trace_id: str) -> Trace | None:
        """The buffered trace with ``trace_id``, or ``None``."""
        with self._lock:
            for entry in reversed(self._traces):
                if entry[0] == trace_id:
                    return _thaw(entry)
        return None

    def list(
        self, limit: int | None = None, slow_only: bool = False
    ) -> list[Trace]:
        """Buffered traces, newest first.

        ``slow_only`` keeps only traces at/above the slow threshold (all
        traces when no threshold is configured); ``limit`` caps the
        result length after filtering.
        """
        with self._lock:
            entries = list(reversed(self._traces))
        if slow_only and self.slow_threshold > 0.0:
            entries = [
                e for e in entries if e[3] >= self.slow_threshold
            ]
        if limit is not None:
            entries = entries[: max(0, limit)]
        return [_thaw(e) for e in entries]

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def dropped(self) -> int:
        """Traces evicted by the ring since startup."""
        return self._dropped

    def stats(self) -> dict[str, Any]:
        """Buffer occupancy/eviction summary, JSON-ready."""
        with self._lock:
            return {
                "size": len(self._traces),
                "capacity": self.capacity,
                "dropped": self._dropped,
                "slow": self._slow,
                "slow_threshold_seconds": self.slow_threshold,
            }
