"""Thread-safe LRU caches for the routing service.

Two tiers:

* :class:`LRUCache` — an in-memory, thread-safe LRU mapping digests to
  arbitrary values, with hit/miss/eviction counters. Used directly for
  transpile outcomes (which hold circuit objects).
* :class:`ScheduleCache` — an :class:`LRUCache` of
  :class:`~repro.routing.schedule.Schedule` values with an optional
  persistent on-disk tier. Disk entries are binary
  :mod:`repro.routing.codec` frames (``<digest>.rsc``), one file per
  digest, so a warm cache survives process restarts and can be shipped
  between machines. Caches written before the binary format
  (``<digest>.json`` holding a :mod:`repro.routing.serialize` document)
  are still read — a binary miss falls back to the JSON file, and the
  next ``put`` of that digest rewrites it in the new format.

Concurrency notes: all state is guarded by one ``RLock`` per cache.
Disk writes go through a temp-file + ``os.replace`` so a crashed writer
never leaves a truncated entry; corrupt or unreadable disk entries are
treated as misses (and deleted) rather than raised.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import ScheduleError
from ..routing.codec import decode_schedule, encode_schedule
from ..routing.schedule import Schedule
from ..routing.serialize import schedule_from_json

__all__ = ["CacheStats", "LRUCache", "ScheduleCache"]


@dataclass
class CacheStats:
    """Counters for one cache instance (monotonic since construction)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    disk_errors: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from any tier (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Counters plus derived rates, JSON-ready."""
        d = asdict(self)
        d["lookups"] = self.lookups
        d["hit_rate"] = self.hit_rate
        return d


class LRUCache:
    """A bounded, thread-safe, least-recently-used mapping.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept in memory; least recently *used*
        entries are evicted first. Must be positive.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = int(maxsize)
        self._lock = threading.RLock()
        self._data: OrderedDict[str, Any] = OrderedDict()
        self.stats = CacheStats()

    def get(self, digest: str) -> Any | None:
        """The cached value, or ``None`` on a miss (marks the entry used)."""
        with self._lock:
            try:
                value = self._data[digest]
            except KeyError:
                self.stats.misses += 1
                return None
            self._data.move_to_end(digest)
            self.stats.hits += 1
            return value

    def put(self, digest: str, value: Any, cost: float | None = None) -> None:
        """Insert/refresh an entry, evicting the LRU tail if over capacity.

        ``cost`` (seconds spent computing the value) is an admission
        hint: ignored here, consulted by admission-controlled caches
        such as :class:`~repro.service.sharding.ShardedScheduleCache`.
        Accepted everywhere so callers can pass it unconditionally.
        """
        with self._lock:
            if digest in self._data:
                self._data.move_to_end(digest)
            self._data[digest] = value
            self.stats.puts += 1
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> Iterator[str]:
        """Snapshot of the digests, LRU first."""
        with self._lock:
            return iter(list(self._data))

    def discard(self, digest: str) -> bool:
        """Remove one entry if present; returns whether it was held.

        A deliberate removal (key-space handoff re-homed the entry), so
        it does **not** count as an ``evictions`` — that counter means
        "capacity pressure pushed something out".
        """
        with self._lock:
            return self._data.pop(digest, None) is not None

    def clear(self) -> None:
        """Drop every in-memory entry (stats are kept)."""
        with self._lock:
            self._data.clear()

    def as_dict(self) -> dict[str, Any]:
        """Counters plus capacity and occupancy, JSON-ready.

        The one stats-document shape every cache flavour extends
        (sharded caches add per-shard breakdowns, cluster caches a
        ``cluster`` section), so the service stats, the peer
        ``cache_stats`` op and telemetry all agree on the base fields.
        """
        return {
            **self.stats.as_dict(),
            "entries": len(self),
            "maxsize": self.maxsize,
        }


class ScheduleCache(LRUCache):
    """Schedule cache with an optional persistent disk tier.

    Parameters
    ----------
    maxsize:
        In-memory entry bound (see :class:`LRUCache`).
    disk_dir:
        Directory for the persistent tier (created on demand). ``None``
        disables persistence. Each entry is ``<digest>.rsc`` holding a
        binary :func:`~repro.routing.codec.encode_schedule` frame;
        legacy ``<digest>.json`` documents from pre-binary caches are
        read as a fallback.
    """

    def __init__(
        self, maxsize: int = 4096, disk_dir: str | os.PathLike | None = None
    ) -> None:
        super().__init__(maxsize)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _disk_path(self, digest: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{digest}.rsc"

    def _disk_path_json(self, digest: str) -> Path:
        """The pre-binary-format location (read-fallback only)."""
        assert self.disk_dir is not None
        return self.disk_dir / f"{digest}.json"

    def _disk_load(self, digest: str) -> Schedule | None:
        if self.disk_dir is None:
            return None
        path = self._disk_path(digest)
        try:
            data = path.read_bytes()
        except OSError:
            return self._disk_load_json(digest)
        try:
            return decode_schedule(data)
        except ScheduleError:
            self._drop_corrupt(path)
            return None

    def _disk_load_json(self, digest: str) -> Schedule | None:
        """Read-fallback for entries written before the binary format."""
        path = self._disk_path_json(digest)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            return schedule_from_json(data.decode("utf-8"))
        except (UnicodeDecodeError, ScheduleError):
            self._drop_corrupt(path)
            return None

    def _drop_corrupt(self, path: Path) -> None:
        # Corrupt entry: drop it so it is recomputed, not re-served.
        # Concurrent readers can race to this unlink; a file that is
        # already gone was evicted (and counted) by the winner, so
        # the loser tolerates the miss instead of crashing and does
        # not double-count the eviction.
        try:
            path.unlink()
        except FileNotFoundError:
            return
        except OSError:
            pass
        with self._lock:
            self.stats.disk_errors += 1

    def _disk_store(self, digest: str, schedule: Schedule) -> None:
        if self.disk_dir is None:
            return
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            path = self._disk_path(digest)
            # pid+tid so concurrent writers (threads or processes) of the
            # same digest never share a temp file.
            tmp = path.with_suffix(f".tmp{os.getpid()}.{threading.get_ident()}")
            tmp.write_bytes(encode_schedule(schedule))
            os.replace(tmp, path)
            with self._lock:
                self.stats.disk_writes += 1
        except OSError:
            with self._lock:
                self.stats.disk_errors += 1

    # ------------------------------------------------------------------
    # tiered get/put
    # ------------------------------------------------------------------
    def get(self, digest: str) -> Schedule | None:
        """Memory tier first, then disk; disk hits are promoted to memory."""
        with self._lock:
            if digest in self._data:
                self._data.move_to_end(digest)
                self.stats.hits += 1
                return self._data[digest]
        schedule = self._disk_load(digest)
        with self._lock:
            if schedule is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.disk_hits += 1
        # Promote without double-counting a put.
        super().put(digest, schedule)
        with self._lock:
            self.stats.puts -= 1
        return schedule

    def put(self, digest: str, schedule: Schedule, cost: float | None = None) -> None:
        """Store in memory and (if configured) on disk."""
        super().put(digest, schedule, cost=cost)
        self._disk_store(digest, schedule)

    def discard(self, digest: str) -> bool:
        """Remove one entry from both tiers; True if either tier held it.

        The disk copy goes too — a re-homed key left on disk would be
        resurrected (and re-served as if owned) by the next ``get``.
        """
        dropped = super().discard(digest)
        if self.disk_dir is not None:
            for path in (self._disk_path(digest), self._disk_path_json(digest)):
                try:
                    path.unlink()
                    dropped = True
                except OSError:
                    pass
        return dropped

    def as_dict(self) -> dict[str, Any]:
        """The LRU rollup plus the disk-tier location."""
        return {
            **super().as_dict(),
            "disk_dir": str(self.disk_dir) if self.disk_dir else None,
        }
