"""Sharded, admission-controlled schedule caching.

One global ``RLock`` per cache is fine for a single worker thread, but
an async front end (many in-flight requests) or a daemon serving
several connections turns that lock into a point of contention. The
:class:`ShardedScheduleCache` partitions the key space by fingerprint
prefix into N independent :class:`~repro.service.cache.ScheduleCache`
shards, each with its own lock (and its own disk subdirectory when
persistence is on), so lookups for different keys proceed without
queueing on one another.

Sharding also creates the natural seam for **admission control**: not
every computed schedule is worth caching. A 3x3 identity-adjacent
routing instance recomputes in microseconds — caching it evicts
entries that took milliseconds to compute. An
:class:`AdmissionPolicy` decides, per ``put``, whether a schedule is
admitted; :class:`CostThresholdAdmission` implements the standard
"skip trivially cheap instances" rule using the compute-seconds hint
that the executor passes to ``put`` (plus an optional schedule-size
floor for when no timing is available).

Key-space mapping: shard index is the first 8 hex chars of the SHA-256
digest mod ``n_shards``. Digests are uniform, so shards stay balanced
for any request mix; the mapping is stable across processes and
restarts (the disk layout depends on it).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterator

from ..routing.schedule import Schedule
from .cache import CacheStats, ScheduleCache

__all__ = [
    "AdmissionPolicy",
    "admit_all",
    "CostThresholdAdmission",
    "ShardedScheduleCache",
    "shard_index",
]


#: An admission policy: ``(digest, schedule, cost_seconds) -> admit?``.
#: ``cost_seconds`` is ``None`` when the caller did not measure the
#: compute time (policies should admit in that case — unknown cost must
#: not silently disable caching).
AdmissionPolicy = Callable[[str, Schedule, "float | None"], bool]


def admit_all(digest: str, schedule: Schedule, cost: float | None) -> bool:
    """The default policy: every schedule is admitted."""
    return True


class CostThresholdAdmission:
    """Admit only schedules that were expensive enough to be worth caching.

    Parameters
    ----------
    min_seconds:
        Schedules computed faster than this are rejected (recomputing
        them is cheaper than the cache space they'd occupy). Applied
        only when the caller supplied a cost; unknown cost admits.
    min_size:
        Schedules with fewer swaps than this are rejected regardless of
        timing — a size-based floor for callers that don't measure.

    >>> policy = CostThresholdAdmission(min_seconds=1e-3)
    >>> from repro.graphs import GridGraph
    >>> from repro.perm import random_permutation
    >>> from repro.routing import route
    >>> sched = route(GridGraph(3, 3), random_permutation(GridGraph(3, 3), seed=0))
    >>> policy("digest", sched, 5.0)
    True
    >>> policy("digest", sched, 1e-6)
    False
    >>> policy("digest", sched, None)  # unknown cost is admitted
    True
    """

    def __init__(self, min_seconds: float = 0.0, min_size: int = 0) -> None:
        if min_seconds < 0 or min_size < 0:
            raise ValueError("thresholds must be non-negative")
        self.min_seconds = float(min_seconds)
        self.min_size = int(min_size)

    def __call__(self, digest: str, schedule: Schedule, cost: float | None) -> bool:
        if schedule.size < self.min_size:
            return False
        if cost is not None and cost < self.min_seconds:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostThresholdAdmission(min_seconds={self.min_seconds}, "
            f"min_size={self.min_size})"
        )


def shard_index(digest: str, n_shards: int) -> int:
    """The shard owning ``digest``: first 8 hex chars mod ``n_shards``."""
    return int(digest[:8], 16) % n_shards


class ShardedScheduleCache:
    """N independently-locked :class:`ScheduleCache` shards behind one API.

    Drop-in for :class:`ScheduleCache` where the service layer is
    concerned: ``get`` / ``put`` / ``__contains__`` / ``__len__`` /
    ``keys`` / ``clear`` / ``stats`` / ``maxsize`` / ``disk_dir`` all
    behave identically (see the agreement property test), with two
    additions — per-shard stats rollup and pluggable admission.

    Parameters
    ----------
    maxsize:
        Total in-memory capacity, split evenly across shards (each
        shard gets ``ceil(maxsize / n_shards)``, minimum 1).
    n_shards:
        Number of shards; must be positive. 1 degenerates to a plain
        (admission-controlled) cache.
    disk_dir:
        Root of the persistent tier; each shard persists under
        ``<disk_dir>/shard-<i>``. ``None`` disables persistence.
    admission:
        :data:`AdmissionPolicy` consulted on every ``put``; rejected
        schedules are simply not stored (the put is counted in
        ``rejected_puts``). Default admits everything.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        n_shards: int = 8,
        disk_dir: str | os.PathLike | None = None,
        admission: AdmissionPolicy | None = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = int(maxsize)
        self.n_shards = int(n_shards)
        self.disk_dir = disk_dir
        self.admission = admission or admit_all
        self.rejected_puts = 0
        per_shard = max(1, -(-self.maxsize // self.n_shards))  # ceil div
        self._shards = []
        for i in range(self.n_shards):
            shard_dir = (
                os.path.join(os.fspath(disk_dir), f"shard-{i}")
                if disk_dir is not None
                else None
            )
            self._shards.append(ScheduleCache(maxsize=per_shard, disk_dir=shard_dir))

    def _shard(self, digest: str) -> ScheduleCache:
        return self._shards[shard_index(digest, self.n_shards)]

    # ------------------------------------------------------------------
    # the ScheduleCache surface
    # ------------------------------------------------------------------
    def get(self, digest: str) -> Schedule | None:
        """The cached schedule, or ``None`` — only ``digest``'s shard locks."""
        return self._shard(digest).get(digest)

    def put(self, digest: str, schedule: Schedule, cost: float | None = None) -> None:
        """Store a schedule if the admission policy accepts it."""
        if not self.admission(digest, schedule, cost):
            self.rejected_puts += 1  # benign race: an approximate counter
            return
        self._shard(digest).put(digest, schedule, cost=cost)

    def __contains__(self, digest: str) -> bool:
        return digest in self._shard(digest)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def keys(self) -> Iterator[str]:
        """All digests, shard by shard (LRU first within a shard)."""
        for shard in self._shards:
            yield from shard.keys()

    def discard(self, digest: str) -> bool:
        """Remove one entry from its owning shard; True when present."""
        return self._shard(digest).discard(digest)

    def clear(self) -> None:
        """Drop every in-memory entry in every shard."""
        for shard in self._shards:
            shard.clear()

    # ------------------------------------------------------------------
    # stats rollup
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Aggregated counters across all shards (a fresh snapshot)."""
        total = CacheStats()
        for shard in self._shards:
            s = shard.stats
            total.hits += s.hits
            total.misses += s.misses
            total.evictions += s.evictions
            total.puts += s.puts
            total.disk_hits += s.disk_hits
            total.disk_writes += s.disk_writes
            total.disk_errors += s.disk_errors
        return total

    def per_shard_stats(self) -> list[dict[str, Any]]:
        """One stats dict per shard (for telemetry / ``stats()`` rollup)."""
        return [
            {"shard": i, "entries": len(s), **s.stats.as_dict()}
            for i, s in enumerate(self._shards)
        ]

    def disk_errors_by_shard(self) -> dict[int, int]:
        """Shard index -> disk-error count, for shards with any errors.

        The summed rollup hides a single failing shard's disk tier
        behind healthy neighbours; this map (also exported per-shard to
        Prometheus) points straight at the broken one.
        """
        return {
            i: s.stats.disk_errors
            for i, s in enumerate(self._shards)
            if s.stats.disk_errors
        }

    def as_dict(self) -> dict[str, Any]:
        """Rollup plus per-shard breakdown, JSON-ready."""
        return {
            **self.stats.as_dict(),
            "entries": len(self),
            "maxsize": self.maxsize,
            "n_shards": self.n_shards,
            "rejected_puts": self.rejected_puts,
            "disk_dir": str(self.disk_dir) if self.disk_dir else None,
            "disk_errors_by_shard": {
                str(i): n for i, n in self.disk_errors_by_shard().items()
            },
            "shards": self.per_shard_stats(),
        }
