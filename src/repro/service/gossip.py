"""SWIM-style gossip membership layered on :class:`ClusterTopology`.

PR 5 made ring membership dynamic but *administered*: joins and leaves
arrive via the ``repro topology`` CLI or a watched file, so a crashed
shard stays in the ring until an operator notices. This module closes
that gap with the SWIM failure-detector pattern (Das et al., DSN 2002),
adapted to this codebase's synchronous request/reply transports:

* **Probing** — every :meth:`GossipNode.tick` pings one ring member
  (round-robin over a shuffled cycle, so every member is probed within
  ``N - 1`` ticks). A ping is one ``gossip`` op carrying this node's
  full view — epoch, member list and per-member state — and the ack
  carries the receiver's view back, so every exchange is also an
  anti-entropy round; there is no separate "sync" traffic.
* **Suspicion before death** — a failed direct probe falls back to
  ``indirect_probes`` randomly chosen proxies (the SWIM ``ping-req``):
  each proxy probes the target itself and reports back. Only when the
  direct and every indirect probe fail is the target marked *suspect*;
  only after ``suspicion_timeout`` more seconds without contradiction
  is it declared *dead* and removed from the topology (one epoch bump,
  spread to every member by the normal probe traffic — no admin CLI).
* **Incarnations and refutation** — every state claim carries the
  subject's incarnation number, and only the subject may increment it.
  A falsely suspected node learns of the suspicion from the piggyback,
  bumps its incarnation and is alive again one round trip later; a
  node that learns it was declared dead refutes the same way and
  rejoins the ring. Claims merge by the SWIM lattice: a higher
  incarnation always wins, and at equal incarnation ``dead`` beats
  ``suspect`` beats ``alive``.
* **Epoch convergence** — a strictly newer ``(epoch, members)`` pair
  replaces the local topology outright. When two views share an epoch
  but disagree on membership (concurrent deaths on both sides of a
  healed partition), both sides install the member *union* at
  ``epoch + 1`` — a commutative, idempotent merge, so both arrive at
  the same view — and any node wrongly resurrected by the union is
  re-removed by the still-circulating ``dead`` claim.

Because the protocol is timer- and randomness-driven, everything above
is written against an injectable clock, RNG and transport. Production
wires :class:`PeerGossipTransport` (the ``gossip`` op over NDJSON or
HTTP via :class:`~repro.service.cluster.RemoteShardClient`) and drives
ticks from a :class:`GossipRunner` thread (``repro serve
--gossip-interval``). Tests instead build a :class:`SimNetwork`: a
virtual clock, per-node seeded RNGs and per-link fault rules (drop
probability, delay, partition, crash), so every protocol path —
suspicion, refutation, false-positive recovery, partition heal — runs
as a deterministic unit test instead of a sleep-based integration
test. See ``docs/OPERATIONS.md`` for tunables and the flapping-node
runbook.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Protocol

from ..errors import ClusterShardError, ReproError
from .cluster import ClusterTopology, RemoteShardClient, TopologyView
from .logging import get_logger
from .telemetry import Telemetry

__all__ = [
    "GossipConfig",
    "GossipNode",
    "GossipRunner",
    "GossipTransport",
    "MemberState",
    "PeerGossipTransport",
    "SimNetwork",
    "SimTransport",
]

#: Seconds between probe rounds in production (``--gossip-interval``).
DEFAULT_GOSSIP_INTERVAL = 1.0
#: Seconds a suspect may refute before being declared dead.
DEFAULT_SUSPICION_TIMEOUT = 5.0
#: Proxies asked to probe an unreachable target before suspecting it.
DEFAULT_INDIRECT_PROBES = 3
#: Transport timeout for production gossip messages. Deliberately much
#: shorter than the cache's shard timeout: a slow ack is as good as a
#: lost one to a failure detector.
DEFAULT_GOSSIP_TIMEOUT = 2.0

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: Tiebreak at equal incarnation: a stronger claim wins.
_STATUS_RANK = {ALIVE: 0, SUSPECT: 1, DEAD: 2}


@dataclass(frozen=True)
class GossipConfig:
    """Tunables for one :class:`GossipNode`.

    ``interval`` is the seconds between probe rounds (the
    :class:`GossipRunner` tick period; the simulated clock advances by
    it per round), ``suspicion_timeout`` the seconds a suspect has to
    refute before it is declared dead, and ``indirect_probes`` the
    number of proxies asked to reach an unresponsive target first.
    """

    interval: float = DEFAULT_GOSSIP_INTERVAL
    suspicion_timeout: float = DEFAULT_SUSPICION_TIMEOUT
    indirect_probes: int = DEFAULT_INDIRECT_PROBES

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.suspicion_timeout <= 0:
            raise ValueError(
                f"suspicion_timeout must be positive, got {self.suspicion_timeout}"
            )
        if self.indirect_probes < 0:
            raise ValueError(
                f"indirect_probes must be >= 0, got {self.indirect_probes}"
            )


@dataclass
class MemberState:
    """One member's last known state (guarded by the node's lock).

    ``suspect_since`` is *this* node's local clock reading when the
    member entered suspicion — each node runs its own timeout rather
    than trusting a remote timestamp (clocks are not comparable).
    """

    status: str = ALIVE
    incarnation: int = 0
    suspect_since: float | None = None

    def as_doc(self) -> dict[str, Any]:
        """The wire shape of this state claim."""
        return {"status": self.status, "incarnation": self.incarnation}


class GossipTransport(Protocol):
    """How a :class:`GossipNode` reaches a peer (sync request/reply)."""

    def send(self, node: str, doc: dict[str, Any]) -> dict[str, Any]:
        """Deliver one gossip document to ``node``; return its ack.

        Raises :class:`~repro.errors.ReproError` (typically
        :class:`~repro.errors.ClusterShardError`) when the peer cannot
        be reached — the signal the failure detector exists to observe.
        """
        ...


class PeerGossipTransport:
    """The production transport: the ``gossip`` op over either protocol.

    Lazily keeps one :class:`~repro.service.cluster.RemoteShardClient`
    per peer address (UNIX socket path or ``http://`` base URL) and
    reuses its connection across rounds. :meth:`forget` drops a
    departed peer's client — :class:`GossipNode` calls it from its
    topology subscription so dead members do not leak connections.
    """

    def __init__(
        self,
        timeout: float = DEFAULT_GOSSIP_TIMEOUT,
        client_factory: Callable[[str], Any] | None = None,
    ) -> None:
        self.timeout = float(timeout)
        self._factory = client_factory or (
            lambda address: RemoteShardClient(address, timeout=self.timeout)
        )
        self._lock = threading.Lock()
        self._clients: dict[str, Any] = {}

    def send(self, node: str, doc: dict[str, Any]) -> dict[str, Any]:
        """Send one gossip document to the peer dialed at ``node``."""
        with self._lock:
            client = self._clients.get(node)
            if client is None:
                client = self._clients[node] = self._factory(node)
        return client.gossip(doc)

    def forget(self, node: str) -> None:
        """Close and drop the cached client for a departed peer."""
        with self._lock:
            client = self._clients.pop(node, None)
        if client is not None:
            try:
                client.close()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass

    def close(self) -> None:
        """Close every cached peer client."""
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass


class GossipNode:
    """One ring member's SWIM state machine (transport-agnostic).

    The node *observes and mutates* the shared
    :class:`~repro.service.cluster.ClusterTopology` — a confirmed death
    applies ``topology.leave`` (one epoch bump the cluster cache and
    every peer converge on), a refuted death applies ``topology.join``
    — and subscribes to it, so administrative changes made through the
    ``topology_update`` op flow into the gossip state too.

    Parameters
    ----------
    node_id:
        This node's ring id (the address peers dial).
    topology:
        The shared epoch-versioned membership to keep honest.
    transport:
        How to reach peers (:class:`PeerGossipTransport` in production,
        :class:`SimTransport` in tests).
    config:
        Protocol tunables; ``None`` uses the defaults.
    clock:
        Monotonic-seconds source (injectable for the simulator).
    rng:
        Randomness for probe-order shuffling and proxy sampling
        (seedable for the simulator).
    telemetry:
        Optional registry; protocol counters mirror into it as
        ``gossip_<name>`` counters.

    Thread safety: ``tick`` (the runner thread) and ``handle`` (the
    transport threads) may run concurrently; all member state is
    guarded by one re-entrant lock, and network sends happen outside
    it.
    """

    def __init__(
        self,
        node_id: str,
        topology: ClusterTopology,
        transport: GossipTransport,
        config: GossipConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        rng: random.Random | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not node_id:
            raise ValueError("node_id must be a non-empty string")
        self.node_id = node_id
        self.topology = topology
        self.transport = transport
        self.config = config or GossipConfig()
        self.telemetry = telemetry
        #: This node's own incarnation; only refutation increments it.
        self.incarnation = 0
        #: Protocol event counters (see ``_incr`` call sites).
        self.counters: dict[str, int] = {}
        self._clock = clock
        self._rng = rng or random.Random()
        self._lock = threading.RLock()
        self._states: dict[str, MemberState] = {
            member: MemberState()
            for member in topology.members
            if member != node_id
        }
        self._probe_queue: list[str] = []
        topology.subscribe(self._on_topology_change)

    def close(self) -> None:
        """Stop observing the topology (idempotent)."""
        self.topology.unsubscribe(self._on_topology_change)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def member_states(self) -> dict[str, dict[str, Any]]:
        """A snapshot of every tracked member's state document."""
        with self._lock:
            return {node: state.as_doc() for node, state in self._states.items()}

    def as_dict(self) -> dict[str, Any]:
        """Protocol state for stats documents, JSON-ready."""
        with self._lock:
            return {
                "node_id": self.node_id,
                "incarnation": self.incarnation,
                "interval": self.config.interval,
                "suspicion_timeout": self.config.suspicion_timeout,
                "members": {
                    node: state.as_doc() for node, state in self._states.items()
                },
                "counters": dict(self.counters),
            }

    def _incr(self, name: str) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + 1
        if self.telemetry is not None:
            self.telemetry.incr(f"gossip_{name}")

    # ------------------------------------------------------------------
    # the wire documents
    # ------------------------------------------------------------------
    def wire_doc(self, kind: str | None = None) -> dict[str, Any]:
        """This node's full view as one gossip document.

        Piggybacked on every probe and every ack: the topology's
        ``(epoch, members)`` pair plus every known member-state claim,
        with this node always claiming itself alive at its current
        incarnation (the refutation carrier).
        """
        with self._lock:
            states = {node: state.as_doc() for node, state in self._states.items()}
            states[self.node_id] = {"status": ALIVE, "incarnation": self.incarnation}
        view = self.topology.view()
        doc: dict[str, Any] = {
            "from": self.node_id,
            "epoch": view.epoch,
            "members": sorted(view.members),
            "states": states,
        }
        if kind is not None:
            doc["kind"] = kind
        return doc

    def handle(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one incoming gossip document; returns the ack body.

        ``kind: "ping"`` merges the sender's view and acks. ``kind:
        "ping_req"`` additionally probes ``target`` on the sender's
        behalf (the indirect-probe path) and acks with the outcome.
        Every ack carries this node's (post-merge) view back.

        Raises
        ------
        ReproError
            On a malformed document (unknown kind, bad ``target``).
        """
        if not isinstance(doc, Mapping):
            raise ReproError("gossip payload must be a JSON object")
        kind = doc.get("kind", "ping")
        if kind not in ("ping", "ping_req"):
            raise ReproError(f"unknown gossip kind {kind!r}")
        self.merge(doc)
        ack = True
        if kind == "ping_req":
            target = doc.get("target")
            if not isinstance(target, str) or not target:
                raise ReproError("'target' must be a non-empty string for ping_req")
            self._incr("proxy_probes")
            resp = self._try_send(target, self.wire_doc("ping"))
            if resp is None:
                ack = False
            else:
                self.merge(resp)
                ack = bool(resp.get("ack", True))
        return {"ack": ack, **self.wire_doc()}

    # ------------------------------------------------------------------
    # the probe cycle
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One protocol round: expire suspects, probe one member.

        Driven by the :class:`GossipRunner` thread in production and by
        :meth:`SimNetwork.run_round` in tests. Never raises for an
        unreachable peer — that is the observation, not an error.
        """
        now = self._clock()
        expired: list[str] = []
        with self._lock:
            for node, state in sorted(self._states.items()):
                if (
                    state.status == SUSPECT
                    and state.suspect_since is not None
                    and now - state.suspect_since >= self.config.suspicion_timeout
                ):
                    state.status = DEAD
                    state.suspect_since = None
                    expired.append(node)
        for node in expired:
            self._apply_death(node)
        target = self._next_target()
        if target is None:
            return
        with self._lock:
            state = self._states.get(target)
            target_dead = state is not None and state.status == DEAD
        if target_dead:
            # A resurrection probe: dead latches stay in the rotation so
            # a healed partition (both sides removed each other) can
            # reconnect — the ping carries our dead claim, the target
            # refutes it, and the ack's view merges both sides back
            # together. Direct ping only: no proxies, no suspicion
            # bookkeeping for a node already past dead.
            self._incr("resurrection_probes")
            resp = self._try_send(target, self.wire_doc("ping"))
            if resp is not None:
                self.merge(resp)
            return
        if self._probe(target):
            return
        with self._lock:
            state = self._states.get(target)
            if state is not None and state.status == ALIVE:
                state.status = SUSPECT
                state.suspect_since = self._clock()
                self._incr("suspicions")

    def _next_target(self) -> str | None:
        """The next probe target: round-robin over a shuffled cycle.

        Dead-latched members stay in the rotation (see the resurrection
        probe in :meth:`tick`); a cycle therefore visits every tracked
        state once, in a per-cycle shuffled order.
        """
        with self._lock:
            while True:
                if not self._probe_queue:
                    if not self._states:
                        return None
                    queue = sorted(self._states)
                    self._rng.shuffle(queue)
                    self._probe_queue = queue
                node = self._probe_queue.pop()
                if node in self._states:
                    return node

    def _probe(self, target: str) -> bool:
        """Direct probe, then indirect via sampled proxies; True = alive."""
        self._incr("probes")
        resp = self._try_send(target, self.wire_doc("ping"))
        if resp is not None:
            self.merge(resp)
            if resp.get("ack", True):
                return True
        with self._lock:
            eligible = sorted(
                node
                for node, state in self._states.items()
                if state.status != DEAD and node != target
            )
        k = min(self.config.indirect_probes, len(eligible))
        if 0 < k < len(eligible):
            proxies = self._rng.sample(eligible, k)
        else:
            proxies = eligible[:k]
        for proxy in proxies:
            self._incr("indirect_probes")
            resp = self._try_send(
                proxy, {**self.wire_doc("ping_req"), "target": target}
            )
            if resp is None:
                continue
            self.merge(resp)
            if resp.get("ack"):
                return True
        self._incr("probe_failures")
        return False

    def _try_send(self, node: str, doc: dict[str, Any]) -> dict[str, Any] | None:
        try:
            resp = self.transport.send(node, doc)
        except ReproError:
            return None
        return resp if isinstance(resp, Mapping) else None

    # ------------------------------------------------------------------
    # merging remote views
    # ------------------------------------------------------------------
    def merge(self, doc: Mapping[str, Any]) -> None:
        """Fold a peer's gossip document into local state.

        Malformed fields are skipped, never raised — a half-garbled
        view from a confused peer must not take the detector down.
        """
        # A dead claim often rides in the very document whose epoch
        # removes its subject; snapshot the pre-merge membership so the
        # claim still lands as a latch after the replace (otherwise the
        # subject would look like stale chatter and the death — or its
        # refutation — would stop spreading here).
        members_before = self.topology.members
        epoch = doc.get("epoch")
        members = doc.get("members")
        if (
            isinstance(epoch, int)
            and not isinstance(epoch, bool)
            and isinstance(members, list)
            and all(isinstance(m, str) and m for m in members)
        ):
            self._merge_epoch(epoch, members)
        states = doc.get("states")
        if isinstance(states, Mapping):
            self._merge_states(states, members_before)

    def _merge_epoch(self, epoch: int, members: Sequence[str]) -> None:
        view = self.topology.view()
        if epoch > view.epoch:
            # Strictly newer wins outright: the sender has seen changes
            # this node has not.
            try:
                self.topology.replace(sorted(members), epoch=epoch)
            except ReproError:
                pass  # lost a race to an even newer epoch
        elif epoch == view.epoch and set(members) != view.members:
            # Same epoch, different members: concurrent changes on both
            # sides of a partition. Install the union one epoch up —
            # commutative and idempotent, so both sides land on the
            # same view; wrongly resurrected members are re-removed by
            # their still-circulating dead claims.
            merged = sorted(set(members) | view.members)
            try:
                self.topology.replace(merged, epoch=epoch + 1)
            except ReproError:
                pass
            self._incr("epoch_merges")

    @staticmethod
    def _supersedes(status: str, incarnation: int, current: MemberState) -> bool:
        if incarnation != current.incarnation:
            return incarnation > current.incarnation
        return _STATUS_RANK[status] > _STATUS_RANK[current.status]

    def _merge_states(
        self,
        states: Mapping[str, Any],
        former_members: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        deaths: list[str] = []
        rejoins: list[str] = []
        rejoin_self = False
        with self._lock:
            members = self.topology.members
            for node in sorted(states):
                claim = states[node]
                if not isinstance(claim, Mapping):
                    continue
                status = claim.get("status")
                incarnation = claim.get("incarnation")
                if (
                    status not in _STATUS_RANK
                    or not isinstance(incarnation, int)
                    or isinstance(incarnation, bool)
                    or incarnation < 0
                ):
                    continue
                if node == self.node_id:
                    if self._merge_self_claim(str(status), incarnation):
                        rejoin_self = True
                    continue
                current = self._states.get(node)
                if current is None:
                    if node in members or (
                        node in former_members and status == DEAD
                    ):
                        # Current members are always tracked; a dead
                        # claim about a member the same document just
                        # removed becomes a latch (so the death keeps
                        # spreading and resurrection probes run).
                        current = self._states[node] = MemberState()
                    else:
                        continue  # stale chatter about a forgotten node
                if not self._supersedes(str(status), incarnation, current):
                    continue
                was_dead = current.status == DEAD
                current.incarnation = incarnation
                current.status = str(status)
                if status == SUSPECT:
                    # Run our own timeout from our own clock; remote
                    # timestamps are not comparable across nodes.
                    if current.suspect_since is None:
                        current.suspect_since = self._clock()
                else:
                    current.suspect_since = None
                if status == DEAD:
                    if not was_dead:
                        deaths.append(node)
                elif was_dead:
                    rejoins.append(node)
        for node in deaths:
            self._apply_death(node)
        for node in rejoins:
            self._apply_rejoin(node)
        if rejoin_self and self.node_id not in self.topology.members:
            self._apply_rejoin(self.node_id)

    def _merge_self_claim(self, status: str, incarnation: int) -> bool:
        """Handle a claim about *this* node; True = rejoin the ring.

        Caller holds the lock. An alive claim at a higher incarnation
        is adopted (a restarted process catching up with its old self);
        a suspect or dead claim at our incarnation or above is refuted
        by incrementing past it — the next outgoing document carries
        the new incarnation and beats the stale claim everywhere.
        """
        if status == ALIVE:
            if incarnation > self.incarnation:
                self.incarnation = incarnation
            return False
        if incarnation >= self.incarnation:
            self.incarnation = incarnation + 1
            self._incr("refutations")
            return status == DEAD
        return False

    def _apply_death(self, node: str) -> None:
        """Remove a confirmed-dead member from the shared topology."""
        try:
            self.topology.leave(node)
        except ReproError:
            pass  # another path (or another node's epoch) removed it first
        self._incr("deaths")

    def _apply_rejoin(self, node: str) -> None:
        """Re-admit a refuted member (or this node itself) to the ring."""
        try:
            self.topology.join(node)
        except ReproError:
            pass  # already re-admitted via a newer epoch
        self._incr("rejoins")

    # ------------------------------------------------------------------
    # topology subscription
    # ------------------------------------------------------------------
    def _on_topology_change(self, old: TopologyView, new: TopologyView) -> None:
        """Track membership edits from any source (admin CLI included)."""
        with self._lock:
            for node in sorted(new.members - old.members):
                if node == self.node_id:
                    continue
                state = self._states.get(node)
                if state is None:
                    self._states[node] = MemberState()
                elif state.status == DEAD:
                    # Readmitted by a newer epoch before its refutation
                    # reached us; keep the incarnation (its own claims
                    # have moved past it) but stop calling it dead.
                    state.status = ALIVE
                    state.suspect_since = None
            for node in sorted(old.members - new.members):
                state = self._states.get(node)
                if state is not None and state.status != DEAD:
                    # A clean leave: forget it. A death keeps its latch
                    # so the dead claim spreads until everyone knows.
                    del self._states[node]
            self._probe_queue = [n for n in self._probe_queue if n in new.members]
        forget = getattr(self.transport, "forget", None)
        if forget is None:
            return
        for node in sorted(old.members - new.members):
            if node == self.node_id:
                continue
            try:
                forget(node)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass


class GossipRunner:
    """Drives :meth:`GossipNode.tick` from a daemon background thread.

    ``repro serve --gossip-interval`` starts one; the interval defaults
    to the node's configured one. A tick that raises is logged and the
    loop continues — the failure detector must not die of one bad
    round.
    """

    def __init__(self, node: GossipNode, interval: float | None = None) -> None:
        self.node = node
        self.interval = float(
            interval if interval is not None else node.config.interval
        )
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._log = get_logger("repro.service.gossip")

    def start(self) -> None:
        """Start the probe loop (idempotent while running)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-gossip", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.node.tick()
            except Exception:  # noqa: BLE001 - one bad round must not stop probing
                self._log.exception("gossip tick failed")

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the probe loop and join the thread (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None


# ----------------------------------------------------------------------
# the deterministic simulation harness
# ----------------------------------------------------------------------
class SimTransport:
    """One simulated node's :class:`GossipTransport` (see :class:`SimNetwork`)."""

    def __init__(self, network: "SimNetwork", node_id: str) -> None:
        self.network = network
        self.node_id = node_id

    def send(self, node: str, doc: dict[str, Any]) -> dict[str, Any]:
        """Route the document through the simulated network."""
        return self.network.deliver(self.node_id, node, doc)


class SimNetwork:
    """An in-memory gossip cluster with a virtual clock and fault rules.

    Every source of nondeterminism is pinned: time only moves when
    :meth:`advance` (or :meth:`run_round`) moves it, every node's RNG
    is seeded from ``seed`` and its id, link-level drops draw from one
    seeded RNG, and nodes tick in sorted-id order. The same seed and
    the same fault script therefore replay the same protocol history,
    byte for byte — which is what makes suspicion, refutation and
    partition-heal unit-testable.

    Fault injection is per directed link or per node:

    * :meth:`crash` — the node stops ticking and answering (SIGKILL).
    * :meth:`partition` — both directions of a link fail outright.
    * :meth:`set_drop` — each message on the link is lost with a
      probability (drawn from the seeded RNG).
    * :meth:`set_delay` — messages slower than ``timeout`` count as
      lost (a synchronous transport cannot tell late from never).
    * :meth:`heal` — remove one link's rules, or all of them.

    Documents cross the "wire" through a JSON round trip, so anything
    a node tries to gossip must really be wire-serializable.
    """

    def __init__(
        self,
        seed: int = 0,
        config: GossipConfig | None = None,
        timeout: float = 1.0,
    ) -> None:
        self.seed = int(seed)
        self.config = config or GossipConfig()
        self.timeout = float(timeout)
        self.now = 0.0
        self.nodes: dict[str, GossipNode] = {}
        self.crashed: set[str] = set()
        self.delivered = 0
        self.failed = 0
        self._rules: dict[tuple[str, str], dict[str, float]] = {}
        self._drop_rng = random.Random(self.seed ^ 0x5EED)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """The virtual monotonic clock (inject as every node's clock)."""
        return self.now

    def advance(self, seconds: float) -> None:
        """Move virtual time forward."""
        self.now += float(seconds)

    def _node_rng(self, node_id: str) -> random.Random:
        # sha256, not hash(): str hashing is salted per process and
        # would break cross-run determinism.
        digest = hashlib.sha256(node_id.encode("utf-8")).digest()
        return random.Random(self.seed ^ int.from_bytes(digest[:8], "big"))

    def add_node(
        self,
        node_id: str,
        members: Sequence[str],
        *,
        epoch: int = 1,
        topology: ClusterTopology | None = None,
    ) -> GossipNode:
        """Create and register one simulated member.

        ``members`` seeds the node's own :class:`ClusterTopology` at
        ``epoch`` (pass an explicit ``topology`` to share or pre-shape
        one). A mid-test joiner typically starts with the sponsor's
        member set plus itself at ``sponsor.epoch + 1`` and gossips
        itself into everyone else.
        """
        if node_id in self.nodes:
            raise ValueError(f"sim node {node_id!r} already exists")
        if topology is None:
            topology = ClusterTopology(sorted(set(members)), epoch=epoch)
        node = GossipNode(
            node_id,
            topology,
            SimTransport(self, node_id),
            self.config,
            clock=self.clock,
            rng=self._node_rng(node_id),
        )
        self.nodes[node_id] = node
        return node

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def crash(self, node_id: str) -> None:
        """SIGKILL the node: it stops ticking and answering."""
        self.crashed.add(node_id)

    def revive(self, node_id: str) -> None:
        """Undo :meth:`crash` (the process is back, state intact)."""
        self.crashed.discard(node_id)

    def _set_rule(self, a: str, b: str, key: str, value: float) -> None:
        for link in ((a, b), (b, a)):
            self._rules.setdefault(link, {})[key] = value

    def partition(self, a: str, b: str) -> None:
        """Cut the link between ``a`` and ``b`` (both directions)."""
        self._set_rule(a, b, "drop", 1.0)

    def set_drop(self, a: str, b: str, probability: float) -> None:
        """Lose each message on the link with this probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._set_rule(a, b, "drop", probability)

    def set_delay(self, a: str, b: str, seconds: float) -> None:
        """Delay the link; at or past ``timeout`` it behaves as lost."""
        self._set_rule(a, b, "delay", float(seconds))

    def heal(self, a: str | None = None, b: str | None = None) -> None:
        """Remove one link's fault rules, or every rule when no link given."""
        if a is None and b is None:
            self._rules.clear()
            return
        if a is None or b is None:
            raise ValueError("heal takes both endpoints, or neither")
        self._rules.pop((a, b), None)
        self._rules.pop((b, a), None)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _check_link(self, src: str, dst: str, what: str) -> None:
        rule = self._rules.get((src, dst))
        if rule is None:
            return
        drop = rule.get("drop", 0.0)
        if drop > 0.0 and self._drop_rng.random() < drop:
            self.failed += 1
            raise ClusterShardError(f"sim link {src}->{dst} dropped the {what}")
        if rule.get("delay", 0.0) >= self.timeout:
            self.failed += 1
            raise ClusterShardError(f"sim link {src}->{dst} timed out")

    def deliver(self, src: str, dst: str, doc: dict[str, Any]) -> dict[str, Any]:
        """One request/reply exchange, subject to the fault rules."""
        if src in self.crashed:
            raise ClusterShardError(f"sim node {src} is down")
        # The JSON round trip plays the role of the wire: it both
        # proves serializability and severs shared mutable state.
        wire = json.loads(json.dumps(doc))
        if dst not in self.nodes or dst in self.crashed:
            self.failed += 1
            raise ClusterShardError(f"sim node {dst} is unreachable")
        self._check_link(src, dst, "request")
        response = self.nodes[dst].handle(wire)
        self._check_link(dst, src, "reply")
        self.delivered += 1
        return json.loads(json.dumps(response))

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def live_nodes(self) -> list[GossipNode]:
        """Every non-crashed node, in id order."""
        return [
            self.nodes[node_id]
            for node_id in sorted(self.nodes)
            if node_id not in self.crashed
        ]

    def run_round(self) -> None:
        """Tick every live node once (id order), then advance one interval."""
        for node in self.live_nodes():
            node.tick()
        self.advance(self.config.interval)

    def converged(self) -> bool:
        """Whether every live node reports one ``(epoch, members)`` pair."""
        views = {
            (node.topology.epoch, node.topology.members)
            for node in self.live_nodes()
        }
        return len(views) <= 1

    def run_until_converged(self, max_rounds: int) -> int:
        """Run rounds until convergence; returns the rounds consumed.

        Raises
        ------
        AssertionError
            When the cluster still disagrees after ``max_rounds`` — the
            failure mode the bounded-convergence property tests gate.
        """
        for rounds in range(int(max_rounds) + 1):
            if self.converged():
                return rounds
            self.run_round()
        views = {
            node.node_id: (node.topology.epoch, sorted(node.topology.members))
            for node in self.live_nodes()
        }
        raise AssertionError(
            f"gossip did not converge within {max_rounds} rounds: {views}"
        )
