"""Multi-tenant admission control and weighted-fair scheduling.

The request pipeline (:mod:`repro.service.pipeline`) needs a notion of
*who* is calling before it can protect the service from overload: mixed
routing workloads have wildly heterogeneous per-request cost (grid size
swings compute by orders of magnitude), so one abusive tenant
submitting large-grid requests can starve everyone if admission is
blind. This module owns everything tenant-shaped:

* :class:`Tenant` — one caller's identity and policy (API key, WFQ
  ``weight``, token-bucket ``rate``/``burst``, ``max_inflight`` /
  ``max_queued`` quotas).
* :class:`TenantRegistry` — API-key → tenant resolution with a
  pluggable ``auth_hook``, the per-tenant token buckets, and the
  per-tenant outcome counters surfaced under ``stats()["tenancy"]``.
  An *open* registry (no tenants configured) admits everything as the
  ``default`` tenant, so single-user deployments pay nothing.
* :class:`TokenBucket` — a monotonic-clock token bucket whose refusals
  carry a ``retry_after`` hint (the pipeline turns it into the stable
  ``rate_limited`` code / HTTP 429 ``Retry-After``).
* :class:`FairScheduler` — start-time fair queueing (SFQ) over the
  worker pool: each request is tagged with a virtual start/finish time
  (``cost / weight``), the waiter with the minimum start tag runs next,
  and a tenant's share of the pool converges to its weight share
  regardless of how fast it submits. This replaces the plain
  semaphore-plus-FIFO the async facade used to run.

Request cost is the same estimate the cache admission policy
(:class:`~repro.service.sharding.CostThresholdAdmission`) keys on —
grid size — normalized by :func:`estimate_cost` so the WFQ tags and
token-bucket charges reflect compute weight, not request count.

See ``docs/OPERATIONS.md`` ("Tenancy and overload") for the tenants
file format and the operational knobs.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, AsyncIterator, Callable, Iterable, Mapping

from ..errors import AuthenticationError, ReproError
from .telemetry import Telemetry
from .tracing import span

__all__ = [
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "FairScheduler",
    "estimate_cost",
    "estimate_doc_cost",
    "parse_tenants_doc",
    "load_tenants_file",
    "current_tenant",
    "bind_tenant",
]

#: Reference grid size (4x4) whose route costs exactly 1.0 unit; all
#: WFQ tags and token-bucket charges are multiples of this.
_REFERENCE_VERTICES = 16


def estimate_cost(n_vertices: int) -> float:
    """Relative compute-cost estimate for one request on ``n_vertices``.

    Grid routing does ``O(n)`` work per layer over ``O(sqrt(n))``-deep
    schedules, so cost scales ~``n**1.5``; the value is normalized so a
    4x4 grid (16 vertices) costs ``1.0``. This is the same cost signal
    the :class:`~repro.service.sharding.CostThresholdAdmission` cache
    policy thresholds on, reused as the weighted-fair-queueing tag and
    the token-bucket charge.
    """
    n = max(1, int(n_vertices))
    return (n / _REFERENCE_VERTICES) ** 1.5


def estimate_doc_cost(doc: Mapping[str, Any]) -> float:
    """Cost estimate for a raw request document (pre-validation).

    Reads ``rows``/``cols`` leniently — a malformed document costs the
    reference ``1.0`` (it will be rejected by validation anyway, and
    admission must never raise on garbage).
    """
    try:
        rows, cols = int(doc["rows"]), int(doc["cols"])
        if rows <= 0 or cols <= 0:
            return 1.0
    except (KeyError, TypeError, ValueError):
        return 1.0
    return estimate_cost(rows * cols)


@dataclass(frozen=True)
class Tenant:
    """One caller's identity and resource policy.

    ``None`` for any limit field means unlimited. ``weight`` is the
    tenant's relative share of the worker pool under contention (the
    WFQ weight); ``rate``/``burst`` parameterize the token bucket in
    cost units per second (see :func:`estimate_cost` — a 4x4 route
    costs 1.0).
    """

    #: Stable tenant name (telemetry label, span attribute, log field).
    name: str
    #: API key identifying this tenant; ``None`` for keyless tenants
    #: (the anonymous/default tenants).
    key: str | None = None
    #: Relative weighted-fair-queueing share (> 0).
    weight: float = 1.0
    #: Sustained admission rate in cost units/second (``None`` = unlimited).
    rate: float | None = None
    #: Token-bucket burst capacity in cost units (default ``2 * rate``).
    burst: float | None = None
    #: Maximum concurrently executing requests (``None`` = unlimited).
    max_inflight: int | None = None
    #: Maximum queued (admitted, not yet executing) requests.
    max_queued: int | None = None

    def __post_init__(self) -> None:
        """Validate the policy fields (raises :class:`ReproError`)."""
        if not self.name or not isinstance(self.name, str):
            raise ReproError("tenant 'name' must be a non-empty string")
        if self.weight <= 0:
            raise ReproError(
                f"tenant {self.name!r}: 'weight' must be positive, got {self.weight}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ReproError(
                f"tenant {self.name!r}: 'rate' must be positive, got {self.rate}"
            )
        if self.burst is not None and self.burst <= 0:
            raise ReproError(
                f"tenant {self.name!r}: 'burst' must be positive, got {self.burst}"
            )
        if self.max_inflight is not None and self.max_inflight <= 0:
            raise ReproError(
                f"tenant {self.name!r}: 'max_inflight' must be positive"
            )
        if self.max_queued is not None and self.max_queued < 0:
            raise ReproError(f"tenant {self.name!r}: 'max_queued' must be >= 0")


#: The implicit tenant of an open (un-configured) registry and of
#: in-process library callers that never went through the pipeline.
DEFAULT_TENANT = Tenant("default")

#: The tenant under which exempt ops (introspection, the cluster cache
#: protocol, topology administration) execute — never rate limited, so
#: health probes and peer traffic cannot be starved by tenant policy.
SYSTEM_TENANT = Tenant("system")


class TokenBucket:
    """A thread-safe token bucket over the monotonic clock.

    Tokens refill continuously at ``rate`` per second up to ``burst``.
    :meth:`acquire` is all-or-nothing and never blocks: it either
    debits the requested amount or answers with a ``retry_after`` hint.
    """

    def __init__(self, rate: float, burst: float | None = None) -> None:
        if rate <= 0:
            raise ReproError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else 2.0 * self.rate
        if self.burst <= 0:
            raise ReproError(f"burst must be positive, got {burst}")
        self._tokens = self.burst
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def acquire(self, amount: float = 1.0) -> float | None:
        """Debit ``amount`` tokens; ``None`` on success, else retry-after.

        A refusal debits nothing. The returned hint is the time until
        ``amount`` tokens will have refilled (capped below by 10 ms so
        clients never busy-spin on a zero).
        """
        amount = max(0.0, float(amount))
        with self._lock:
            now = time.monotonic()
            self._refill(now)
            if self._tokens >= amount:
                self._tokens -= amount
                return None
            needed = min(amount, self.burst) - self._tokens
            return max(0.01, needed / self.rate)

    def peek(self) -> float:
        """Current token balance (after refill; for stats only)."""
        with self._lock:
            self._refill(time.monotonic())
            return self._tokens


_CURRENT_TENANT: ContextVar[Tenant | None] = ContextVar(
    "repro_current_tenant", default=None
)


def current_tenant() -> Tenant | None:
    """The tenant bound to the current context (``None`` outside one).

    Set by the request pipeline around the execute stage; read by
    :class:`~repro.service.aio.AsyncRoutingService` when it acquires a
    scheduler slot, so tenancy flows through the async facade without
    threading a parameter through every call.
    """
    return _CURRENT_TENANT.get()


class bind_tenant:
    """Context manager binding a :class:`Tenant` to the current context.

    >>> with bind_tenant(Tenant("acme")):
    ...     current_tenant().name
    'acme'
    """

    __slots__ = ("_tenant", "_token")

    def __init__(self, tenant: Tenant) -> None:
        self._tenant = tenant

    def __enter__(self) -> Tenant:
        self._token = _CURRENT_TENANT.set(self._tenant)
        return self._tenant

    def __exit__(self, *exc_info: object) -> None:
        _CURRENT_TENANT.reset(self._token)


#: Pluggable authentication hook: ``hook(api_key) -> Tenant | None``.
#: Consulted before the static key table; returning ``None`` falls
#: through to it (so a hook can extend, not just replace, the file).
AuthHook = Callable[[str | None], "Tenant | None"]

#: Per-tenant outcome counters tracked by the registry.
_OUTCOMES = ("admitted", "throttled", "shed", "unauthorized")


class TenantRegistry:
    """API-key → :class:`Tenant` resolution plus per-tenant runtime state.

    Three modes:

    * **Open** (no tenants configured, the default): every request —
      keyed or keyless — resolves to :data:`DEFAULT_TENANT` with no
      limits. Single-user deployments and the test suite run here.
    * **Enforced** (tenants configured): a work request must carry a
      known API key; a keyless request is refused with
      :class:`~repro.errors.AuthenticationError` unless an
      ``anonymous`` tenant is configured, in which case keyless work
      runs under it (with its quotas).
    * **Hooked**: an ``auth_hook`` callable is consulted first for
      every key — the seam for external identity systems (JWT
      validation, a secrets service). Returning ``None`` falls through
      to the static table.
    """

    def __init__(
        self,
        tenants: Iterable[Tenant] = (),
        *,
        anonymous: Tenant | None = None,
        auth_hook: AuthHook | None = None,
    ) -> None:
        self._by_key: dict[str, Tenant] = {}
        self._by_name: dict[str, Tenant] = {}
        for tenant in tenants:
            if tenant.key is None:
                raise ReproError(
                    f"tenant {tenant.name!r} has no API key; keyless access "
                    "is configured via the 'anonymous' entry"
                )
            if tenant.key in self._by_key:
                raise ReproError(
                    f"duplicate API key for tenant {tenant.name!r}"
                )
            if tenant.name in self._by_name:
                raise ReproError(f"duplicate tenant name {tenant.name!r}")
            self._by_key[tenant.key] = tenant
            self._by_name[tenant.name] = tenant
        self.anonymous = anonymous
        if anonymous is not None:
            self._by_name.setdefault(anonymous.name, anonymous)
        self.auth_hook = auth_hook
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._outcomes: dict[str, dict[str, int]] = {}

    @property
    def enforced(self) -> bool:
        """Whether API keys are required for work requests."""
        return bool(self._by_key) or self.anonymous is not None

    @property
    def default_tenant(self) -> Tenant:
        """The tenant for in-process callers that bypass the pipeline."""
        return DEFAULT_TENANT

    def tenants(self) -> list[Tenant]:
        """Every configured tenant (including the anonymous one)."""
        return list(self._by_name.values())

    def authenticate(self, api_key: str | None) -> Tenant:
        """Resolve an API key to a tenant.

        The ``auth_hook`` is consulted first; then the static key
        table; a keyless request falls back to the anonymous tenant
        (enforced mode) or the default tenant (open mode).

        Raises
        ------
        AuthenticationError
            In enforced mode, for an unknown key or a keyless request
            with no anonymous tenant configured.
        """
        if self.auth_hook is not None:
            tenant = self.auth_hook(api_key)
            if tenant is not None:
                return tenant
        if not self.enforced:
            return DEFAULT_TENANT
        if api_key is None:
            if self.anonymous is not None:
                return self.anonymous
            raise AuthenticationError(
                "an API key is required (no anonymous tenant is configured)"
            )
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise AuthenticationError("unknown API key")
        return tenant

    def throttle(self, tenant: Tenant, cost: float) -> float | None:
        """Charge ``cost`` units to the tenant's token bucket.

        ``None`` means admitted; a float is the suggested retry-after
        in seconds. Tenants without a ``rate`` are never throttled.
        """
        if tenant.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant.name)
            if bucket is None:
                bucket = self._buckets[tenant.name] = TokenBucket(
                    tenant.rate, tenant.burst
                )
        return bucket.acquire(cost)

    def note(self, tenant_name: str, outcome: str) -> None:
        """Count one admission outcome for a tenant (for ``stats()``).

        ``outcome`` is one of ``admitted`` / ``throttled`` / ``shed`` /
        ``unauthorized``.
        """
        with self._lock:
            counters = self._outcomes.setdefault(
                tenant_name, dict.fromkeys(_OUTCOMES, 0)
            )
            counters[outcome] = counters.get(outcome, 0) + 1

    def stats(self) -> dict[str, Any]:
        """Per-tenant configuration and outcome counters, JSON-ready."""
        with self._lock:
            outcomes = {name: dict(c) for name, c in self._outcomes.items()}
            balances = {
                name: bucket.peek() for name, bucket in self._buckets.items()
            }
        tenants: dict[str, Any] = {}
        names = set(self._by_name) | set(outcomes)
        for name in sorted(names):
            tenant = self._by_name.get(name)
            doc: dict[str, Any] = dict.fromkeys(_OUTCOMES, 0)
            doc.update(outcomes.get(name, {}))
            if tenant is not None:
                doc["weight"] = tenant.weight
                doc["rate"] = tenant.rate
                if name in balances:
                    doc["tokens"] = balances[name]
            tenants[name] = doc
        return {
            "enforced": self.enforced,
            "anonymous": self.anonymous.name if self.anonymous else None,
            "tenants": tenants,
        }


def _tenant_from_doc(doc: Mapping[str, Any], *, require_key: bool) -> Tenant:
    """Build one :class:`Tenant` from a tenants-file entry."""
    if not isinstance(doc, Mapping):
        raise ReproError("each tenant entry must be a JSON object")
    unknown = set(doc) - {
        "name", "key", "weight", "rate", "burst", "max_inflight", "max_queued",
    }
    if unknown:
        raise ReproError(f"unknown tenant field(s): {sorted(unknown)}")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise ReproError("tenant 'name' must be a non-empty string")
    key = doc.get("key")
    if require_key and (not isinstance(key, str) or not key):
        raise ReproError(f"tenant {name!r}: 'key' must be a non-empty string")
    try:
        return Tenant(
            name=name,
            key=key if isinstance(key, str) and key else None,
            weight=float(doc.get("weight", 1.0)),
            rate=float(doc["rate"]) if doc.get("rate") is not None else None,
            burst=float(doc["burst"]) if doc.get("burst") is not None else None,
            max_inflight=(
                int(doc["max_inflight"])
                if doc.get("max_inflight") is not None
                else None
            ),
            max_queued=(
                int(doc["max_queued"])
                if doc.get("max_queued") is not None
                else None
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ReproError(f"tenant {name!r}: bad field value: {exc}") from None


def parse_tenants_doc(doc: Mapping[str, Any]) -> TenantRegistry:
    """Build a :class:`TenantRegistry` from a tenants-file document.

    Expected shape (see ``docs/OPERATIONS.md`` for the field table)::

        {"tenants": [{"name": "acme", "key": "ak_1", "weight": 4,
                      "rate": 50, "burst": 100,
                      "max_inflight": 32, "max_queued": 128}, ...],
         "anonymous": {"name": "anonymous", "rate": 5}}

    ``anonymous`` is optional; without it, keyless work requests are
    refused (``unauthorized`` / HTTP 401) once any tenant is
    configured.

    Raises
    ------
    ReproError
        On any malformed entry — a daemon must fail its start loudly
        rather than come up with a half-parsed policy.
    """
    if not isinstance(doc, Mapping):
        raise ReproError("tenants document must be a JSON object")
    entries = doc.get("tenants", [])
    if not isinstance(entries, list):
        raise ReproError("'tenants' must be a JSON array")
    tenants = [_tenant_from_doc(entry, require_key=True) for entry in entries]
    anonymous = None
    if doc.get("anonymous") is not None:
        anon_doc = doc["anonymous"]
        if not isinstance(anon_doc, Mapping):
            raise ReproError("'anonymous' must be a JSON object")
        anonymous = _tenant_from_doc(
            {"name": "anonymous", **anon_doc}, require_key=False
        )
    return TenantRegistry(tenants, anonymous=anonymous)


def load_tenants_file(path: str) -> TenantRegistry:
    """Read and parse a tenants JSON file (see :func:`parse_tenants_doc`).

    Raises
    ------
    ReproError
        If the file cannot be read or parsed.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read tenants file {path}: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"tenants file {path} is not valid JSON: {exc}") from exc
    return parse_tenants_doc(doc)


class _Waiter:
    """One queued acquisition: the future plus its SFQ tags."""

    __slots__ = ("future", "tenant", "start", "finish")

    def __init__(
        self,
        future: "asyncio.Future[None]",
        tenant: Tenant,
        start: float,
        finish: float,
    ) -> None:
        self.future = future
        self.tenant = tenant
        self.start = start
        self.finish = finish


class FairScheduler:
    """Start-time fair queueing (SFQ) over a bounded worker pool.

    Replaces the semaphore-plus-FIFO the async facade used: each
    acquisition is tagged with a virtual start time ``S = max(V, F_t)``
    and finish time ``F = S + cost / weight`` (``V`` the global virtual
    time, ``F_t`` the tenant's last finish tag); when a slot frees, the
    queued waiter with the minimum start tag runs. Under contention
    each tenant's share of the pool therefore converges to its weight
    share *in cost units* — a tenant spamming large grids gets the same
    compute share as one sending small ones, not the same request rate.

    Single-event-loop discipline (like the semaphore it replaces): all
    acquire/release calls happen on the service's loop. State resets
    when the loop changes, which is only safe while idle — the only
    state a dead loop can leave behind.

    ``max_queue_depth`` is the global bound the pipeline's admit stage
    sheds against; the scheduler itself never refuses work that was
    already admitted.
    """

    def __init__(
        self,
        max_concurrency: int,
        *,
        max_queue_depth: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError(
                f"max_concurrency must be positive, got {max_concurrency}"
            )
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self._telemetry = telemetry
        self._loop: asyncio.AbstractEventLoop | None = None
        self._vtime = 0.0
        self._last_finish: dict[str, float] = {}
        self._queues: dict[str, deque[_Waiter]] = {}
        self._inflight_total = 0
        self._inflight: dict[str, int] = {}
        self._granted: dict[str, int] = {}
        self._queued_total = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Requests admitted but not yet granted a slot."""
        return self._queued_total

    @property
    def inflight(self) -> int:
        """Requests currently holding a slot."""
        return self._inflight_total

    def queued_for(self, tenant_name: str) -> int:
        """Queue depth of one tenant."""
        queue = self._queues.get(tenant_name)
        return len(queue) if queue else 0

    def stats(self) -> dict[str, Any]:
        """Scheduler occupancy and per-tenant shares, JSON-ready."""
        tenants = {
            name: {
                "inflight": self._inflight.get(name, 0),
                "queued": self.queued_for(name),
                "granted": self._granted.get(name, 0),
            }
            for name in sorted(
                set(self._inflight) | set(self._queues) | set(self._granted)
            )
        }
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue_depth": self.max_queue_depth,
            "inflight": self._inflight_total,
            "queued": self._queued_total,
            "virtual_time": self._vtime,
            "tenants": tenants,
        }

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def _check_loop(self) -> None:
        """Reset runtime state when the event loop changed (idle only)."""
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            self._loop = loop
            self._vtime = 0.0
            self._last_finish.clear()
            self._queues.clear()
            self._inflight_total = 0
            self._inflight.clear()
            self._queued_total = 0

    def _set_tenant_gauges(self, name: str) -> None:
        if self._telemetry is not None:
            labels = {"tenant": name}
            self._telemetry.set_gauge(
                "tenant_queue_depth", self.queued_for(name), labels=labels
            )
            self._telemetry.set_gauge(
                "tenant_inflight", self._inflight.get(name, 0), labels=labels
            )

    def _grant(self, waiter: _Waiter) -> None:
        """Move one waiter from queued to inflight (bookkeeping only)."""
        name = waiter.tenant.name
        self._vtime = max(self._vtime, waiter.start)
        self._inflight_total += 1
        self._inflight[name] = self._inflight.get(name, 0) + 1
        self._granted[name] = self._granted.get(name, 0) + 1
        if self._telemetry is not None:
            self._telemetry.incr("aio_inflight")
        waiter.future.set_result(None)

    def _release_counts(self, name: str) -> None:
        self._inflight_total -= 1
        self._inflight[name] = self._inflight.get(name, 1) - 1
        if self._telemetry is not None:
            self._telemetry.incr("aio_inflight", -1)
        self._set_tenant_gauges(name)

    def _eligible_head(self) -> _Waiter | None:
        """The queued waiter to run next: minimum start tag among heads.

        Skips tenants at their ``max_inflight`` quota and discards
        cancelled waiters encountered at queue heads.
        """
        best: _Waiter | None = None
        best_key: tuple[float, float, str] | None = None
        for name, queue in self._queues.items():
            while queue and queue[0].future.cancelled():
                queue.popleft()
                self._queued_total -= 1
            if not queue:
                continue
            head = queue[0]
            cap = head.tenant.max_inflight
            if cap is not None and self._inflight.get(name, 0) >= cap:
                continue
            key = (head.start, head.finish, name)
            if best_key is None or key < best_key:
                best, best_key = head, key
        if best is not None:
            queue = self._queues[best.tenant.name]
            queue.popleft()
            self._queued_total -= 1
        return best

    def _pump(self) -> None:
        """Grant slots to eligible waiters while capacity remains."""
        while self._inflight_total < self.max_concurrency:
            waiter = self._eligible_head()
            if waiter is None:
                return
            self._grant(waiter)
            self._set_tenant_gauges(waiter.tenant.name)

    def _discard(self, waiter: _Waiter) -> None:
        """Remove a cancelled waiter that is still queued."""
        queue = self._queues.get(waiter.tenant.name)
        if queue is not None:
            try:
                queue.remove(waiter)
            except ValueError:
                return  # already popped (granted or head-discarded)
            self._queued_total -= 1

    async def acquire(self, tenant: Tenant, cost: float = 1.0) -> None:
        """Wait for a slot under the tenant's weight and quotas.

        Tags the request with its SFQ virtual times, queues it, and
        waits under a ``pipeline.enqueue`` trace span (the pipeline's
        enqueue stage). Cancellation is clean: a cancelled waiter is
        removed from the queue, and a waiter cancelled *after* its
        grant releases the slot before re-raising.
        """
        self._check_loop()
        loop = asyncio.get_running_loop()
        name = tenant.name
        cost = max(1e-6, float(cost))
        start = max(self._vtime, self._last_finish.get(name, 0.0))
        finish = start + cost / tenant.weight
        self._last_finish[name] = finish
        waiter = _Waiter(loop.create_future(), tenant, start, finish)
        self._queues.setdefault(name, deque()).append(waiter)
        self._queued_total += 1
        self._pump()
        tel = self._telemetry
        if tel is not None:
            tel.incr("aio_queue_depth")
        self._set_tenant_gauges(name)
        t0 = time.perf_counter()
        try:
            with span("pipeline.enqueue", tenant=name):
                if not waiter.future.done():
                    await waiter.future
        except asyncio.CancelledError:
            if waiter.future.cancelled() or not waiter.future.done():
                waiter.future.cancel()
                self._discard(waiter)
            else:
                # Granted, then cancelled before resuming: give the
                # slot back so it is never leaked.
                self._release_counts(name)
                self._pump()
            raise
        finally:
            if tel is not None:
                tel.incr("aio_queue_depth", -1)
                tel.observe("pipeline.enqueue", time.perf_counter() - t0)
            self._set_tenant_gauges(name)

    def release(self, tenant: Tenant) -> None:
        """Return a slot and wake the next eligible waiter."""
        self._release_counts(tenant.name)
        self._pump()

    @contextlib.asynccontextmanager
    async def slot(self, tenant: Tenant, cost: float = 1.0) -> AsyncIterator[None]:
        """Async context manager pairing :meth:`acquire`/:meth:`release`."""
        await self.acquire(tenant, cost)
        try:
            yield
        finally:
            self.release(tenant)
