"""Lightweight service telemetry: counters, gauges, latency histograms.

No third-party metrics client — just thread-safe counters, labeled
gauges, and fixed log-spaced latency buckets, cheap enough to record on
every request and structured enough for the CLI and
``RoutingService.stats()`` to render. The histogram quantiles are
bucket-resolution approximations (each bucket spans a factor of 2),
which is the usual trade Prometheus-style histograms make.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any

__all__ = ["LatencyHistogram", "Telemetry"]


class LatencyHistogram:
    """Latency distribution over log2-spaced buckets.

    Buckets span ``base * 2**i`` for ``i in [0, n_buckets)`` with a
    catch-all overflow bucket; defaults cover 10 microseconds to ~80
    seconds, the full plausible range of a routing call.
    """

    def __init__(self, base: float = 1e-5, n_buckets: int = 23) -> None:
        if base <= 0 or n_buckets <= 0:
            raise ValueError("base and n_buckets must be positive")
        self._bounds = [base * (2.0 ** i) for i in range(n_buckets)]
        self._counts = [0] * (n_buckets + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (negative values clamp to zero)."""
        seconds = max(0.0, float(seconds))
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        # First bucket whose bound is >= the sample; past the end means
        # the overflow bucket. Bounds are sorted, so bisect beats the
        # linear scan this runs on every request.
        self._counts[bisect_left(self._bounds, seconds)] += 1

    @property
    def mean(self) -> float:
        """Exact mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample.

        Raises
        ------
        ValueError
            If ``q`` is outside ``[0, 1]``.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen > rank:
                if i >= len(self._bounds):
                    return self.max
                # Clamp to the observed max so a lone sample never
                # reports a quantile above it (stats stay self-consistent).
                return min(self._bounds[i], self.max)
        return self.max  # pragma: no cover - defensive

    def as_dict(self) -> dict[str, Any]:
        """Summary statistics, JSON-ready."""
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "max_seconds": self.max,
            "p50_seconds": self.quantile(0.5),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
        }


class Telemetry:
    """Named counters, labeled gauges, and latency histograms, thread-safe.

    >>> t = Telemetry()
    >>> t.incr("requests")
    >>> t.set_gauge("pool_size", 4)
    >>> with t.timer("route"):
    ...     pass
    >>> t.snapshot()["counters"]["requests"]
    1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        # gauge name -> {sorted (label, value) items -> current value}
        self._gauges: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
        # counter name -> {sorted (label, value) items -> count}
        self._labeled: dict[str, dict[tuple[tuple[str, str], ...], int]] = {}

    def incr(
        self,
        name: str,
        amount: int = 1,
        labels: dict[str, str] | None = None,
    ) -> None:
        """Add ``amount`` to counter ``name`` (created at zero).

        With ``labels``, each distinct label set is an independent
        series under the same name (rendered as
        ``repro_<name>_total{...}`` by the Prometheus exporter) —
        used by the request pipeline for per-tenant outcome counts.
        """
        with self._lock:
            if labels is None:
                self._counters[name] = self._counters.get(name, 0) + amount
            else:
                key = tuple(sorted(labels.items()))
                series = self._labeled.setdefault(name, {})
                series[key] = series.get(key, 0) + amount

    def set_gauge(
        self, name: str, value: float, labels: dict[str, str] | None = None
    ) -> None:
        """Set gauge ``name`` (optionally one labeled series of it).

        Unlike counters, gauges hold a point-in-time value that can move
        both ways (buffer occupancy, pool depth). Each distinct
        ``labels`` dict is an independent series under the same name.
        """
        key = tuple(sorted((labels or {}).items()))
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def gauge_series(self) -> list[tuple[str, dict[str, str], float]]:
        """All gauge series as ``(name, labels, value)`` rows, sorted."""
        with self._lock:
            return [
                (name, dict(key), value)
                for name in sorted(self._gauges)
                for key, value in sorted(self._gauges[name].items())
            ]

    def observe(self, name: str, seconds: float) -> None:
        """Record a latency sample under histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = LatencyHistogram()
            hist.observe(seconds)

    def timer(self, name: str) -> "_Timer":
        """Context manager recording its block's wall time under ``name``."""
        return _Timer(self, name)

    def snapshot(self) -> dict[str, Any]:
        """Counters, gauges, and histogram summaries as one JSON dict.

        Unlabeled gauges render as plain numbers; labeled gauges as a
        list of ``{"labels": {...}, "value": ...}`` series under the
        gauge name (a shape :func:`~repro.service.handler.render_prometheus`
        can re-label without parsing). Labeled counters appear under
        ``"labeled_counters"`` in the same series shape, and only when
        at least one exists, so existing consumers of the three
        original keys are unaffected.
        """
        with self._lock:
            gauges: dict[str, Any] = {}
            for name, series in self._gauges.items():
                if set(series) == {()}:
                    gauges[name] = series[()]
                else:
                    gauges[name] = [
                        {"labels": dict(key), "value": value}
                        for key, value in sorted(series.items())
                    ]
            doc: dict[str, Any] = {
                "counters": dict(self._counters),
                "gauges": gauges,
                "latency": {
                    name: hist.as_dict()
                    for name, hist in self._histograms.items()
                },
            }
            if self._labeled:
                doc["labeled_counters"] = {
                    name: [
                        {"labels": dict(key), "value": value}
                        for key, value in sorted(series.items())
                    ]
                    for name, series in self._labeled.items()
                }
            return doc


class _Timer:
    """Implementation detail of :meth:`Telemetry.timer`."""

    __slots__ = ("_telemetry", "_name", "_t0")

    def __init__(self, telemetry: Telemetry, name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._telemetry.observe(self._name, time.perf_counter() - self._t0)
