"""The :class:`RoutingService` facade: one object, the whole front end.

Wraps the schedule cache, the batch executor and the telemetry registry
behind the five calls a client needs:

* :meth:`RoutingService.submit` — one routing instance, cache-aware;
* :meth:`RoutingService.submit_batch` — many instances, deduplicated
  and fanned out over the worker pool;
* :meth:`RoutingService.transpile_batch` — full circuit transpilation
  in bulk, same pooling and error isolation;
* :meth:`RoutingService.warm_cache` — pre-route the paper's workload
  families so a fresh deployment starts hot;
* :meth:`RoutingService.stats` — cache counters, latency histograms
  and worker configuration as one JSON-ready dict.

This module also owns the result-encoding helpers
(:func:`route_result_to_dict`, :func:`transpile_metrics`,
:func:`transpile_outcome_to_dict`) shared by the service's JSONL output
and the CLI's ``--json`` flags, so every machine-readable surface emits
the same shape.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..errors import ReproError
from ..graphs.base import Graph
from ..graphs.grid import GridGraph
from ..perm.generators import WORKLOADS, make_workload
from ..perm.permutation import Permutation
from ..routing.serialize import schedule_to_json
from .cache import LRUCache, ScheduleCache
from .cluster import (
    DEFAULT_HANDOFF_RATE,
    DEFAULT_RETRY_INTERVAL,
    ClusterScheduleCache,
    ClusterTopology,
    RemoteShardClient,
)
from .executor import (
    BatchExecutor,
    RouteRequest,
    RouteResult,
    record_stage_telemetry,
)
from .sharding import AdmissionPolicy, ShardedScheduleCache
from .keys import (
    _h,
    graph_fingerprint,
    graph_from_spec,
    graph_spec,
    canonical_options,
    text_fingerprint,
)
from .telemetry import Telemetry
from .tracing import TraceBuffer

__all__ = [
    "RoutingService",
    "TranspileRequest",
    "TranspileOutcome",
    "route_result_to_dict",
    "transpile_metrics",
    "transpile_outcome_to_dict",
]


# ----------------------------------------------------------------------
# transpile requests / outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TranspileRequest:
    """One circuit-transpilation instance for :meth:`RoutingService.transpile_batch`.

    ``qasm`` is the OpenQASM 2 text of the logical circuit (text, not a
    circuit object, so requests fingerprint and ship to workers
    cheaply — use :func:`repro.circuit.qasm.dumps` to convert).
    """

    qasm: str
    graph: Graph
    router: str = "local"
    mapping: str = "identity"
    seed: int = 0
    completion: str = "minimal"
    options: Mapping[str, Any] = field(default_factory=dict)

    def digest(self, include_qasm_out: bool = False) -> str:
        """Canonical fingerprint of this request (cache identity)."""
        return _h(
            b"transpile",
            text_fingerprint(self.qasm).encode(),
            graph_fingerprint(self.graph).encode(),
            self.router.encode("utf-8"),
            self.mapping.encode("utf-8"),
            str(self.seed).encode(),
            self.completion.encode("utf-8"),
            canonical_options(self.options).encode("utf-8"),
            (b"qasm" if include_qasm_out else b"metrics"),
        )


@dataclass
class TranspileOutcome:
    """Outcome of one transpile request (``source`` as in :class:`RouteResult`)."""

    index: int
    digest: str
    router: str
    metrics: dict[str, Any] | None
    physical_qasm: str | None
    seconds: float
    source: str
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether transpilation succeeded."""
        return self.metrics is not None


def transpile_metrics(result) -> dict[str, Any]:
    """The machine-readable metrics of a :class:`~repro.transpile.TranspileResult`."""
    return {
        "router": result.router_name,
        "n_qubits": result.physical.n_qubits,
        "logical_depth": result.logical.depth(),
        "physical_depth": result.physical.depth(),
        "depth_overhead": result.depth_overhead,
        "logical_size": result.logical.size(),
        "physical_size": result.physical.size(),
        "size_overhead": result.size_overhead,
        "n_swaps": result.n_swaps,
        "swap_depth": result.swap_depth,
        "routing_invocations": result.routing_invocations,
        "routing_seconds": result.routing_time,
        "final_mapping": [int(p) for p in result.final_mapping],
    }


def _transpile_in_worker(
    payload: tuple[str, str, dict, str, str, int, str, dict, bool],
) -> tuple[str, str, Any, float, dict]:
    """Pool worker for transpile requests; never raises (see executor).

    Mirrors ``_route_in_worker``'s 5-tuple contract: the last element is
    the per-stage profile collected in-worker (workers cannot share the
    parent's trace context).
    """
    (digest, qasm, spec, router, mapping, seed, completion, options,
     include_qasm) = payload
    t0 = time.perf_counter()
    from ..routing.base import StageProfiler, profile

    profiler = StageProfiler()
    try:
        from ..circuit.qasm import dumps, loads
        from ..transpile.transpiler import transpile

        circuit = loads(qasm)
        graph = graph_from_spec(spec)
        with profile(profiler):
            result = transpile(
                circuit, graph, router=router, mapping=mapping, seed=seed,
                completion=completion, **options,
            )
        body = {
            "metrics": transpile_metrics(result),
            "physical_qasm": dumps(result.physical) if include_qasm else None,
        }
        return (
            digest, "ok", body, time.perf_counter() - t0, profiler.as_dict()
        )
    except Exception as exc:  # noqa: BLE001 - error isolation is the contract
        msg = f"{type(exc).__name__}: {exc}"
        return (digest, "error", msg, time.perf_counter() - t0, {})


# ----------------------------------------------------------------------
# result encoding (shared by service JSONL and CLI --json)
# ----------------------------------------------------------------------
def route_result_to_dict(
    result: RouteResult,
    include_schedule: bool = False,
    **extra: Any,
) -> dict[str, Any]:
    """Encode a :class:`RouteResult` as a JSON-ready dict.

    ``extra`` keys are merged in verbatim — the CLI uses this to attach
    request context (grid shape, workload, fidelity estimates) without
    inventing a second encoding.
    """
    doc: dict[str, Any] = {
        "key": result.key.digest,
        "router": result.router,
        "backend": result.backend,
        "source": result.source,
        "ok": result.ok,
        "depth": result.depth,
        "size": result.size,
        "seconds": result.seconds,
        "error": result.error,
    }
    if include_schedule and result.schedule is not None:
        doc["schedule"] = json.loads(schedule_to_json(result.schedule))
    doc.update(extra)
    return doc


def transpile_outcome_to_dict(outcome: TranspileOutcome, **extra: Any) -> dict[str, Any]:
    """Encode a :class:`TranspileOutcome` as a JSON-ready dict."""
    doc: dict[str, Any] = {
        "key": outcome.digest,
        "router": outcome.router,
        "source": outcome.source,
        "ok": outcome.ok,
        "seconds": outcome.seconds,
        "error": outcome.error,
        "metrics": outcome.metrics,
    }
    if outcome.physical_qasm is not None:
        doc["physical_qasm"] = outcome.physical_qasm
    doc.update(extra)
    return doc


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
class RoutingService:
    """High-throughput front end over the routing and transpile layers.

    Parameters
    ----------
    cache_size:
        In-memory schedule-cache capacity (entries).
    cache_dir:
        Directory for the persistent schedule-cache tier; ``None``
        keeps the cache memory-only.
    cache_shards:
        Number of independently-locked schedule-cache shards. The
        default ``1`` keeps the plain tiered cache; ``> 1`` switches to
        a :class:`~repro.service.sharding.ShardedScheduleCache`
        partitioned by fingerprint prefix (recommended for the async
        front end and the daemon, where many requests probe the cache
        concurrently).
    cache_admission:
        Optional :data:`~repro.service.sharding.AdmissionPolicy`
        deciding which computed schedules are worth caching (e.g.
        :class:`~repro.service.sharding.CostThresholdAdmission` to skip
        trivially cheap instances). Requires ``cache_shards >= 1``; the
        policy implies the sharded cache even when ``cache_shards`` is 1.
    cluster_peers:
        Addresses of peer daemons sharing one logical cache (UNIX
        socket paths or ``http://host:port`` base URLs). Sugar for an
        initial :class:`~repro.service.cluster.ClusterTopology` of the
        peers plus ``cluster_node_id``; the cache is wrapped in a
        :class:`~repro.service.cluster.ClusterScheduleCache` observing
        that topology.
    cluster_node_id:
        This node's ring id — the address peers dial to reach *this*
        daemon, so every member builds the same ring. ``None`` keeps
        this process off the ring (client-only mode: every key is
        remote-owned, the local tier is purely a near-cache). Passing
        a node id with *no* peers still enables cluster mode with a
        single-member ring, so the daemon can be joined to a ring at
        runtime (``repro topology join``).
    cluster_replication:
        Owners per key on the ring (see
        :class:`~repro.service.cluster.ClusterScheduleCache`).
    cluster_topology:
        An explicit epoch-versioned
        :class:`~repro.service.cluster.ClusterTopology` to observe
        (e.g. one fed by a ``--topology-file`` watcher). Enables
        cluster mode by itself; published on
        :attr:`cluster_topology` either way.
    cluster_retry_interval:
        Seconds a failed peer's circuit breaker stays open
        (``repro serve --breaker-cooldown``).
    cluster_handoff_rate:
        Upper bound on key-space-handoff pushes per second after a
        ring join.
    trace_buffer:
        Capacity of the in-memory ring of finished request traces
        (``repro serve --trace-buffer``). ``0`` disables tracing
        entirely: no trace context is created and the per-span cost
        vanishes from the hot path.
    trace_slow:
        Threshold in seconds above which a finished trace is also
        emitted through the structured logger (``--trace-slow``;
        ``0`` logs nothing).
    max_workers:
        Process-pool size for batch misses. The default ``1`` computes
        inline (deterministic, no subprocess spawn); pass ``None`` for
        ``os.cpu_count()`` or an explicit count for a fixed pool.
    default_router:
        Router used when a request does not name one.
    kernel_backend:
        Default kernel backend (``"numpy"``/``"python"``, see
        :mod:`repro.kernels`) for computed routes. ``None`` uses the
        ambient default (``REPRO_KERNEL_BACKEND`` or auto-detection);
        per-request ``backend`` options override it. Never splits the
        cache — all backends produce identical schedules.
    verify:
        Re-verify every computed schedule against its request.

    Examples
    --------
    >>> from repro import GridGraph, random_permutation
    >>> svc = RoutingService(cache_size=64)
    >>> grid = GridGraph(4, 4)
    >>> res = svc.submit(grid, random_permutation(grid, seed=1))
    >>> res.ok and res.source == "computed"
    True
    >>> svc.submit(grid, random_permutation(grid, seed=1)).source
    'cache'
    """

    def __init__(
        self,
        cache_size: int = 4096,
        cache_dir: str | os.PathLike | None = None,
        max_workers: int | None = 1,
        default_router: str = "local",
        kernel_backend: str | None = None,
        verify: bool = False,
        cache_shards: int = 1,
        cache_admission: "AdmissionPolicy | None" = None,
        cluster_peers: Sequence[str] = (),
        cluster_node_id: str | None = None,
        cluster_replication: int = 2,
        cluster_topology: "ClusterTopology | None" = None,
        cluster_retry_interval: float = DEFAULT_RETRY_INTERVAL,
        cluster_handoff_rate: float = DEFAULT_HANDOFF_RATE,
        trace_buffer: int = 512,
        trace_slow: float = 0.0,
    ) -> None:
        self.default_router = default_router
        self.kernel_backend = kernel_backend
        self.telemetry = Telemetry()
        #: Ring buffer of finished request traces (``None`` when tracing
        #: is disabled). The handler records one trace per traced op;
        #: the ``trace_get`` op / ``GET /v1/traces`` read it back.
        self.traces: TraceBuffer | None = (
            TraceBuffer(
                capacity=trace_buffer,
                slow_threshold=trace_slow,
                telemetry=self.telemetry,
            )
            if trace_buffer > 0
            else None
        )
        cache: ScheduleCache | ShardedScheduleCache | ClusterScheduleCache
        if cache_shards > 1 or cache_admission is not None:
            cache = ShardedScheduleCache(
                maxsize=cache_size,
                n_shards=cache_shards,
                disk_dir=cache_dir,
                admission=cache_admission,
            )
        else:
            cache = ScheduleCache(maxsize=cache_size, disk_dir=cache_dir)
        #: The epoch-versioned ring membership this service observes
        #: (``None`` when cluster mode is off). The handler's
        #: ``topology_get`` / ``topology_update`` ops and the
        #: ``--topology-file`` watcher mutate this object; the cluster
        #: cache reacts without any restart.
        self.cluster_topology: ClusterTopology | None = None
        if cluster_topology is not None or cluster_peers or cluster_node_id is not None:
            cache = ClusterScheduleCache(
                local=cache,
                peers={addr: RemoteShardClient(addr) for addr in cluster_peers},
                node_id=cluster_node_id,
                replication=cluster_replication,
                retry_interval=cluster_retry_interval,
                topology=cluster_topology,
                handoff_rate=cluster_handoff_rate,
            )
            self.cluster_topology = cache.topology
        #: The SWIM failure detector attached to this service (``None``
        #: unless ``repro serve --gossip-interval`` wired one). Owned by
        #: the CLI lifecycle; the handler's ``gossip`` op reads it.
        self.gossip: Any = None
        self.cache = cache
        self.transpile_cache = LRUCache(maxsize=max(cache_size // 4, 16))
        self.executor = BatchExecutor(
            cache=self.cache,
            max_workers=max_workers,
            telemetry=self.telemetry,
            verify=verify,
            kernel_backend=kernel_backend,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool and any cluster connections.

        Terminal and idempotent. Concurrent callers are safe (one
        shutdown happens); submitting work afterwards raises
        :class:`~repro.errors.ServiceClosedError`. Remote cache peers
        themselves keep running — only this node's clients close.
        """
        self.executor.close()
        if isinstance(self.cache, ClusterScheduleCache):
            self.cache.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self.executor.closed

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: Graph,
        perm: Permutation,
        router: str | None = None,
        **options: Any,
    ) -> RouteResult:
        """Route one instance (served from cache when possible)."""
        req = RouteRequest(graph, perm, router or self.default_router, options)
        return self.executor.execute([req])[0]

    def submit_batch(
        self,
        requests: Sequence[RouteRequest | Mapping[str, Any] | tuple],
    ) -> list[RouteResult]:
        """Route a batch; results are index-aligned with the input.

        Each entry may be a :class:`RouteRequest`, a ``(graph, perm)`` /
        ``(graph, perm, router)`` tuple, or a mapping with keys
        ``graph``, ``perm`` and optionally ``router`` / ``options``.

        Raises
        ------
        ReproError
            On an entry that cannot be coerced into a request (batch
        error isolation covers *routing* failures, not malformed calls).
        """
        return self.executor.execute([self._coerce(r) for r in requests])

    def _coerce(self, entry: RouteRequest | Mapping[str, Any] | tuple) -> RouteRequest:
        if isinstance(entry, RouteRequest):
            return entry
        if isinstance(entry, Mapping):
            try:
                return RouteRequest(
                    graph=entry["graph"],
                    perm=entry["perm"],
                    router=entry.get("router", self.default_router),
                    options=dict(entry.get("options", {})),
                )
            except KeyError as exc:
                raise ReproError(f"batch entry missing key: {exc}") from exc
        if isinstance(entry, tuple) and len(entry) in (2, 3):
            graph, perm = entry[0], entry[1]
            router = entry[2] if len(entry) == 3 else self.default_router
            return RouteRequest(graph=graph, perm=perm, router=router)
        raise ReproError(
            f"cannot interpret batch entry of type {type(entry).__name__}"
        )

    # ------------------------------------------------------------------
    # transpilation
    # ------------------------------------------------------------------
    def transpile_batch(
        self,
        requests: Sequence[TranspileRequest],
        include_qasm: bool = False,
    ) -> list[TranspileOutcome]:
        """Transpile circuits in bulk with dedup, caching and fan-out.

        Semantics mirror :meth:`submit_batch`: outcomes are
        index-aligned, identical requests are computed once, previously
        seen requests are served from the (in-memory) transpile cache,
        and one failing circuit does not affect the others.

        The dedup -> cache -> fan-out -> resolve pipeline below
        deliberately parallels :meth:`BatchExecutor.execute`; when
        changing the semantics of one (e.g. how dedup-of-error
        resolves), change both.
        """
        t_batch = time.perf_counter()
        outcomes: list[TranspileOutcome | None] = [None] * len(requests)
        first_of: dict[str, int] = {}
        misses: list[int] = []
        miss_digests: dict[int, str] = {}  # reuse phase-1 fingerprints
        for i, req in enumerate(requests):
            digest = req.digest(include_qasm_out=include_qasm)
            if digest in first_of:
                outcomes[i] = TranspileOutcome(
                    index=i, digest=digest, router=req.router, metrics=None,
                    physical_qasm=None, seconds=0.0, source="dedup",
                )
                continue
            first_of[digest] = i
            cached = self.transpile_cache.get(digest)
            if cached is not None:
                outcomes[i] = TranspileOutcome(
                    index=i, digest=digest, router=req.router,
                    metrics=cached["metrics"],
                    physical_qasm=cached["physical_qasm"],
                    seconds=0.0, source="cache",
                )
            else:
                misses.append(i)
                miss_digests[i] = digest

        if misses:
            payloads = []
            for i in misses:
                req = requests[i]
                payloads.append((
                    miss_digests[i],
                    req.qasm,
                    graph_spec(req.graph),
                    req.router,
                    req.mapping,
                    req.seed,
                    req.completion,
                    dict(req.options),
                    include_qasm,
                ))
            raw = self.executor.run_jobs(_transpile_in_worker, payloads)
            for i, (digest, status, body, seconds, stages) in zip(misses, raw):
                req = requests[i]
                if status == "ok":
                    record_stage_telemetry(self.telemetry, req.router, None, stages)
                    self.transpile_cache.put(digest, body)
                    outcomes[i] = TranspileOutcome(
                        index=i, digest=digest, router=req.router,
                        metrics=body["metrics"],
                        physical_qasm=body["physical_qasm"],
                        seconds=seconds, source="computed",
                    )
                else:
                    outcomes[i] = TranspileOutcome(
                        index=i, digest=digest, router=req.router,
                        metrics=None, physical_qasm=None, seconds=seconds,
                        source="error", error=str(body),
                    )

        for i, out in enumerate(outcomes):
            if out is not None and out.source == "dedup":
                orig = outcomes[first_of[out.digest]]
                outcomes[i] = TranspileOutcome(
                    index=i, digest=out.digest, router=out.router,
                    metrics=orig.metrics, physical_qasm=orig.physical_qasm,
                    seconds=0.0,
                    source="dedup" if orig.ok else "error",
                    error=orig.error,
                )

        final = [o for o in outcomes if o is not None]
        self.telemetry.incr("transpile_batches")
        self.telemetry.observe("transpile_batch", time.perf_counter() - t_batch)
        for o in final:
            self.telemetry.incr("transpile_requests")
            self.telemetry.incr(f"transpile_source_{o.source}")
            if o.source == "computed":
                self.telemetry.observe("transpile", o.seconds)
        return final

    # ------------------------------------------------------------------
    # warming and stats
    # ------------------------------------------------------------------
    def warm_cache(
        self,
        sizes: Iterable[int | tuple[int, int]] = (4, 6, 8),
        workloads: Iterable[str] | None = None,
        seeds: Iterable[int] = (0, 1),
        routers: Iterable[str] | None = None,
    ) -> int:
        """Pre-route the paper's workload families into the cache.

        Generates every ``(grid size, workload, seed, router)``
        combination via :mod:`repro.perm.generators` and routes the ones
        not already cached. Returns the number of newly computed
        schedules (0 on a fully warm cache).
        """
        seeds = list(seeds)
        workload_names = sorted(workloads) if workloads is not None else sorted(WORKLOADS)
        router_names = list(routers) if routers is not None else [self.default_router]
        requests: list[RouteRequest] = []
        for size in sizes:
            shape = (size, size) if isinstance(size, int) else tuple(size)
            grid = GridGraph(*shape)
            for workload in workload_names:
                for seed in seeds:
                    perm = make_workload(workload, grid, seed=seed)
                    for router in router_names:
                        requests.append(RouteRequest(grid, perm, router))
        results = self.executor.execute(requests)
        self.telemetry.incr("warmups")
        return sum(1 for r in results if r.source == "computed")

    def stats(self) -> dict[str, Any]:
        """Cache counters, telemetry and configuration, JSON-ready.

        With a sharded schedule cache the ``schedule_cache`` section
        additionally carries ``n_shards``, ``rejected_puts``, a
        per-shard breakdown under ``shards`` and a
        ``disk_errors_by_shard`` map; with a cluster cache it carries a
        ``cluster`` section (ring membership, per-node health, remote
        hit/miss/repair counters).
        """
        from ..kernels import get_backend

        try:
            effective_backend = get_backend(self.kernel_backend).name
        except ReproError:  # pragma: no cover - misconfigured default
            effective_backend = self.kernel_backend
        return {
            "schedule_cache": self.cache.as_dict(),
            "transpile_cache": self.transpile_cache.as_dict(),
            "telemetry": self.telemetry.snapshot(),
            "traces": self.traces.stats() if self.traces is not None else None,
            "max_workers": self.executor.max_workers,
            "default_router": self.default_router,
            "kernel_backend": effective_backend,
        }
