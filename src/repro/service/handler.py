"""Transport-agnostic request handling shared by every service front end.

The NDJSON daemon (:mod:`repro.service.daemon`) and the HTTP facade
(:mod:`repro.service.http`) accept the same JSON request documents and
must answer with the same response documents — the only thing that
differs is the framing (one line per request vs. an HTTP message). The
:class:`RequestHandler` owns the per-op *implementations* — document
validation, the op methods driving an
:class:`~repro.service.aio.AsyncRoutingService`, error isolation, and
the stable machine-readable error codes both transports expose. The
request *lifecycle* around those ops — decode, authenticate, admit,
enqueue, execute, encode — lives in exactly one place, the
:class:`~repro.service.pipeline.RequestPipeline`;
:meth:`RequestHandler.dispatch` delegates there, so existing callers
keep working while both transports share one path.

Error codes (the ``"code"`` field on ``"ok": false`` responses):

==================== ==================================================
``bad_json``         The payload was not a JSON object.
``bad_request``      A well-formed JSON object that fails validation
                     (missing ``rows``/``cols``, bad perm, bad option
                     types, ...).
``unknown_op``       The ``op`` field names no known operation.
``timeout``          The request exceeded its per-request timeout.
``route_error``      Routing itself failed for this instance.
``transpile_error``  Transpilation failed for this instance.
``stale_epoch``      A ``topology_update`` lost the epoch
                     compare-and-set race (re-read and retry).
``unauthorized``     Tenancy is enforced and the request carried no
                     (or an unknown) API key (HTTP 401).
``rate_limited``     Admission control refused the request — token
                     bucket, queue quota, or load shedding (HTTP 429
                     with ``Retry-After``).
``internal``         An unexpected server-side failure (isolated per
                     request; the connection survives).
==================== ==================================================

Successful responses never carry ``code``. Batch entries keep the batch
error-isolation contract: a bad entry yields an ``"ok": false`` entry in
its slot, never a failure of the surrounding batch.

Besides the routing ops, the handler exposes the **remote-shard cache
protocol** (``cache_get`` / ``cache_put`` / ``cache_stats``) that
:mod:`repro.service.cluster` peers speak. These ops always address the
*local* cache tier — a daemon answering a peer never fans the probe
back out to the cluster, which is what makes the ring recursion-free.
Schedules cross this protocol in one of two encodings, negotiated per
request: the legacy ``schedule`` JSON document, or — when the caller
advertises ``"codec": 1`` — a base64-wrapped binary
:mod:`repro.routing.codec` frame under ``schedule_b64``. Responses echo
``"codec": 1`` so clients learn the capability and upgrade their next
``cache_put``; daemons predating the codec ignore the advert and keep
speaking JSON, which is what lets mixed-version rings interoperate.
Runtime reconfiguration rides the same surface: ``topology_get`` /
``topology_update`` read and mutate the daemon's epoch-versioned
:class:`~repro.service.cluster.ClusterTopology` (join / leave /
replace, guarded by an epoch compare-and-set), which is how ``repro
topology`` scales a live ring without restarts.

This module also renders the service's :meth:`stats` document as
Prometheus text exposition format (:func:`render_prometheus`) for the
HTTP ``/metrics`` endpoint and the NDJSON ``metrics`` op.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import functools
import json
from typing import Any, Mapping, Sequence

from .. import __version__
from ..errors import ReproError, ScheduleError, StaleEpochError
from ..graphs.grid import GridGraph
from ..perm.generators import make_workload
from ..perm.permutation import Permutation
from ..routing.codec import decode_schedule, encode_schedule, negotiated_version
from ..routing.serialize import schedule_from_json, schedule_to_json
from .aio import AsyncRoutingService
from .executor import RouteRequest
from .service import (
    TranspileRequest,
    route_result_to_dict,
    transpile_outcome_to_dict,
)
from .tracing import TraceBuffer

#: Ops that open a trace per request. Introspection ops (``ping``,
#: ``stats``, ``metrics``, ``trace_get`` itself, topology reads) are
#: excluded so health probes and scrapers never pollute the trace ring.
TRACED_OPS = frozenset({"route", "transpile", "cache_get", "cache_put"})

__all__ = [
    "ERROR_CODES",
    "RequestHandler",
    "error_doc",
    "render_prometheus",
    "request_from_doc",
    "transpile_request_from_doc",
]

#: The stable error codes with one-line meanings (documentation and
#: introspection; the authoritative list is the module docstring table).
ERROR_CODES: dict[str, str] = {
    "bad_json": "payload was not a JSON object",
    "bad_request": "request document failed validation",
    "unknown_op": "no such operation",
    "timeout": "request exceeded its timeout",
    "route_error": "routing failed for this instance",
    "transpile_error": "transpilation failed for this instance",
    "stale_epoch": "topology update lost the epoch compare-and-set race",
    "unauthorized": "no (or an unknown) API key while tenancy is enforced",
    "rate_limited": "refused by admission control; retry later",
    "internal": "unexpected server-side failure",
}


def error_doc(code: str, message: str, op: str | None = None) -> dict[str, Any]:
    """A failed response document with a stable machine-readable code."""
    doc: dict[str, Any] = {"ok": False, "code": code, "error": message}
    if op is not None:
        doc["op"] = op
    return doc


def request_from_doc(doc: Mapping[str, Any]) -> RouteRequest:
    """Build a :class:`RouteRequest` from a JSON request document.

    The document needs ``rows``/``cols`` plus either an explicit
    ``perm`` array or a ``workload`` name (with optional ``seed``), and
    optionally ``router`` / ``options`` — the same shape the ``repro
    batch`` request file uses.

    Raises
    ------
    ReproError
        On a malformed document (missing keys, bad grid, bad perm).
    """
    if not isinstance(doc, Mapping):
        raise ReproError("expected a JSON object")
    try:
        rows, cols = int(doc["rows"]), int(doc["cols"])
    except (KeyError, TypeError, ValueError):
        raise ReproError("'rows' and 'cols' integers required") from None
    grid = GridGraph(rows, cols)
    if "perm" in doc:
        try:
            perm = Permutation(doc["perm"])
        except ReproError:
            raise
        except (TypeError, ValueError) as exc:
            # Bad element types surface as numpy coercion errors; keep
            # the validation contract (ReproError on malformed docs).
            raise ReproError(f"bad 'perm': {exc}") from None
    elif "workload" in doc:
        perm = make_workload(doc["workload"], grid, seed=doc.get("seed", 0))
    else:
        raise ReproError("needs 'perm' or 'workload'")
    options = doc.get("options", {})
    if not isinstance(options, Mapping):
        raise ReproError("'options' must be a JSON object")
    return RouteRequest(
        graph=grid,
        perm=perm,
        router=str(doc.get("router", "local")),
        options=dict(options),
    )


def transpile_request_from_doc(doc: Mapping[str, Any]) -> TranspileRequest:
    """Build a :class:`TranspileRequest` from a JSON request document.

    The document needs ``qasm`` (OpenQASM 2 text) and ``rows``/``cols``,
    and optionally ``router`` / ``mapping`` / ``seed`` / ``completion``
    / ``options``.

    Raises
    ------
    ReproError
        On a malformed document.
    """
    if not isinstance(doc, Mapping):
        raise ReproError("expected a JSON object")
    qasm = doc.get("qasm")
    if not isinstance(qasm, str) or not qasm.strip():
        raise ReproError("'qasm' OpenQASM 2 text required")
    try:
        rows, cols = int(doc["rows"]), int(doc["cols"])
    except (KeyError, TypeError, ValueError):
        raise ReproError("'rows' and 'cols' integers required") from None
    options = doc.get("options", {})
    if not isinstance(options, Mapping):
        raise ReproError("'options' must be a JSON object")
    try:
        seed = int(doc.get("seed", 0))
    except (TypeError, ValueError):
        raise ReproError("'seed' must be an integer") from None
    return TranspileRequest(
        qasm=qasm,
        graph=GridGraph(rows, cols),
        router=str(doc.get("router", "local")),
        mapping=str(doc.get("mapping", "identity")),
        seed=seed,
        completion=str(doc.get("completion", "minimal")),
        options=dict(options),
    )


def _timeout_from_doc(doc: Mapping[str, Any]) -> float | None:
    """The optional per-request ``timeout`` field, validated.

    Raises
    ------
    ReproError
        When the field is present but not a number — a validation
        failure (``bad_request``), not an internal error.
    """
    timeout = doc.get("timeout")
    if timeout is None:
        return None
    try:
        return float(timeout)
    except (TypeError, ValueError):
        raise ReproError(f"'timeout' must be a number, got {timeout!r}") from None


class RequestHandler:
    """One request document in, one response document out — any transport.

    Wraps an :class:`AsyncRoutingService`; never raises from its public
    coroutines (failures come back as ``"ok": false`` documents with a
    stable ``code``), except for ``asyncio.CancelledError``, which
    always propagates so transports can tear connections down cleanly.
    """

    def __init__(self, service: AsyncRoutingService) -> None:
        self.service = service
        self._pipeline: Any = None

    @property
    def telemetry(self):
        """The wrapped service's telemetry registry."""
        return self.service.telemetry

    @property
    def traces(self) -> TraceBuffer | None:
        """The wrapped service's trace ring (``None`` = tracing off)."""
        return getattr(self.service.service, "traces", None)

    def node_id(self) -> str:
        """This daemon's cluster node id (empty string off-cluster)."""
        cache = self.service.service.cache
        return str(getattr(cache, "node_id", "") or "")

    def health_info(self) -> dict[str, Any]:
        """Identity fields shared by ``ping`` and HTTP ``/healthz``.

        Reports the package ``version`` always, plus ``node_id`` and the
        topology ``epoch`` when the daemon runs in cluster mode — enough
        for an operator (or a rolling deploy) to tell which build and
        which ring generation answered the probe.
        """
        info: dict[str, Any] = {"version": __version__}
        node_id = self.node_id()
        if node_id:
            info["node_id"] = node_id
        topology = getattr(self.service.service, "cluster_topology", None)
        if topology is not None:
            info["epoch"] = topology.epoch
        return info

    # ------------------------------------------------------------------
    # op dispatch (delegates to the request pipeline)
    # ------------------------------------------------------------------
    def _get_pipeline(self):
        """The lazily built :class:`~repro.service.pipeline.RequestPipeline`.

        Imported lazily because the pipeline module imports this one
        (it reuses :func:`error_doc`, :data:`TRACED_OPS` and the op
        methods); building it on first dispatch keeps the import graph
        acyclic without a third module.
        """
        pipeline = self._pipeline
        if pipeline is None:
            from .pipeline import RequestPipeline

            pipeline = self._pipeline = RequestPipeline(self.service, handler=self)
        return pipeline

    async def dispatch_line(self, line: str | bytes) -> dict[str, Any]:
        """One raw request line -> one response document (never raises).

        Delegates to
        :meth:`~repro.service.pipeline.RequestPipeline.process_line`.
        """
        return await self._get_pipeline().process_line(line)

    async def dispatch(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one request document by ``op`` (default ``route``).

        Delegates to
        :meth:`~repro.service.pipeline.RequestPipeline.process` — the
        full decode → authenticate → admit → enqueue → execute → encode
        lifecycle. Work ops (:data:`TRACED_OPS`) run under a root span
        named ``handler.<op>``; a ``trace`` field carrying a W3C
        ``traceparent`` joins the request to the caller's trace (the
        cross-daemon hop), and the response echoes the ``trace_id`` so
        clients can fetch the finished trace via ``trace_get``.
        """
        return await self._get_pipeline().process(doc)

    def trace_get_doc(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one ``trace_get``: finished traces from the local ring.

        ``trace_id`` selects one trace (``traces`` is empty when it has
        already been evicted); otherwise the newest traces come back,
        optionally filtered by ``min_seconds`` (total duration) and
        truncated to ``limit``. The response always carries the ring's
        ``buffer`` stats so callers can see drop pressure. Raises
        :class:`ReproError` on malformed fields or when tracing is
        disabled (``--trace-buffer 0``).
        """
        buffer = self.traces
        if buffer is None:
            raise ReproError(
                "tracing is disabled on this daemon (started with --trace-buffer 0)"
            )
        trace_id = doc.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ReproError("'trace_id' must be a string")
        limit = doc.get("limit")
        if limit is not None:
            try:
                limit = int(limit)
            except (TypeError, ValueError):
                raise ReproError(f"'limit' must be an integer, got {limit!r}") from None
            if limit < 0:
                raise ReproError("'limit' must be >= 0")
        min_seconds = doc.get("min_seconds")
        if min_seconds is not None:
            try:
                min_seconds = float(min_seconds)
            except (TypeError, ValueError):
                raise ReproError(
                    f"'min_seconds' must be a number, got {min_seconds!r}"
                ) from None
        if trace_id:
            trace = buffer.get(trace_id)
            traces = [trace] if trace is not None else []
        else:
            traces = buffer.list()
            if min_seconds:
                traces = [t for t in traces if t.duration >= min_seconds]
            if limit is not None:
                traces = traces[:limit]
        return {
            "ok": True,
            "op": "trace_get",
            "count": len(traces),
            "traces": [t.to_doc() for t in traces],
            "buffer": buffer.stats(),
        }

    # ------------------------------------------------------------------
    # single-request ops
    # ------------------------------------------------------------------
    async def route_doc(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Route one request document into one response document.

        Raises :class:`ReproError` on a malformed document (callers go
        through :meth:`dispatch` or catch it themselves); routing
        failures come back as ``"ok": false`` result documents.
        """
        req = request_from_doc(doc)
        result = await self.service.submit_async(
            req.graph,
            req.perm,
            router=req.router,
            timeout=_timeout_from_doc(doc),
            **dict(req.options),
        )
        resp = route_result_to_dict(
            result, include_schedule=bool(doc.get("include_schedule"))
        )
        resp["op"] = "route"
        return _attach_result_code(resp, "route_error")

    async def transpile_doc(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Transpile one request document into one response document."""
        req = transpile_request_from_doc(doc)
        include_qasm = bool(doc.get("include_qasm"))
        outcomes = await self.service.transpile_batch_async(
            [req], include_qasm=include_qasm, timeout=_timeout_from_doc(doc)
        )
        resp = transpile_outcome_to_dict(outcomes[0])
        resp["op"] = "transpile"
        return _attach_result_code(resp, "transpile_error")

    # ------------------------------------------------------------------
    # remote-shard cache ops (the cluster protocol)
    # ------------------------------------------------------------------
    def _local_cache(self):
        """The **local** schedule-cache tier, never the cluster wrapper.

        A :class:`~repro.service.cluster.ClusterScheduleCache` exposes
        its local tier as ``.local``; serving peers from it (instead of
        from the cluster view) keeps peer probes recursion-free.
        """
        cache = self.service.service.cache
        return getattr(cache, "local", cache)

    async def _cache_call(self, fn, *args):
        """Run a local-tier cache operation without stalling the event loop.

        Memory-only tiers answer synchronously; a disk-backed tier may
        touch files, so it hops to a worker thread (the same rule
        :class:`AsyncRoutingService` applies on the routing path).
        """
        cache = self._local_cache()
        if getattr(cache, "disk_dir", None) is None:
            return fn(*args)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)

    @staticmethod
    def _digest_from_doc(doc: Mapping[str, Any]) -> str:
        digest = doc.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ReproError("'digest' string required")
        return digest

    @staticmethod
    def _codec_from_doc(doc: Mapping[str, Any]) -> int:
        """The caller's advertised codec version (0 = JSON only)."""
        codec = doc.get("codec", 0)
        try:
            return int(codec)
        except (TypeError, ValueError):
            return 0

    async def cache_get_doc(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one ``cache_get``: local-tier probe, schedule as JSON.

        The response carries ``found`` plus, on a hit, the schedule: a
        base64 binary :func:`~repro.routing.codec.encode_schedule`
        frame under ``schedule_b64`` when the request advertised
        ``"codec": 1``, otherwise the legacy
        :func:`~repro.routing.serialize.schedule_to_json` document
        under ``schedule``. The response always echoes ``"codec"`` so
        callers learn the capability for their next ``cache_put``.
        Raises :class:`ReproError` on a malformed request
        (``bad_request`` via :meth:`dispatch`).
        """
        digest = self._digest_from_doc(doc)
        cache = self._local_cache()
        schedule = await self._cache_call(cache.get, digest)
        resp: dict[str, Any] = {
            "ok": True,
            "op": "cache_get",
            "digest": digest,
            "codec": negotiated_version(),
            "found": schedule is not None,
        }
        if schedule is not None:
            if min(self._codec_from_doc(doc), negotiated_version()) >= 1:
                frame = encode_schedule(schedule)
                resp["schedule_b64"] = base64.b64encode(frame).decode("ascii")
            else:
                resp["schedule"] = json.loads(schedule_to_json(schedule))
        return resp

    async def cache_put_doc(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one ``cache_put``: validate and store into the local tier.

        The schedule arrives either as ``schedule_b64`` (a base64
        binary :func:`~repro.routing.codec.encode_schedule` frame,
        re-validated swap by swap during decode) or as the legacy
        ``schedule`` JSON document (re-validated by the
        :class:`~repro.routing.schedule.Schedule` constructor) — either
        way a peer can never plant a corrupt entry. ``cost`` optionally
        carries the original compute seconds for the admission policy.
        The response echoes ``"codec"`` so callers learn the
        capability. Raises :class:`ReproError` on malformed requests.
        """
        digest = self._digest_from_doc(doc)
        frame_b64 = doc.get("schedule_b64")
        if frame_b64 is not None:
            if negotiated_version() < 1:
                # REPRO_CODEC=0 emulates a pre-codec daemon on the wire:
                # refusing the frame triggers the sender's JSON resend.
                raise ReproError("binary frames disabled; pass 'schedule'")
            if not isinstance(frame_b64, str):
                raise ReproError("'schedule_b64' must be a base64 string")
            try:
                frame = base64.b64decode(frame_b64, validate=True)
            except binascii.Error as exc:
                raise ReproError(f"bad 'schedule_b64': {exc}") from None
            try:
                schedule = decode_schedule(frame)
            except ScheduleError as exc:
                raise ReproError(f"bad 'schedule_b64': {exc}") from None
        else:
            payload = doc.get("schedule")
            if not isinstance(payload, Mapping):
                raise ReproError(
                    "'schedule' must be a schedule JSON document "
                    "(or pass 'schedule_b64')"
                )
            schedule = schedule_from_json(json.dumps(payload))
        cost = doc.get("cost")
        if cost is not None:
            try:
                cost = float(cost)
            except (TypeError, ValueError):
                raise ReproError(f"'cost' must be a number, got {cost!r}") from None
        cache = self._local_cache()
        await self._cache_call(
            functools.partial(cache.put, digest, schedule, cost=cost)
        )
        self.telemetry.incr("cache_put_ops")
        return {
            "ok": True,
            "op": "cache_put",
            "digest": digest,
            "codec": negotiated_version(),
            "stored": True,
        }

    def local_cache_stats(self) -> dict[str, Any]:
        """The local cache tier's stats document (no network I/O)."""
        return self._local_cache().as_dict()

    # ------------------------------------------------------------------
    # topology ops (runtime ring reconfiguration)
    # ------------------------------------------------------------------
    def _topology(self):
        """The service's :class:`~repro.service.cluster.ClusterTopology`.

        Raises :class:`ReproError` (``bad_request`` via
        :meth:`dispatch`) when the daemon runs without cluster mode —
        there is no ring to describe or change.
        """
        topology = getattr(self.service.service, "cluster_topology", None)
        if topology is None:
            raise ReproError(
                "this daemon has no cluster topology (start it with a "
                "dialable address, --peer or --topology-file)"
            )
        return topology

    def topology_get_doc(self) -> dict[str, Any]:
        """Serve one ``topology_get``: the current epoch + member set."""
        return {
            "ok": True,
            "op": "topology_get",
            "topology": self._topology().as_dict(),
        }

    def topology_update_doc(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one ``topology_update``: epoch-guarded join/leave/replace.

        The document carries ``action`` (``join`` / ``leave`` /
        ``replace``, default ``replace``) plus ``node`` or ``members``,
        and optionally ``epoch`` / ``expected_epoch`` / ``metadata``
        (see :meth:`~repro.service.cluster.ClusterTopology.apply_doc`).
        A lost epoch race answers ``"ok": false`` with the stable
        ``stale_epoch`` code instead of raising, so admins can re-read
        and retry; malformed documents raise :class:`ReproError`
        (``bad_request``).
        """
        topology = self._topology()
        try:
            view = topology.apply_doc(doc)
        except StaleEpochError as exc:
            return error_doc("stale_epoch", str(exc), op="topology_update")
        self.telemetry.incr("topology_updates")
        return {
            "ok": True,
            "op": "topology_update",
            "epoch": view.epoch,
            "topology": view.as_dict(),
        }

    def gossip_doc(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one ``gossip``: a SWIM probe (or indirect-probe request).

        Hands the document to this daemon's
        :class:`~repro.service.gossip.GossipNode`, which merges the
        sender's view and answers with its own (``ack`` plus the usual
        epoch/members/states piggyback). A ``ping_req`` makes this
        daemon probe the named target on the sender's behalf, so the
        call can block for up to one gossip transport timeout — the
        pipeline runs this op on a worker thread for that reason.

        Raises :class:`ReproError` (``bad_request``) when gossip is not
        enabled on this daemon or the document is malformed.
        """
        node = getattr(self.service.service, "gossip", None)
        if node is None:
            raise ReproError(
                "gossip is disabled on this daemon (start it with "
                "--gossip-interval)"
            )
        self.telemetry.incr("gossip_messages")
        return {"ok": True, "op": "gossip", **node.handle(doc)}

    # ------------------------------------------------------------------
    # batch ops (the HTTP surface)
    # ------------------------------------------------------------------
    async def route_batch_docs(
        self,
        docs: Sequence[Any],
        include_schedule: bool = False,
        timeout: float | None = None,
    ) -> list[dict[str, Any]]:
        """Route many request documents; results are index-aligned.

        A malformed entry yields a ``bad_request`` document in its slot
        — the rest of the batch still routes (error isolation).
        """
        entries: list[dict[str, Any] | None] = [None] * len(docs)
        requests: list[RouteRequest] = []
        positions: list[int] = []
        for i, doc in enumerate(docs):
            try:
                requests.append(request_from_doc(doc))
                positions.append(i)
            except Exception as exc:  # noqa: BLE001 - isolate per entry
                entries[i] = _entry_error(i, exc, op="route")
        if requests:
            results = await self.service.submit_batch_async(
                requests, timeout=timeout
            )
            for i, result in zip(positions, results):
                resp = route_result_to_dict(
                    result, include_schedule=include_schedule
                )
                resp["op"] = "route"
                entries[i] = _attach_result_code(resp, "route_error")
        return [entry for entry in entries if entry is not None]

    async def transpile_batch_docs(
        self,
        docs: Sequence[Any],
        include_qasm: bool = False,
        timeout: float | None = None,
    ) -> list[dict[str, Any]]:
        """Transpile many request documents; semantics mirror routing."""
        entries: list[dict[str, Any] | None] = [None] * len(docs)
        requests: list[TranspileRequest] = []
        positions: list[int] = []
        for i, doc in enumerate(docs):
            try:
                requests.append(transpile_request_from_doc(doc))
                positions.append(i)
            except Exception as exc:  # noqa: BLE001 - isolate per entry
                entries[i] = _entry_error(i, exc, op="transpile")
        if requests:
            outcomes = await self.service.transpile_batch_async(
                requests, include_qasm=include_qasm, timeout=timeout
            )
            for i, outcome in zip(positions, outcomes):
                resp = transpile_outcome_to_dict(outcome)
                resp["op"] = "transpile"
                entries[i] = _attach_result_code(resp, "transpile_error")
        return [entry for entry in entries if entry is not None]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The wrapped service's stats document."""
        return self.service.stats()

    def prometheus_metrics(self) -> str:
        """The stats document as Prometheus text exposition format."""
        return render_prometheus(self.service.stats())


def _entry_error(index: int, exc: Exception, op: str) -> dict[str, Any]:
    """One failed batch entry: validation -> ``bad_request``, else
    ``internal`` — but never a failure of the surrounding batch."""
    if isinstance(exc, ReproError):
        return error_doc("bad_request", f"request {index}: {exc}", op=op)
    return error_doc(
        "internal", f"request {index}: {type(exc).__name__}: {exc}", op=op
    )


def _attach_result_code(resp: dict[str, Any], failure_code: str) -> dict[str, Any]:
    """Stamp a stable error code onto a failed per-request result doc."""
    if not resp.get("ok"):
        error = resp.get("error") or ""
        resp["code"] = "timeout" if error.startswith("TimeoutError") else failure_code
    return resp


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_label(value: str) -> str:
    """Escape a label value per the exposition-format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_CACHE_COUNTER_FIELDS = (
    "hits",
    "misses",
    "evictions",
    "puts",
    "disk_hits",
    "disk_writes",
    "disk_errors",
    "rejected_puts",
)
_CACHE_GAUGE_FIELDS = ("entries", "maxsize", "hit_rate", "n_shards")

_CLUSTER_COUNTER_FIELDS = (
    "remote_hits",
    "remote_misses",
    "remote_errors",
    "remote_puts",
    "remote_put_errors",
    "read_repairs",
    "degraded_gets",
    "handoff_rounds",
    "handoff_keys_sent",
    "handoff_errors",
    "handoff_aborts",
    "handoff_evicted",
    "sweep_rounds",
    "sweep_repairs",
    "sweep_errors",
)

#: Summary quantiles exported per latency histogram: stats-doc key ->
#: Prometheus ``quantile`` label.
_QUANTILES = (("p50_seconds", "0.5"), ("p95_seconds", "0.95"), ("p99_seconds", "0.99"))


def render_prometheus(stats: Mapping[str, Any]) -> str:
    """Render a ``RoutingService.stats()`` document as Prometheus text.

    Telemetry counters become ``repro_counter_total{name=...}``,
    latency histograms become ``repro_latency_seconds`` summaries
    (bucket-resolution quantiles, exact sum/count), and the cache
    sections become ``repro_<cache>_<field>`` counters and gauges.
    The output conforms to text exposition format version 0.0.4.
    """
    lines: list[str] = []
    telemetry = stats.get("telemetry") or {}

    counters = telemetry.get("counters") or {}
    lines.append("# HELP repro_counter_total Service event counters by name.")
    lines.append("# TYPE repro_counter_total counter")
    for name in sorted(counters):
        lines.append(
            f'repro_counter_total{{name="{_prom_label(str(name))}"}} {counters[name]}'
        )

    # Labeled counters ("labeled_counters" in the snapshot — e.g. the
    # per-tenant tenant_requests series) each get their own metric
    # family: repro_<name>_total{<labels>}.
    labeled = telemetry.get("labeled_counters") or {}
    for name in sorted(labeled):
        metric = f"repro_{name}_total"
        lines.append(f"# TYPE {metric} counter")
        series_list = labeled[name]
        if not isinstance(series_list, list):
            continue
        for series in series_list:
            if not isinstance(series, Mapping):
                continue
            labels = series.get("labels") or {}
            label_str = ",".join(
                f'{k}="{_prom_label(str(v))}"' for k, v in sorted(labels.items())
            )
            lines.append(f'{metric}{{{label_str}}} {series.get("value", 0)}')

    gauges = telemetry.get("gauges") or {}
    for name in sorted(gauges):
        metric = f"repro_{name}"
        value = gauges[name]
        lines.append(f"# TYPE {metric} gauge")
        if isinstance(value, list):
            for series in value:
                if not isinstance(series, Mapping):
                    continue
                labels = series.get("labels") or {}
                label_str = ",".join(
                    f'{k}="{_prom_label(str(v))}"' for k, v in sorted(labels.items())
                )
                lines.append(f'{metric}{{{label_str}}} {series.get("value", 0)}')
        else:
            lines.append(f"{metric} {value}")

    # Per-stage routing-phase summaries ("stage.<router>.<backend>.<stage>"
    # histograms, fed by the StageProfiler) get their own metric family
    # with router/backend/stage labels; everything else stays under the
    # op label.
    latency = telemetry.get("latency") or {}
    stage_names = sorted(n for n in latency if str(n).startswith("stage."))
    lines.append("# HELP repro_latency_seconds Operation latency summaries.")
    lines.append("# TYPE repro_latency_seconds summary")
    for name in sorted(latency):
        if str(name).startswith("stage."):
            continue
        hist = latency[name]
        label = _prom_label(str(name))
        for key, quantile in _QUANTILES:
            if key in hist:
                lines.append(
                    f'repro_latency_seconds{{op="{label}",quantile="{quantile}"}} '
                    f"{hist[key]}"
                )
        lines.append(
            f'repro_latency_seconds_sum{{op="{label}"}} '
            f"{hist.get('total_seconds', 0.0)}"
        )
        lines.append(
            f'repro_latency_seconds_count{{op="{label}"}} {hist.get("count", 0)}'
        )

    if stage_names:
        lines.append(
            "# HELP repro_stage_seconds Per-stage routing-phase "
            "latency summaries."
        )
        lines.append("# TYPE repro_stage_seconds summary")
        for name in stage_names:
            hist = latency[name]
            # "stage.<router>.<backend>.<stage>"; a stage name may itself
            # contain dots, so split at most three times from the left.
            # A three-part key ("stage.<router>.<stage>", the pre-backend
            # format) renders with an empty backend label.
            parts = str(name).split(".", 3)
            router = parts[1] if len(parts) > 1 else ""
            if len(parts) > 3:
                backend, stage = parts[2], parts[3]
            else:
                backend, stage = "", parts[2] if len(parts) > 2 else ""
            if backend == "-":
                backend = ""
            label = (
                f'backend="{_prom_label(backend)}",'
                f'router="{_prom_label(router)}",stage="{_prom_label(stage)}"'
            )
            for key, quantile in _QUANTILES:
                if key in hist:
                    lines.append(
                        f'repro_stage_seconds{{{label},quantile="{quantile}"}} '
                        f"{hist[key]}"
                    )
            lines.append(
                f"repro_stage_seconds_sum{{{label}}} "
                f"{hist.get('total_seconds', 0.0)}"
            )
            lines.append(
                f'repro_stage_seconds_count{{{label}}} {hist.get("count", 0)}'
            )

    for section in ("schedule_cache", "transpile_cache"):
        cache = stats.get(section) or {}
        prefix = f"repro_{section}"
        for fld in _CACHE_COUNTER_FIELDS:
            if fld in cache:
                lines.append(f"# TYPE {prefix}_{fld}_total counter")
                lines.append(f"{prefix}_{fld}_total {cache[fld]}")
        for fld in _CACHE_GAUGE_FIELDS:
            if fld in cache:
                lines.append(f"# TYPE {prefix}_{fld} gauge")
                lines.append(f"{prefix}_{fld} {cache[fld]}")
        # Per-shard disk errors, labeled, so one failing shard's disk
        # tier is visible instead of drowned in the rollup sum.
        shards = cache.get("shards")
        if isinstance(shards, list) and shards:
            lines.append(f"# TYPE {prefix}_shard_disk_errors_total counter")
            for shard in shards:
                if isinstance(shard, Mapping) and "disk_errors" in shard:
                    lines.append(
                        f"{prefix}_shard_disk_errors_total"
                        f'{{shard="{shard.get("shard")}"}} '
                        f'{shard["disk_errors"]}'
                    )

    cluster = (stats.get("schedule_cache") or {}).get("cluster") or {}
    if cluster:
        lines.append("# HELP repro_cluster Cross-daemon cache-sharding counters.")
        for fld in _CLUSTER_COUNTER_FIELDS:
            if fld in cluster:
                lines.append(f"# TYPE repro_cluster_{fld}_total counter")
                lines.append(f"repro_cluster_{fld}_total {cluster[fld]}")
        lines.append("# TYPE repro_cluster_ring_nodes gauge")
        lines.append(f"repro_cluster_ring_nodes {len(cluster.get('ring_nodes', []))}")
        lines.append("# TYPE repro_cluster_dead_nodes gauge")
        lines.append(f"repro_cluster_dead_nodes {len(cluster.get('dead_nodes', []))}")
        lines.append("# TYPE repro_cluster_replication gauge")
        lines.append(f"repro_cluster_replication {cluster.get('replication', 0)}")
        lines.append("# TYPE repro_cluster_epoch gauge")
        lines.append(f"repro_cluster_epoch {cluster.get('epoch', 0)}")
        lines.append("# TYPE repro_cluster_retry_interval_seconds gauge")
        lines.append(
            "repro_cluster_retry_interval_seconds "
            f"{cluster.get('retry_interval', 0)}"
        )
        lines.append("# TYPE repro_cluster_handoff_active gauge")
        lines.append(
            f"repro_cluster_handoff_active {1 if cluster.get('handoff_active') else 0}"
        )
        nodes = cluster.get("nodes")
        if isinstance(nodes, Mapping) and nodes:
            lines.append("# TYPE repro_cluster_node_up gauge")
            for node_id in sorted(nodes):
                node = nodes[node_id]
                up = 1 if isinstance(node, Mapping) and node.get("up") else 0
                lines.append(
                    f'repro_cluster_node_up{{node="{_prom_label(str(node_id))}"}} {up}'
                )
            lines.append("# TYPE repro_cluster_node_cooldown_seconds gauge")
            for node_id in sorted(nodes):
                node = nodes[node_id]
                cooldown = (
                    node.get("cooldown_remaining", 0.0)
                    if isinstance(node, Mapping)
                    else 0.0
                )
                lines.append(
                    "repro_cluster_node_cooldown_seconds"
                    f'{{node="{_prom_label(str(node_id))}"}} {cooldown}'
                )

    max_workers = stats.get("max_workers")
    if isinstance(max_workers, int):
        lines.append("# TYPE repro_max_workers gauge")
        lines.append(f"repro_max_workers {max_workers}")
    return "\n".join(lines) + "\n"
