"""Asyncio front end over the routing service.

:class:`AsyncRoutingService` exposes the same request surface as
:class:`~repro.service.service.RoutingService` — submit one, submit a
batch, transpile a batch — as coroutines that never block the event
loop. Misses are shipped to the executor's worker pool with
:meth:`~repro.service.executor.BatchExecutor.submit_job` and awaited
via ``asyncio.wrap_future`` (process pool) or the thread fallback
(inline executors), instead of blocking on ``pool.map`` the way the
sync facade does. That makes it the natural engine for the daemon
(:mod:`repro.service.daemon`), where many client connections multiplex
onto one warm pool.

Three service-y concerns are handled here rather than left to callers:

* **Bounded, fair concurrency** — a
  :class:`~repro.service.tenancy.FairScheduler` caps in-flight requests
  (``max_concurrency``) and arbitrates the queue by weighted-fair
  queueing over the calling tenant (taken from the ambient
  :func:`~repro.service.tenancy.current_tenant`, which the request
  pipeline binds; library callers run as the default tenant and see
  plain FIFO). The queue depth and in-flight gauges are exported
  through the shared :class:`~repro.service.telemetry.Telemetry` as
  ``aio_queue_depth`` / ``aio_inflight``, plus per-tenant
  ``tenant_queue_depth`` / ``tenant_inflight`` gauge series.
* **Per-request timeouts** — each request may carry a ``timeout`` (or
  inherit ``default_timeout``); an expired request yields an *error
  result* (``source == "error"``, ``TimeoutError`` in ``error``),
  consistent with the batch error-isolation contract. The underlying
  pool task is cancelled when it has not started yet.
* **Dedup** — identical requests inside one batch are computed once,
  exactly like the sync executor (duplicates report ``source ==
  "dedup"``) — and identical *concurrent* route requests from
  different callers (e.g. pipelined daemon connections) are
  single-flight coalesced onto one computation instead of racing the
  cache.

Cancellation is cooperative and clean: cancelling a coroutine releases
its semaphore slot and decrements the gauges, so a cancelled client
never wedges the service.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import functools
import time
from typing import Any, AsyncIterator, Mapping, Sequence

from ..errors import ScheduleError, ServiceClosedError
from ..graphs.base import Graph
from ..perm.permutation import Permutation
from ..routing.codec import decode_schedule
from ..routing.schedule import Schedule
from .executor import (
    RouteRequest,
    RouteResult,
    _route_in_worker,
    record_stage_telemetry,
)
from .keys import RequestKey, graph_spec
from .service import (
    RoutingService,
    TranspileOutcome,
    TranspileRequest,
    _transpile_in_worker,
)
from .tenancy import (
    FairScheduler,
    TenantRegistry,
    current_tenant,
    estimate_cost,
)
from .tracing import record_stage_spans, span

__all__ = ["AsyncRoutingService"]


def _decoded_worker_schedule(body: Any, n_vertices: int) -> Schedule:
    """Decode a pool worker's binary schedule frame, checking the size.

    Workers return :func:`~repro.routing.codec.encode_schedule` frames
    (metadata, including the kernel backend, rides inside the frame);
    the vertex-count check keeps a mis-keyed frame from being cached
    under the wrong request.
    """
    schedule = decode_schedule(body)
    if schedule.n_vertices != n_vertices:
        raise ScheduleError(
            f"schedule on {schedule.n_vertices} vertices for a "
            f"{n_vertices}-vertex graph"
        )
    return schedule


def _route_error(
    index: int, key: RequestKey, router: str, seconds: float, error: str
) -> RouteResult:
    """An error-shaped :class:`RouteResult` (``ok`` False, no schedule)."""
    return RouteResult(
        index=index,
        key=key,
        router=router,
        schedule=None,
        seconds=seconds,
        source="error",
        error=error,
    )


def _consume_outcome(future: "asyncio.Future[Any]") -> None:
    """Retrieve an abandoned future's outcome so it never warns at GC."""
    if not future.cancelled():
        future.exception()


def _as_dedup_route(
    orig: RouteResult, index: int, key: RequestKey, router: str
) -> RouteResult:
    """Clone an original result for a duplicate/coalesced request slot."""
    return RouteResult(
        index=index,
        key=key,
        router=router,
        schedule=orig.schedule,
        seconds=0.0,
        source="dedup" if orig.ok else "error",
        error=orig.error,
    )


def _as_dedup_transpile(
    orig: TranspileOutcome, index: int, digest: str, router: str
) -> TranspileOutcome:
    """Clone an original outcome for a duplicate request slot."""
    return TranspileOutcome(
        index=index,
        digest=digest,
        router=router,
        metrics=orig.metrics,
        physical_qasm=orig.physical_qasm,
        seconds=0.0,
        source="dedup" if orig.ok else "error",
        error=orig.error,
    )


def _transpile_error(
    index: int, digest: str, router: str, seconds: float, error: str
) -> TranspileOutcome:
    """An error-shaped :class:`TranspileOutcome`."""
    return TranspileOutcome(
        index=index,
        digest=digest,
        router=router,
        metrics=None,
        physical_qasm=None,
        seconds=seconds,
        source="error",
        error=error,
    )


class AsyncRoutingService:
    """Bounded-concurrency asyncio facade over a :class:`RoutingService`.

    Parameters
    ----------
    service:
        An existing :class:`RoutingService` to drive. ``None`` builds a
        private one from ``**service_kwargs`` (closed by
        :meth:`aclose`); a borrowed service is left open.
    max_concurrency:
        Maximum simultaneously in-flight requests; further submissions
        queue in the weighted-fair scheduler.
    default_timeout:
        Per-request timeout in seconds applied when a call does not
        pass its own; ``None`` waits indefinitely.
    tenants:
        The :class:`~repro.service.tenancy.TenantRegistry` governing
        authentication and admission. ``None`` builds an open registry
        (everything admitted as the default tenant).
    max_queue_depth:
        Global queued-request bound the request pipeline sheds against
        (``None`` = unbounded). The scheduler itself never refuses
        admitted work; this is advisory state for the admit stage.

    Examples
    --------
    >>> import asyncio
    >>> from repro import GridGraph, random_permutation
    >>> async def demo():
    ...     async with AsyncRoutingService(cache_size=16) as svc:
    ...         grid = GridGraph(3, 3)
    ...         res = await svc.submit_async(grid, random_permutation(grid, seed=1))
    ...         return res.ok, res.source
    >>> asyncio.run(demo())
    (True, 'computed')
    """

    def __init__(
        self,
        service: RoutingService | None = None,
        *,
        max_concurrency: int = 64,
        default_timeout: float | None = None,
        tenants: TenantRegistry | None = None,
        max_queue_depth: int | None = None,
        **service_kwargs: Any,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError(f"max_concurrency must be positive, got {max_concurrency}")
        if service is not None and service_kwargs:
            raise ValueError(
                "pass either an existing service or RoutingService kwargs, not both"
            )
        self.service = (
            service if service is not None else RoutingService(**service_kwargs)
        )
        self._owns_service = service is None
        self.max_concurrency = max_concurrency
        self.default_timeout = default_timeout
        self.tenants = tenants if tenants is not None else TenantRegistry()
        # The scheduler binds to the loop it first awaits on and resets
        # when the service outlives a loop (e.g. successive asyncio.run
        # calls in tests) — only safe while idle, which is the only
        # state a dead loop can leave us in (same rule the semaphore it
        # replaced followed).
        self.scheduler = FairScheduler(
            max_concurrency,
            max_queue_depth=max_queue_depth,
            telemetry=self.service.telemetry,
        )
        # Single-flight map: digest -> future of the in-progress result.
        # Entries live only while their computation runs, so the map is
        # empty whenever the loop changes (no loop-rebinding needed).
        self._inflight: dict[str, asyncio.Future] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        """The shared telemetry registry (the wrapped service's)."""
        return self.service.telemetry

    @property
    def closed(self) -> bool:
        """Whether the underlying service has been closed."""
        return self.service.closed

    async def aclose(self) -> None:
        """Close the owned service without blocking the event loop.

        A borrowed service (passed to ``__init__``) is left open — its
        owner decides its lifetime.
        """
        if self._owns_service and not self.service.closed:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.service.close)

    async def __aenter__(self) -> "AsyncRoutingService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # concurrency plumbing
    # ------------------------------------------------------------------
    @contextlib.asynccontextmanager
    async def _slot(self, cost: float = 1.0) -> AsyncIterator[None]:
        """Acquire one weighted-fair slot for the ambient tenant.

        The tenant comes from the contextvar the request pipeline binds
        (:func:`~repro.service.tenancy.current_tenant`); library
        callers that never went through the pipeline run as the
        registry's default tenant. The scheduler maintains the
        ``aio_queue_depth`` / ``aio_inflight`` gauges and emits the
        ``pipeline.enqueue`` span around the wait.
        """
        tenant = current_tenant() or self.tenants.default_tenant
        async with self.scheduler.slot(tenant, cost):
            yield

    async def _await_job(
        self,
        fn: Any,
        payload: Any,
        timeout: float | None,
        salvage: Any = None,
    ) -> Any:
        """Ship one payload to the executor and await its future.

        Mirrors ``run_jobs``' recovery guarantee: a pool that dies at
        await time (e.g. a worker OOM-killed mid-request) is reset and
        the payload retried once — on the respawned pool or the thread
        fallback — instead of turning every in-flight request into an
        error result. The retry runs on the *remaining* timeout budget,
        so the per-request deadline holds across the recovery.
        """
        t0 = time.perf_counter()
        try:
            return await self._await_job_once(fn, payload, timeout, salvage)
        except (asyncio.TimeoutError, asyncio.CancelledError, ServiceClosedError):
            raise
        except Exception:  # noqa: BLE001 - BrokenProcessPool and friends
            self.telemetry.incr("pool_failures")
            self.service.executor.reset_pool()
            remaining = timeout
            if timeout is not None:
                remaining = timeout - (time.perf_counter() - t0)
                if remaining <= 0:
                    raise asyncio.TimeoutError from None
            return await self._await_job_once(fn, payload, remaining, salvage)

    async def _await_job_once(
        self,
        fn: Any,
        payload: Any,
        timeout: float | None,
        salvage: Any = None,
    ) -> Any:
        """One submit-and-await round.

        The await is shielded so an expired ``timeout`` raises
        immediately even when the pool task is already running (a
        started task cannot be cancelled). An abandoned-but-running
        task is not wasted: ``salvage`` (a callback receiving the
        ``concurrent.futures.Future``) is attached so its eventual
        result can still be cached.
        """
        future = self.service.executor.submit_job(fn, payload)
        wrapped = asyncio.wrap_future(future)
        try:
            return await asyncio.wait_for(asyncio.shield(wrapped), timeout)
        except asyncio.TimeoutError:
            if not future.cancel():
                # Already running: consume the wrapped future's outcome
                # so a late failure never logs "exception was never
                # retrieved", and hand the result to the salvager.
                wrapped.add_done_callback(_consume_outcome)
                if salvage is not None:
                    future.add_done_callback(salvage)
            raise
        except asyncio.CancelledError:
            if not future.cancel():
                wrapped.add_done_callback(_consume_outcome)
            raise

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def submit_async(
        self,
        graph: Graph,
        perm: Permutation,
        router: str | None = None,
        *,
        timeout: float | None = None,
        **options: Any,
    ) -> RouteResult:
        """Route one instance without blocking the event loop.

        Mirrors :meth:`RoutingService.submit`: served from the schedule
        cache when possible, computed on the worker pool otherwise. A
        timeout (argument or ``default_timeout``) turns an overdue
        request into an error result rather than an exception.
        """
        req = RouteRequest(graph, perm, router or self.service.default_router, options)
        return await self._submit_one(req, index=0, timeout=timeout)

    async def submit_batch_async(
        self,
        requests: Sequence[RouteRequest | Mapping[str, Any] | tuple],
        *,
        timeout: float | None = None,
    ) -> list[RouteResult]:
        """Route a batch concurrently; results are index-aligned.

        Accepts the same entry shapes as
        :meth:`RoutingService.submit_batch`. Unique requests run
        concurrently under the semaphore; in-batch duplicates are
        deduplicated exactly like the sync executor (``source ==
        "dedup"``). ``timeout`` applies per request, not to the batch.
        """
        t_batch = time.perf_counter()
        reqs = [self.service._coerce(r) for r in requests]
        keys = [r.key() for r in reqs]
        first_of: dict[str, int] = {}
        tasks: dict[int, asyncio.Task[RouteResult]] = {}
        for i, (req, key) in enumerate(zip(reqs, keys)):
            if key.digest not in first_of:
                first_of[key.digest] = i
                tasks[i] = asyncio.ensure_future(
                    self._submit_one(req, index=i, timeout=timeout, key=key)
                )
        try:
            unique = await asyncio.gather(*tasks.values())
        except BaseException:
            for task in tasks.values():
                task.cancel()
            raise
        by_index = {res.index: res for res in unique}
        results: list[RouteResult] = []
        for i, key in enumerate(keys):
            orig = by_index[first_of[key.digest]]
            if orig.index == i:
                results.append(orig)
                continue
            results.append(_as_dedup_route(orig, i, key, reqs[i].router))
            self.telemetry.incr("aio_requests")
            source = "dedup" if orig.ok else "error"
            self.telemetry.incr(f"aio_source_{source}")
        self.telemetry.incr("aio_batches")
        self.telemetry.observe("aio_batch", time.perf_counter() - t_batch)
        return results

    async def _submit_one(
        self,
        req: RouteRequest,
        index: int,
        timeout: float | None = None,
        key: RequestKey | None = None,
    ) -> RouteResult:
        if timeout is None:
            timeout = self.default_timeout
        async with self._slot(estimate_cost(req.graph.n_vertices)):
            if key is None:
                key = req.key()
            with span("cache.get") as csp:
                cached = await self._cache_get(key.digest)
                csp.set("hit", cached is not None)
            if cached is not None:
                result = RouteResult(
                    index=index,
                    key=key,
                    router=req.router,
                    schedule=cached,
                    seconds=0.0,
                    source="cache",
                )
            else:
                result = await self._miss_single_flight(req, key, index, timeout)
        self.telemetry.incr("aio_requests")
        self.telemetry.incr(f"aio_source_{result.source}")
        if result.source == "computed":
            self.telemetry.observe("aio_route", result.seconds)
        return result

    async def _miss_single_flight(
        self,
        req: RouteRequest,
        key: RequestKey,
        index: int,
        timeout: float | None,
    ) -> RouteResult:
        """Compute a miss, coalescing concurrent identical requests.

        The first caller for a digest computes and publishes its result
        on an in-flight future; concurrent callers for the same digest
        await that future instead of racing a redundant computation
        (they report ``source == "dedup"``, like in-batch duplicates).
        A follower computes for itself when the leader cannot speak for
        it: the leader was cancelled, or the leader's own timeout
        budget expired (this follower may have a longer one).
        """
        leader_fut = self._inflight.get(key.digest)
        if leader_fut is None:
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._inflight[key.digest] = fut
            try:
                result = await self._route_miss(req, key, index, timeout)
            except BaseException:
                raise
            else:
                fut.set_result(result)
                return result
            finally:
                if self._inflight.get(key.digest) is fut:
                    del self._inflight[key.digest]
                if not fut.done():
                    fut.cancel()  # leader failed: wake followers to retry
        try:
            orig = await asyncio.wait_for(asyncio.shield(leader_fut), timeout)
        except asyncio.TimeoutError:
            self.telemetry.incr("aio_timeouts")
            message = f"TimeoutError: request exceeded {timeout}s"
            return _route_error(index, key, req.router, 0.0, message)
        except asyncio.CancelledError:
            if not leader_fut.cancelled():
                raise  # this follower was cancelled, not the leader
            return await self._route_miss(req, key, index, timeout)
        if not orig.ok and orig.error and orig.error.startswith("TimeoutError"):
            # The leader ran out of *its* budget — not a property of the
            # instance. Compute under this request's own timeout.
            return await self._route_miss(req, key, index, timeout)
        self.telemetry.incr("aio_coalesced")
        return _as_dedup_route(orig, index, key, req.router)

    async def _route_miss(
        self,
        req: RouteRequest,
        key: RequestKey,
        index: int,
        timeout: float | None,
    ) -> RouteResult:
        payload = (
            key.digest,
            graph_spec(req.graph),
            req.perm.targets.tolist(),
            req.router,
            dict(req.options),
            self.service.executor.kernel_backend,
        )
        t0 = time.perf_counter()
        try:
            with span("compute", router=req.router) as csp:
                raw = await self._await_job(
                    _route_in_worker,
                    payload,
                    timeout,
                    salvage=self._route_salvager(req, key),
                )
                _digest, status, body, seconds, stages, backend = raw
                csp.set("status", status)
                if backend:
                    csp.set("backend", backend)
                if status == "ok":
                    record_stage_spans(stages)
                    record_stage_telemetry(
                        self.telemetry, req.router, backend, stages
                    )
        except asyncio.TimeoutError:
            self.telemetry.incr("aio_timeouts")
            elapsed = time.perf_counter() - t0
            message = f"TimeoutError: request exceeded {timeout}s"
            return _route_error(index, key, req.router, elapsed, message)
        except (asyncio.CancelledError, ServiceClosedError):
            raise
        except Exception as exc:  # noqa: BLE001 - pool died twice; isolate
            elapsed = time.perf_counter() - t0
            message = f"{type(exc).__name__}: {exc}"
            return _route_error(index, key, req.router, elapsed, message)
        if status != "ok":
            return _route_error(index, key, req.router, seconds, str(body))
        try:
            schedule = _decoded_worker_schedule(body, req.graph.n_vertices)
            if self.service.executor.verify:
                schedule.verify(req.graph, req.perm)
        except Exception as exc:  # noqa: BLE001 - isolate per request
            message = f"{type(exc).__name__}: {exc}"
            return _route_error(index, key, req.router, seconds, message)
        with span("cache.put"):
            await self._cache_put(key.digest, schedule, seconds)
        return RouteResult(
            index=index,
            key=key,
            router=req.router,
            schedule=schedule,
            seconds=seconds,
            source="computed",
            backend=backend,
        )

    @staticmethod
    def _cache_blocks(cache: Any) -> bool:
        """Whether cache operations may block (disk tier or remote shards).

        A cluster cache advertises network I/O via its ``remote``
        property (true exactly while the current topology has peers);
        a disk-backed cache may read/parse files. Either way the
        operation belongs on a worker thread, not the event loop.
        """
        return (
            getattr(cache, "disk_dir", None) is not None
            or bool(getattr(cache, "remote", False))
        )

    async def _cache_get(self, digest: str) -> Schedule | None:
        """Probe the schedule cache without stalling the event loop.

        A memory-only cache answers synchronously (an OrderedDict probe
        under a lock — cheaper than a thread hop); a cache with a disk
        tier or remote cluster shards may do I/O on a miss, so it runs
        on a worker thread.
        """
        cache = self.service.cache
        if not self._cache_blocks(cache):
            return cache.get(digest)
        loop = asyncio.get_running_loop()
        # run_in_executor does not propagate contextvars; carry the
        # trace context across the thread hop so spans opened inside the
        # cluster cache (remote probes, read repair) join this request's
        # trace.
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(None, lambda: ctx.run(cache.get, digest))

    async def _cache_put(
        self, digest: str, schedule: Schedule, cost: float
    ) -> None:
        """Store a schedule; disk/remote writes go to a worker thread."""
        cache = self.service.cache
        if not self._cache_blocks(cache):
            cache.put(digest, schedule, cost=cost)
            return
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        await loop.run_in_executor(
            None,
            lambda: ctx.run(
                functools.partial(cache.put, digest, schedule, cost=cost)
            ),
        )

    def _route_salvager(self, req: RouteRequest, key: RequestKey) -> Any:
        """A done-callback caching the result of a timed-out route job.

        Runs on an executor thread after the abandoned job finishes —
        the caches and telemetry are thread-safe, so the work a client
        gave up on still warms the cache for the next one.
        """

        def _salvage(future: Any) -> None:
            try:
                _digest, status, body, seconds, _stages, _backend = future.result()
                if status != "ok":
                    return
                schedule = _decoded_worker_schedule(body, req.graph.n_vertices)
                if self.service.executor.verify:
                    schedule.verify(req.graph, req.perm)
                self.service.cache.put(key.digest, schedule, cost=seconds)
                self.telemetry.incr("aio_salvaged")
            except Exception:  # noqa: BLE001 - salvage is best-effort
                pass

        return _salvage

    # ------------------------------------------------------------------
    # transpilation
    # ------------------------------------------------------------------
    async def transpile_batch_async(
        self,
        requests: Sequence[TranspileRequest],
        include_qasm: bool = False,
        *,
        timeout: float | None = None,
    ) -> list[TranspileOutcome]:
        """Transpile circuits concurrently; semantics mirror the sync path.

        Outcomes are index-aligned, duplicates computed once, cache
        consulted, failures isolated; ``timeout`` applies per request.
        """
        t_batch = time.perf_counter()
        digests = [r.digest(include_qasm_out=include_qasm) for r in requests]
        first_of: dict[str, int] = {}
        tasks: dict[int, asyncio.Task[TranspileOutcome]] = {}
        for i, (req, digest) in enumerate(zip(requests, digests)):
            if digest not in first_of:
                first_of[digest] = i
                tasks[i] = asyncio.ensure_future(
                    self._transpile_one(req, digest, i, include_qasm, timeout)
                )
        try:
            unique = await asyncio.gather(*tasks.values())
        except BaseException:
            for task in tasks.values():
                task.cancel()
            raise
        by_index = {out.index: out for out in unique}
        outcomes: list[TranspileOutcome] = []
        for i, digest in enumerate(digests):
            orig = by_index[first_of[digest]]
            if orig.index == i:
                outcomes.append(orig)
                continue
            outcomes.append(
                _as_dedup_transpile(orig, i, digest, requests[i].router)
            )
        self.telemetry.incr("aio_transpile_batches")
        self.telemetry.observe("aio_transpile_batch", time.perf_counter() - t_batch)
        return outcomes

    async def _transpile_one(
        self,
        req: TranspileRequest,
        digest: str,
        index: int,
        include_qasm: bool,
        timeout: float | None,
    ) -> TranspileOutcome:
        if timeout is None:
            timeout = self.default_timeout
        async with self._slot(estimate_cost(req.graph.n_vertices)):
            with span("cache.get") as csp:
                cached = self.service.transpile_cache.get(digest)
                csp.set("hit", cached is not None)
            if cached is not None:
                return TranspileOutcome(
                    index=index,
                    digest=digest,
                    router=req.router,
                    metrics=cached["metrics"],
                    physical_qasm=cached["physical_qasm"],
                    seconds=0.0,
                    source="cache",
                )
            payload = (
                digest,
                req.qasm,
                graph_spec(req.graph),
                req.router,
                req.mapping,
                req.seed,
                req.completion,
                dict(req.options),
                include_qasm,
            )
            t0 = time.perf_counter()
            try:
                with span("compute", router=req.router) as csp:
                    raw = await self._await_job(
                        _transpile_in_worker,
                        payload,
                        timeout,
                        salvage=self._transpile_salvager(digest),
                    )
                    _digest, status, body, seconds, stages = raw
                    csp.set("status", status)
                    if status == "ok":
                        record_stage_spans(stages)
                        record_stage_telemetry(
                            self.telemetry, req.router, None, stages
                        )
            except asyncio.TimeoutError:
                self.telemetry.incr("aio_timeouts")
                elapsed = time.perf_counter() - t0
                message = f"TimeoutError: request exceeded {timeout}s"
                return _transpile_error(index, digest, req.router, elapsed, message)
            except (asyncio.CancelledError, ServiceClosedError):
                raise
            except Exception as exc:  # noqa: BLE001 - pool died twice; isolate
                elapsed = time.perf_counter() - t0
                message = f"{type(exc).__name__}: {exc}"
                return _transpile_error(index, digest, req.router, elapsed, message)
            if status != "ok":
                return _transpile_error(index, digest, req.router, seconds, str(body))
            self.service.transpile_cache.put(digest, body)
            return TranspileOutcome(
                index=index,
                digest=digest,
                router=req.router,
                metrics=body["metrics"],
                physical_qasm=body["physical_qasm"],
                seconds=seconds,
                source="computed",
            )

    def _transpile_salvager(self, digest: str) -> Any:
        """A done-callback caching the result of a timed-out transpile."""

        def _salvage(future: Any) -> None:
            try:
                _digest, status, body, seconds, _stages = future.result()
                if status != "ok":
                    return
                self.service.transpile_cache.put(digest, body)
                self.telemetry.incr("aio_salvaged")
            except Exception:  # noqa: BLE001 - salvage is best-effort
                pass

        return _salvage

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The wrapped service's stats plus the async-front-end config.

        Includes a ``tenancy`` section — registry mode, per-tenant
        outcome counters, and the fair scheduler's occupancy — so
        ``/stats`` shows who is being admitted, throttled and shed.
        """
        doc = self.service.stats()
        doc["aio"] = {
            "max_concurrency": self.max_concurrency,
            "default_timeout": self.default_timeout,
            "max_queue_depth": self.scheduler.max_queue_depth,
        }
        doc["tenancy"] = {
            **self.tenants.stats(),
            "scheduler": self.scheduler.stats(),
        }
        return doc
