"""HTTP/1.1 JSON facade over the routing service (stdlib asyncio only).

The NDJSON daemon caps the service at one machine: UNIX sockets have no
remote clients. :class:`HttpRoutingServer` exposes the same request
documents over HTTP so any host (or load balancer) can reach a warm
routing pool, mirroring how production compiler stacks package routing
passes as services.

This module is *pure framing*: it parses HTTP/1.1 messages and writes
responses. The endpoint table, op dispatch, tenancy, admission control
and error mapping all live in the shared
:class:`~repro.service.pipeline.RequestPipeline`
(:meth:`~repro.service.pipeline.RequestPipeline.process_http`), which
the NDJSON daemon drives too — one request lifecycle, two framings.

Endpoints
---------
``POST /v1/route``
    One request document (same shape as a ``repro batch`` line, see
    :func:`~repro.service.handler.request_from_doc`) -> one result
    document.
``POST /v1/route_batch``
    ``{"requests": [...], "include_schedule": false, "timeout": null}``
    -> ``{"ok": true, "count": N, "results": [...]}``; per-entry errors
    are isolated into their slots.
``POST /v1/transpile_batch``
    ``{"requests": [...], "include_qasm": false}`` over transpile
    documents (``qasm`` + ``rows``/``cols`` + options).
``POST /v1/cache_get`` / ``POST /v1/cache_put`` / ``POST /v1/cache_stats``
    The remote-shard cache protocol of :mod:`repro.service.cluster`
    (``/v1/cache_stats`` also answers ``GET``). Served from the local
    cache tier only, so a shard answering a peer never re-enters the
    ring. Schedules cross as base64 binary :mod:`repro.routing.codec`
    frames (``schedule_b64``) when the request advertises ``"codec":
    1``, as legacy ``schedule`` JSON documents otherwise; responses
    echo ``codec`` so clients learn the capability (see
    :class:`~repro.service.handler.RequestHandler`).
``GET /v1/topology`` / ``POST /v1/topology``
    Read / change the daemon's epoch-versioned ring membership
    (``POST`` takes the ``topology_update`` document: ``action`` =
    ``join``/``leave``/``replace``, ``node`` or ``members``, optional
    ``epoch`` / ``expected_epoch``). A lost epoch compare-and-set
    answers 409 with code ``stale_epoch``. ``POST
    /v1/topology_get`` / ``/v1/topology_update`` are op-style aliases
    (what :class:`~repro.service.cluster.RemoteShardClient` speaks).
``POST /v1/shutdown``
    Ask the server to drain and exit (the HTTP analogue of the NDJSON
    ``shutdown`` op; SIGTERM does the same).
``GET /v1/traces``
    Finished request traces from the daemon's in-memory ring
    (``?id=<trace-id>&limit=N&min_seconds=S``, all optional — the
    ``trace_get`` op; see :mod:`repro.service.tracing`).
``GET /healthz``
    Liveness plus identity: ``{"ok": true, "status":
    "serving"|"draining", "version": ..., "node_id": ..., "epoch":
    ...}`` (the cluster fields only in cluster mode).
``GET /stats``
    ``{"ok": true, "stats": {...}}`` — the service stats document.
``GET /metrics``
    Prometheus text exposition format (version 0.0.4).

Requests may carry a W3C ``traceparent`` header; work endpoints join
the caller's distributed trace (the header becomes the ``trace`` field
of the dispatched op document) and answer with the ``trace_id``. An
``Authorization: Bearer <key>`` or ``X-API-Key`` header identifies the
calling tenant when tenancy is enforced (401 without one, 429 with a
``Retry-After`` header when admission control refuses).

Protocol behaviour: requests need ``Content-Length`` (chunked bodies
are refused with 411), bodies above ``max_body_bytes`` are refused with
413 and ``Connection: close`` (the body was never read, so the
connection cannot be reused), connections are keep-alive by default
(``Connection: close`` and HTTP/1.0 semantics honoured), and
SIGTERM/SIGINT trigger a graceful drain — stop accepting, answer
everything in flight (bounded by
:data:`~repro.service.daemon.DRAIN_GRACE_SECONDS`), then close the
service. Protocol-level failures use the stable error codes of
:mod:`repro.service.handler` plus ``bad_http``, ``length_required``,
``payload_too_large``, ``not_found`` and ``method_not_allowed``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping

from ..errors import ReproError
from .aio import AsyncRoutingService
from .daemon import (
    DRAIN_GRACE_SECONDS,
    install_signal_handlers,
    poll_with_backoff,
    remove_signal_handlers,
)
from .pipeline import RequestPipeline, framing_error

__all__ = [
    "HttpRoutingServer",
    "MAX_BODY_BYTES",
    "http_request",
    "wait_for_http",
]

#: Default per-request body-size limit (bytes). Generous enough for a
#: batch of explicit perms on large grids, small enough that one client
#: cannot balloon the server's memory.
MAX_BODY_BYTES = 8 * 2**20

#: Maximum accepted size of a request line + headers (bytes).
MAX_HEADER_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_JSON = "application/json"


class _HttpError(Exception):
    """A protocol-level failure mapped straight to a status + error doc."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class HttpRoutingServer:
    """Serve the request pipeline over HTTP/1.1 on a TCP port.

    Parameters
    ----------
    service:
        The :class:`AsyncRoutingService` to expose. Closed on exit via
        :meth:`AsyncRoutingService.aclose` (which leaves borrowed
        services open).
    host, port:
        Listen address. ``port=0`` picks a free port; the bound port is
        published on :attr:`bound_port` once listening.
    max_body_bytes:
        Per-request body-size limit (413 above it).
    on_reload:
        Optional zero-argument callback installed as the SIGHUP
        handler while serving (the CLI wires it to the topology-file
        watcher's ``reload_now``).
    """

    def __init__(
        self,
        service: AsyncRoutingService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = MAX_BODY_BYTES,
        on_reload: Callable[[], None] | None = None,
    ) -> None:
        if max_body_bytes <= 0:
            raise ValueError(f"max_body_bytes must be positive, got {max_body_bytes}")
        self.service = service
        self.pipeline = RequestPipeline(service)
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.on_reload = on_reload
        #: The actually bound port, set once the server is listening
        #: (useful with ``port=0``); ``None`` before start and after stop.
        self.bound_port: int | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._active_connections = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Ask the serve loop to drain and exit (thread-safe)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop.set)

    async def serve(self) -> None:
        """Listen until a shutdown request or signal, then drain and exit.

        Installs SIGTERM/SIGINT handlers when running on the main thread
        (a supervised deployment stops the server with SIGTERM); on
        shutdown the listener closes first, in-flight requests get up to
        :data:`~repro.service.daemon.DRAIN_GRACE_SECONDS` to finish,
        stragglers are force-closed, and the service is closed last.
        """
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._handle_conn, host=self.host, port=self.port, limit=MAX_HEADER_BYTES
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        installed = install_signal_handlers(
            self._loop, self._stop.set, self.on_reload
        )
        try:
            await self._stop.wait()
        finally:
            remove_signal_handlers(self._loop, installed)
            server.close()
            await server.wait_closed()
            await self._drain()
            self.bound_port = None
            await self.service.aclose()

    async def _drain(self) -> None:
        """Wait for in-flight connections, then force-close stragglers."""
        deadline = time.monotonic() + DRAIN_GRACE_SECONDS
        while self._active_connections > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: sequential keep-alive request/response cycles."""
        assert self._stop is not None
        self._active_connections += 1
        self._writers.add(writer)
        self.pipeline.telemetry.incr("http_connections")
        try:
            while not self._stop.is_set():
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Framing is broken or refused; answer and hang up.
                    await self._write_response(
                        writer,
                        exc.status,
                        framing_error(exc.code, exc.message),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break  # EOF between requests, or stop while idle
                method, path, query, headers, body, keep_alive = request
                resp = await self.pipeline.process_http(
                    method,
                    path,
                    query,
                    headers,
                    body,
                    draining=self._stop.is_set(),
                )
                payload = resp.payload
                if (
                    isinstance(payload, dict)
                    and payload.get("op") == "shutdown"
                    and payload.get("ok")
                ):
                    # A granted shutdown: the pipeline has no access to
                    # the serve loop, so the transport flips the stop
                    # event (the framing analogue of SIGTERM).
                    self._stop.set()
                if self._stop.is_set():
                    keep_alive = False  # draining: answer, then close
                await self._write_response(
                    writer,
                    resp.status,
                    payload,
                    resp.content_type,
                    keep_alive,
                    extra_headers=resp.headers,
                )
                if not keep_alive:
                    break
        except (OSError, ValueError, asyncio.IncompleteReadError):
            pass  # client went away mid-message
        finally:
            self._active_connections -= 1
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        """One header line, or ``b""`` when stop fires while idle."""
        assert self._stop is not None
        line_task = asyncio.ensure_future(reader.readline())
        stop_task = asyncio.ensure_future(self._stop.wait())
        try:
            await asyncio.wait(
                {line_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if line_task.done():
                return line_task.result()
            line_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await line_task
            return b""
        finally:
            stop_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await stop_task

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict[str, str], bytes, bool] | None:
        """Parse one request: ``(method, path, query, headers, body, keep_alive)``.

        Header names come back lowercased; ``query`` is the raw query
        string (no leading ``?``, empty when absent). Returns ``None``
        on a clean end of connection; raises :class:`_HttpError` on
        anything refused at the protocol level.
        """
        try:
            raw = await self._read_line(reader)
        except ValueError as exc:  # request line over the stream limit
            raise _HttpError(400, "bad_http", f"request line too long: {exc}") from None
        if not raw:
            return None
        parts = raw.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(
                400, "bad_http", f"malformed request line: {raw[:120]!r}"
            )
        method, target, version = parts[0].upper(), parts[1], parts[2]

        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                hline = await reader.readline()
            except ValueError as exc:
                raise _HttpError(400, "bad_http", f"header too long: {exc}") from None
            if not hline:
                return None  # connection died mid-headers
            header_bytes += len(hline)
            if header_bytes > MAX_HEADER_BYTES:
                raise _HttpError(400, "bad_http", "header section too large")
            text = hline.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()

        keep_alive = version != "HTTP/1.0"
        connection = headers.get("connection", "").lower()
        if "close" in connection:
            keep_alive = False
        elif version == "HTTP/1.0" and "keep-alive" in connection:
            keep_alive = True

        body = b""
        if method in ("POST", "PUT"):
            if "transfer-encoding" in headers:
                raise _HttpError(
                    411,
                    "length_required",
                    "chunked bodies are not supported; send Content-Length",
                )
            length = headers.get("content-length")
            if length is None:
                raise _HttpError(411, "length_required", "Content-Length required")
            try:
                n = int(length)
                if n < 0:
                    raise ValueError(length)
            except ValueError:
                raise _HttpError(
                    400, "bad_http", f"bad Content-Length {length!r}"
                ) from None
            if n > self.max_body_bytes:
                raise _HttpError(
                    413,
                    "payload_too_large",
                    f"body of {n} bytes exceeds the {self.max_body_bytes}-byte limit",
                )
            body = await reader.readexactly(n)
        path, _, query = target.partition("?")
        return method, path, query, headers, body, keep_alive

    # ------------------------------------------------------------------
    # response writing
    # ------------------------------------------------------------------
    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        content_type: str = _JSON,
        keep_alive: bool = True,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload) + "\n").encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = bytes(payload)
        reason = _REASONS.get(status, "Unknown")
        extras = "".join(f"{name}: {value}\r\n" for name, value in extra_headers)
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        self.pipeline.telemetry.incr(f"http_status_{status // 100}xx")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


# ----------------------------------------------------------------------
# client side (stdlib urllib; shared by the CLI, tests and benchmarks)
# ----------------------------------------------------------------------
def http_request(
    url: str,
    doc: Mapping[str, Any] | None = None,
    *,
    method: str | None = None,
    timeout: float = 300.0,
    headers: Mapping[str, str] | None = None,
) -> tuple[int, Any]:
    """One HTTP request to a repro server: ``(status, parsed body)``.

    ``doc`` (when given) is sent as a JSON body with ``POST`` unless
    ``method`` overrides it. ``headers`` adds extra request headers
    (e.g. a ``traceparent`` to join a distributed trace). Non-2xx
    responses are returned, not raised; bodies that fail to parse as
    JSON come back as text.

    Raises
    ------
    ReproError
        When the server cannot be reached at all.
    """
    data = None
    all_headers = {"Accept": _JSON}
    if doc is not None:
        data = json.dumps(dict(doc)).encode("utf-8")
        all_headers["Content-Type"] = _JSON
    if headers:
        all_headers.update(headers)
    req = urllib.request.Request(
        url,
        data=data,
        headers=all_headers,
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            status, raw = resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        status, raw = exc.code, exc.read()
    except (urllib.error.URLError, OSError) as exc:
        raise ReproError(f"cannot reach HTTP server at {url}: {exc}") from exc
    text = raw.decode("utf-8", errors="replace")
    try:
        return status, json.loads(text)
    except ValueError:
        return status, text


def wait_for_http(base_url: str, timeout: float = 10.0) -> None:
    """Block until ``GET {base_url}/healthz`` answers 200.

    Polls with exponential backoff (the shared
    :func:`~repro.service.daemon.poll_with_backoff` loop).

    Raises
    ------
    ReproError
        If the server does not answer before ``timeout`` elapses.
    """
    url = base_url.rstrip("/") + "/healthz"

    def probe() -> bool:
        try:
            status, _body = http_request(url, timeout=1.0)
            return status == 200
        except ReproError:
            return False

    poll_with_backoff(probe, timeout, f"no HTTP server answering at {base_url}")
