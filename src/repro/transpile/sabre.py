"""A SABRE-style lookahead swap router (related-work baseline).

The paper's related work cites Li, Ding, Xie ("Tackling the qubit
mapping problem for NISQ-era quantum devices", ASPLOS'19) whose SABRE
algorithm dominates practical transpilers. Where the routing-via-
matchings approach *batches* movement into permutation-routing phases,
SABRE inserts one swap at a time, greedily chosen to reduce the
distances of the front-layer gates with a decaying lookahead toward
future gates.

This implementation is deliberately compact but faithful to the scoring
structure (front layer + weighted extended set + a decay term that
discourages ping-ponging the same qubit). It plugs into the same
:func:`~repro.transpile.transpiler.transpile`-style entry point and the
same verification machinery, so the two routing philosophies can be
compared end to end (``benchmarks/bench_transpile.py``).
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import TranspileError
from ..profiling import stage
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import CircuitDag
from ..graphs.base import Graph
from ..perm.permutation import Permutation
from .router_pass import RoutingPassResult

__all__ = ["sabre_route_circuit", "SABRE_EXTENDED_SIZE", "SABRE_EXTENDED_WEIGHT"]

#: How many upcoming 2q gates the lookahead window watches.
SABRE_EXTENDED_SIZE = 20
#: Weight of the lookahead term relative to the front layer.
SABRE_EXTENDED_WEIGHT = 0.5
#: Multiplicative decay applied to recently swapped qubits.
_DECAY_STEP = 0.001
_DECAY_RESET = 5


def _front_two_qubit(dag: CircuitDag, executed: set[int]) -> list[int]:
    return [
        i
        for i in dag.front_layer(executed)
        if dag.circuit[i].name != "barrier" and dag.circuit[i].n_qubits == 2
    ]


def _extended_set(
    dag: CircuitDag, executed: set[int], front: list[int], limit: int
) -> list[int]:
    """Successors of the front layer (approximate lookahead window)."""
    out: list[int] = []
    seen = set(front)
    frontier = list(front)
    while frontier and len(out) < limit:
        nxt: list[int] = []
        for i in frontier:
            for j in dag.succs[i]:
                if j in seen or j in executed:
                    continue
                seen.add(j)
                gate = dag.circuit[j]
                if gate.name != "barrier" and gate.n_qubits == 2:
                    out.append(j)
                    if len(out) >= limit:
                        break
                nxt.append(j)
            if len(out) >= limit:
                break
        frontier = nxt
    return out


def sabre_route_circuit(
    circuit: QuantumCircuit,
    graph: Graph,
    initial_mapping: np.ndarray,
    extended_size: int = SABRE_EXTENDED_SIZE,
    extended_weight: float = SABRE_EXTENDED_WEIGHT,
) -> RoutingPassResult:
    """Route ``circuit`` onto ``graph`` with SABRE-style greedy swaps.

    Same contract as :func:`repro.transpile.router_pass.route_circuit`
    (returns a :class:`~repro.transpile.router_pass.RoutingPassResult`
    whose mapping/permutation bookkeeping the standard verifier checks).

    Raises
    ------
    TranspileError
        On arity/size violations or failure to progress.
    """
    if circuit.max_gate_arity() > 2:
        raise TranspileError("SABRE routing requires a 1q/2q circuit")
    n_phys = graph.n_vertices
    if circuit.n_qubits > n_phys:
        raise TranspileError(
            f"circuit needs {circuit.n_qubits} qubits but device has {n_phys}"
        )
    if not graph.is_connected():
        raise TranspileError("coupling graph must be connected")

    dist = graph.distance_matrix()
    pos = np.asarray(initial_mapping, dtype=np.int64).copy()  # logical -> physical
    dag = CircuitDag.from_circuit(circuit)
    executed: set[int] = set()
    phys = QuantumCircuit(n_phys, name=f"{circuit.name}@{graph.name}:sabre")
    total_perm = np.arange(n_phys)
    decay = np.ones(n_phys)
    since_reset = 0
    n_swaps = 0
    t0 = time.perf_counter()

    def drain() -> None:
        progressed = True
        while progressed:
            progressed = False
            for i in dag.front_layer(executed):
                g = circuit[i]
                if g.name == "barrier":
                    phys.append("barrier", tuple(int(pos[q]) for q in g.qubits))
                    executed.add(i)
                    progressed = True
                elif g.n_qubits == 1:
                    phys.append(g.name, (int(pos[g.qubits[0]]),), g.params)
                    executed.add(i)
                    progressed = True
                else:
                    pa, pb = int(pos[g.qubits[0]]), int(pos[g.qubits[1]])
                    if graph.has_edge(pa, pb):
                        phys.append(g.name, (pa, pb), g.params)
                        executed.add(i)
                        progressed = True

    guard = 0
    guard_cap = 10 * max(
        1, circuit.num_two_qubit_gates()
    ) * max(graph.diameter(), 1) + 64
    while True:
        drain()
        front = _front_two_qubit(dag, executed)
        if not front:
            if len(executed) == len(circuit):
                break
            raise TranspileError(  # pragma: no cover - defensive
                "SABRE: no front gates but circuit unfinished"
            )
        guard += 1
        if guard > guard_cap:  # pragma: no cover - defensive
            raise TranspileError("SABRE routing failed to progress")

        with stage("frontier_scoring"):
            extended = _extended_set(dag, executed, front, extended_size)
            # candidate swaps: edges touching any front-gate qubit
            active_phys = set()
            for i in front:
                for q in circuit[i].qubits:
                    active_phys.add(int(pos[q]))
            candidates = [
                (u, v)
                for (u, v) in graph.edges
                if u in active_phys or v in active_phys
            ]

        phys_of = pos  # alias for clarity

        def score(swap: tuple[int, int]) -> float:
            u, v = swap
            # effect of the swap on positions: tokens at u/v exchange
            def d(i: int) -> float:
                qa, qb = circuit[i].qubits
                pa, pb = int(phys_of[qa]), int(phys_of[qb])
                pa = v if pa == u else u if pa == v else pa
                pb = v if pb == u else u if pb == v else pb
                return float(dist[pa, pb])

            front_cost = sum(d(i) for i in front) / len(front)
            ext_cost = (
                sum(d(i) for i in extended) / len(extended) if extended else 0.0
            )
            return max(decay[u], decay[v]) * (
                front_cost + extended_weight * ext_cost
            )

        with stage("frontier_scoring"):
            best = min(candidates, key=lambda s: (score(s), s))
        u, v = best
        phys.swap(int(u), int(v))
        n_swaps += 1
        # update logical placement: any logical on u/v moves across
        on_u = np.flatnonzero(pos == u)
        on_v = np.flatnonzero(pos == v)
        pos[on_u] = v
        pos[on_v] = u
        # track the full-device permutation the inserted swaps realize
        mask_u = total_perm == u
        mask_v = total_perm == v
        total_perm[mask_u] = v
        total_perm[mask_v] = u
        decay[u] += _DECAY_STEP
        decay[v] += _DECAY_STEP
        since_reset += 1
        if since_reset >= _DECAY_RESET:
            decay[:] = 1.0
            since_reset = 0

    result = RoutingPassResult(
        circuit=phys,
        initial_mapping=np.asarray(initial_mapping, dtype=np.int64).copy(),
        final_mapping=pos,
        physical_permutation=Permutation(total_perm),
        n_swaps=n_swaps,
        swap_depth=0,
        routing_invocations=1,
        routing_time=time.perf_counter() - t0,
    )
    return result
