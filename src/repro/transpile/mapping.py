"""Initial mapping strategies (the "mapping" half of mapping+routing).

The paper focuses on the routing phase and assumes the mapping phase is
someone else's job ("we assume this extension has already been determined
by the transpiler"). To run end to end we still need initial placements;
three standard strategies are provided:

``identity``
    Logical qubit ``l`` starts on physical vertex ``l``. The right choice
    for geometrically matched workloads (e.g. lattice Trotter circuits on
    the same grid).
``random``
    Uniformly random placement — the adversarial baseline.
``center``
    Busy logical qubits (by two-qubit-gate participation) go to
    high-centrality physical vertices (small total distance to the rest),
    a cheap degree-of-interaction heuristic.
``annealed``
    Simulated annealing on the weighted interaction cost
    ``sum_{gates (a,b)} d(phys(a), phys(b))`` starting from the center
    heuristic — slower but consistently lower routing pressure.
"""

from __future__ import annotations

import numpy as np

from ..errors import TranspileError
from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import is_two_qubit
from ..graphs.base import Graph

__all__ = [
    "initial_mapping",
    "identity_mapping",
    "random_mapping",
    "center_mapping",
    "annealed_mapping",
    "interaction_cost",
]


def identity_mapping(n_logical: int, graph: Graph) -> np.ndarray:
    """``logical l -> physical l``."""
    if n_logical > graph.n_vertices:
        raise TranspileError(
            f"{n_logical} logical qubits exceed {graph.n_vertices} physical"
        )
    return np.arange(n_logical, dtype=np.int64)


def random_mapping(
    n_logical: int, graph: Graph, seed: int | None = None
) -> np.ndarray:
    """Uniformly random injection of logical into physical qubits."""
    if n_logical > graph.n_vertices:
        raise TranspileError(
            f"{n_logical} logical qubits exceed {graph.n_vertices} physical"
        )
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.n_vertices)[:n_logical].astype(np.int64)


def center_mapping(circuit: QuantumCircuit, graph: Graph) -> np.ndarray:
    """Busiest logical qubits onto the most central physical vertices."""
    n_logical = circuit.n_qubits
    if n_logical > graph.n_vertices:
        raise TranspileError(
            f"{n_logical} logical qubits exceed {graph.n_vertices} physical"
        )
    activity = np.zeros(n_logical, dtype=np.int64)
    for g in circuit:
        if is_two_qubit(g):
            for q in g.qubits:
                activity[q] += 1
    # centrality: negative total distance (higher = more central)
    dist = graph.distance_matrix()
    centrality = -dist.sum(axis=1)
    physical_order = np.argsort(-centrality, kind="stable")
    logical_order = np.argsort(-activity, kind="stable")
    mapping = np.empty(n_logical, dtype=np.int64)
    mapping[logical_order] = physical_order[:n_logical]
    return mapping


def interaction_cost(
    circuit: QuantumCircuit, graph: Graph, mapping: np.ndarray
) -> int:
    """Total coupling distance of every two-qubit gate under ``mapping``.

    The quantity the mapping phase tries to minimize: each unit above
    the gate count is (roughly) a SWAP the router must insert.
    """
    dist = graph.distance_matrix()
    total = 0
    for g in circuit:
        if is_two_qubit(g):
            a, b = g.qubits
            total += int(dist[mapping[a], mapping[b]])
    return total


def annealed_mapping(
    circuit: QuantumCircuit,
    graph: Graph,
    seed: int | None = None,
    iterations: int = 2000,
    t_start: float = 2.0,
    t_end: float = 0.01,
) -> np.ndarray:
    """Simulated-annealing refinement of the interaction cost.

    Starts from :func:`center_mapping`; each move swaps the physical
    homes of two logical qubits (or relocates one onto a free vertex)
    and is accepted by the Metropolis rule under a geometric temperature
    schedule. Deterministic given ``seed``.
    """
    n_logical = circuit.n_qubits
    if n_logical > graph.n_vertices:
        raise TranspileError(
            f"{n_logical} logical qubits exceed {graph.n_vertices} physical"
        )
    rng = np.random.default_rng(seed)
    mapping = center_mapping(circuit, graph).copy()

    # Per-logical-qubit interaction lists for incremental cost deltas.
    weights: dict[tuple[int, int], int] = {}
    for g in circuit:
        if is_two_qubit(g):
            a, b = g.qubits
            key = (min(a, b), max(a, b))
            weights[key] = weights.get(key, 0) + 1
    partners: list[list[tuple[int, int]]] = [[] for _ in range(n_logical)]
    for (a, b), w in weights.items():
        partners[a].append((b, w))
        partners[b].append((a, w))

    dist = graph.distance_matrix()
    free = [v for v in range(graph.n_vertices) if v not in set(mapping.tolist())]

    def local_cost(l: int, phys: int, override: dict[int, int]) -> int:
        total = 0
        for other, w in partners[l]:
            p_other = override.get(other, mapping[other])
            total += w * int(dist[phys, p_other])
        return total

    if t_start <= 0 or t_end <= 0 or iterations < 1:
        raise TranspileError("invalid annealing schedule")
    cool = (t_end / t_start) ** (1.0 / max(iterations - 1, 1))
    temp = t_start
    for _ in range(iterations):
        if free and rng.random() < 0.3:
            # relocate one logical qubit to a free physical vertex
            l = int(rng.integers(n_logical))
            slot = int(rng.integers(len(free)))
            new_phys = free[slot]
            delta = local_cost(l, new_phys, {}) - local_cost(l, int(mapping[l]), {})
            if delta <= 0 or rng.random() < np.exp(-delta / temp):
                free[slot] = int(mapping[l])
                mapping[l] = new_phys
        else:
            a = int(rng.integers(n_logical))
            b = int(rng.integers(n_logical))
            if a != b:
                pa, pb = int(mapping[a]), int(mapping[b])
                before = local_cost(a, pa, {}) + local_cost(b, pb, {a: pa})
                after = local_cost(a, pb, {b: pa}) + local_cost(b, pa, {a: pb})
                delta = after - before
                if delta <= 0 or rng.random() < np.exp(-delta / temp):
                    mapping[a], mapping[b] = pb, pa
        temp *= cool
    return mapping


def initial_mapping(
    strategy,
    circuit: QuantumCircuit,
    graph: Graph,
    seed: int | None = None,
) -> np.ndarray:
    """Resolve a strategy name / explicit array into a mapping array.

    Raises
    ------
    TranspileError
        On unknown strategy names, non-injective arrays, or size issues.
    """
    if isinstance(strategy, str):
        if strategy == "identity":
            return identity_mapping(circuit.n_qubits, graph)
        if strategy == "random":
            return random_mapping(circuit.n_qubits, graph, seed)
        if strategy == "center":
            return center_mapping(circuit, graph)
        if strategy == "annealed":
            return annealed_mapping(circuit, graph, seed=seed)
        raise TranspileError(
            f"unknown mapping strategy {strategy!r}; use 'identity', "
            "'random', 'center', 'annealed' or an explicit array"
        )
    arr = np.asarray(strategy, dtype=np.int64)
    if arr.shape != (circuit.n_qubits,):
        raise TranspileError(
            f"mapping must have one entry per logical qubit "
            f"({circuit.n_qubits}), got shape {arr.shape}"
        )
    if len(set(arr.tolist())) != arr.size:
        raise TranspileError("mapping must be injective")
    if arr.min() < 0 or arr.max() >= graph.n_vertices:
        raise TranspileError("mapping targets out of physical range")
    return arr
