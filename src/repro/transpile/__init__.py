"""Transpilation: initial mapping + routing pass + verification."""

from .mapping import (
    annealed_mapping,
    center_mapping,
    identity_mapping,
    initial_mapping,
    interaction_cost,
    random_mapping,
)
from .router_pass import RoutingPassResult, route_circuit
from .sabre import sabre_route_circuit
from .transpiler import (
    TranspileResult,
    check_hardware_conformance,
    transpile,
    verify_transpilation,
)

__all__ = [
    "initial_mapping",
    "identity_mapping",
    "random_mapping",
    "center_mapping",
    "annealed_mapping",
    "interaction_cost",
    "route_circuit",
    "RoutingPassResult",
    "sabre_route_circuit",
    "transpile",
    "TranspileResult",
    "check_hardware_conformance",
    "verify_transpilation",
]
