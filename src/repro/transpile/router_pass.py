"""The routing pass: make every two-qubit gate act on coupled qubits.

This is the "alternating sequence of mapping and routing problems" frame
of the paper's Section II, instantiated with any
:class:`~repro.routing.base.Router` as the routing primitive — the
drop-in property the paper advertises ("our routing algorithm can be used
in any transpiler that uses the above framework").

Loop structure:

1. Execute everything executable: single-qubit gates always; two-qubit
   gates whose logical qubits currently sit on coupled physical qubits.
2. If unexecuted gates remain, take the DAG front layer (all blocked
   two-qubit gates), choose for a maximal subset of them *meeting edges*
   (a free coupled pair minimizing the combined travel distance), state
   the movement as a partial permutation of physical vertices, complete
   it with the ``"minimal"`` don't-care strategy, and hand the resulting
   full permutation to the router. Its schedule becomes SWAP gates; the
   placement is updated; go to 1.

Every iteration makes at least one blocked gate adjacent, so the pass
terminates after at most one routing call per two-qubit gate (far fewer
in practice: a routing call typically unblocks a whole layer).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import TranspileError
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import CircuitDag
from ..graphs.base import Graph
from ..perm.partial import PartialPermutation, complete_partial
from ..perm.permutation import Permutation
from ..routing.base import Router
from ..routing.schedule import Schedule

__all__ = ["RoutingPassResult", "route_circuit"]


@dataclass
class RoutingPassResult:
    """Outcome of :func:`route_circuit`.

    Attributes
    ----------
    circuit:
        The physical circuit (gates on physical qubit indices, SWAPs
        inserted). Width equals the device size.
    initial_mapping, final_mapping:
        Logical-to-physical placement before and after execution.
    physical_permutation:
        Composition of all routing permutations: the token that started
        on physical wire ``w`` ends on ``physical_permutation(w)``
        (identity when no routing happened). Used by the verifier to
        track don't-care wires.
    n_swaps:
        Total SWAP gates inserted.
    swap_depth:
        Sum of the routed schedules' depths (layers of parallel SWAPs).
    routing_invocations:
        Number of router calls.
    routing_time:
        Wall-clock seconds spent inside the router.
    """

    circuit: QuantumCircuit
    initial_mapping: np.ndarray
    final_mapping: np.ndarray
    physical_permutation: Permutation
    n_swaps: int = 0
    swap_depth: int = 0
    routing_invocations: int = 0
    routing_time: float = 0.0
    schedules: list[Schedule] = field(default_factory=list)


def _choose_meeting_edges(
    blocked: list[tuple[int, int]],
    graph: Graph,
) -> dict[int, int]:
    """Pick vertex-disjoint coupled pairs for blocked gates.

    ``blocked`` holds current physical positions ``(pa, pb)`` per gate.
    Returns a movement map ``{source physical -> target physical}`` for a
    maximal subset of gates (greedy, closest-assignment-first). Positions
    already adjacent are never passed in here.
    """
    dist = graph.distance_matrix()
    used: set[int] = set()
    move: dict[int, int] = {}
    # Sort gates by how far apart they currently are (closest first) so
    # cheap fixes are not blocked by expensive ones grabbing their edges.
    order = sorted(range(len(blocked)), key=lambda i: dist[blocked[i][0], blocked[i][1]])
    for i in order:
        pa, pb = blocked[i]
        if pa in used or pb in used:
            continue
        best: tuple[int, int, int] | None = None
        for (u, v) in graph.edges:
            if u in used or v in used or u in move or v in move:
                continue
            # Orient the edge both ways.
            c1 = dist[pa, u] + dist[pb, v]
            c2 = dist[pa, v] + dist[pb, u]
            cost, tu, tv = (c1, u, v) if c1 <= c2 else (c2, v, u)
            if best is None or cost < best[0]:
                best = (int(cost), tu, tv)
        if best is None:
            continue
        _, tu, tv = best
        # A source that is also someone's chosen target is fine — the
        # permutation completion handles it — but targets must be unique
        # and each source moves once.
        move[pa] = tu
        move[pb] = tv
        used.update((pa, pb, tu, tv))
    return move


def route_circuit(
    circuit: QuantumCircuit,
    graph: Graph,
    router: Router,
    initial_mapping: np.ndarray,
    completion: str = "minimal",
) -> RoutingPassResult:
    """Insert SWAPs so every 2-qubit gate acts on coupled qubits.

    Parameters
    ----------
    circuit:
        Logical circuit (1- and 2-qubit gates, barriers, measures).
    graph:
        Coupling graph (connected).
    router:
        Any :class:`~repro.routing.base.Router`.
    initial_mapping:
        Array: logical qubit -> starting physical vertex (injective).
    completion:
        Don't-care completion strategy for partial permutations, or
        ``"partial-ats"`` to skip completion entirely and route each
        movement map with don't-care-aware partial token swapping
        (:func:`repro.token_swap.partial_ats.partial_token_swapping`) —
        typically fewer SWAPs, uncontrolled don't-care placement.

    Raises
    ------
    TranspileError
        On gates of arity > 2, a disconnected graph, or sizing errors.
    """
    if circuit.max_gate_arity() > 2:
        raise TranspileError(
            "routing requires a 1q/2q-gate circuit; decompose "
            f"{circuit.max_gate_arity()}-qubit gates first"
        )
    n_phys = graph.n_vertices
    if circuit.n_qubits > n_phys:
        raise TranspileError(
            f"circuit needs {circuit.n_qubits} qubits but device has {n_phys}"
        )
    if not graph.is_connected():
        raise TranspileError("coupling graph must be connected")

    pos = np.asarray(initial_mapping, dtype=np.int64).copy()
    dag = CircuitDag.from_circuit(circuit)
    executed: set[int] = set()
    phys = QuantumCircuit(n_phys, name=f"{circuit.name}@{graph.name}")
    result = RoutingPassResult(
        circuit=phys,
        initial_mapping=pos.copy(),
        final_mapping=pos,  # updated at the end
        physical_permutation=Permutation.identity(n_phys),
    )
    total_perm = np.arange(n_phys)

    n_gates = len(circuit)
    guard = 0
    while len(executed) < n_gates:
        guard += 1
        if guard > 4 * n_gates + 16:  # pragma: no cover - defensive
            raise TranspileError("routing pass failed to make progress")

        # 1. Drain everything executable.
        progressed = True
        while progressed:
            progressed = False
            for i in dag.front_layer(executed):
                g = circuit[i]
                if g.name == "barrier":
                    phys.append("barrier", tuple(int(pos[q]) for q in g.qubits))
                    executed.add(i)
                    progressed = True
                elif g.n_qubits == 1:
                    phys.append(g.name, (int(pos[g.qubits[0]]),), g.params)
                    executed.add(i)
                    progressed = True
                else:
                    pa, pb = int(pos[g.qubits[0]]), int(pos[g.qubits[1]])
                    if graph.has_edge(pa, pb):
                        phys.append(g.name, (pa, pb), g.params)
                        executed.add(i)
                        progressed = True
        if len(executed) == n_gates:
            break

        # 2. Route the blocked front layer.
        front = dag.front_layer(executed)
        blocked = [
            (int(pos[circuit[i].qubits[0]]), int(pos[circuit[i].qubits[1]]))
            for i in front
        ]
        move = _choose_meeting_edges(blocked, graph)
        if not move:  # pragma: no cover - defensive
            raise TranspileError("no meeting edge found for blocked gates")
        partial = PartialPermutation(n_phys, move)
        t0 = time.perf_counter()
        if completion == "partial-ats":
            from ..token_swap.partial_ats import partial_token_swapping

            swaps, final = partial_token_swapping(graph, partial)
            sched = Schedule.from_serial_swaps(n_phys, swaps).compact()
            perm = Permutation(final)
        else:
            perm = complete_partial(partial, graph, strategy=completion)
            sched = router.route(graph, perm)
        result.routing_time += time.perf_counter() - t0
        result.routing_invocations += 1
        result.schedules.append(sched)
        result.n_swaps += sched.size
        result.swap_depth += sched.depth
        for layer in sched:
            for u, v in layer:
                phys.swap(int(u), int(v))

        # Update placements: a token at physical w moves to perm(w).
        pos = perm.targets[pos]
        total_perm = perm.targets[total_perm]

    result.final_mapping = pos
    result.physical_permutation = Permutation(total_perm)
    return result
