"""End-to-end transpilation: mapping + routing + metrics + verification.

Combines an initial-mapping strategy with the routing pass and reports
the metrics the evaluation cares about (added SWAPs, depth inflation,
router time). :func:`verify_transpilation` closes the loop functionally:
for small instances it checks that the physical circuit equals the
logical unitary conjugated by the tracked wire relocations — a complete
semantic check of the whole pipeline (mapping bookkeeping, permutation
completion, router schedules, SWAP emission).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TranspileError
from ..circuit.circuit import QuantumCircuit
from ..graphs.base import Graph
from ..perm.permutation import Permutation
from ..routing.base import Router, make_router
from .mapping import initial_mapping as resolve_mapping
from .router_pass import RoutingPassResult, route_circuit

__all__ = ["TranspileResult", "transpile", "verify_transpilation"]


@dataclass
class TranspileResult:
    """Everything about one transpilation run.

    Attributes
    ----------
    logical, physical:
        Input and output circuits.
    initial_mapping, final_mapping:
        Logical-to-physical placement arrays (before / after).
    physical_permutation:
        Full-device permutation realized by all inserted SWAPs combined.
    router_name:
        The routing algorithm used.
    n_swaps, routing_invocations, routing_time, swap_depth:
        Routing statistics (see :class:`~repro.transpile.router_pass.RoutingPassResult`).
    """

    logical: QuantumCircuit
    physical: QuantumCircuit
    initial_mapping: np.ndarray
    final_mapping: np.ndarray
    physical_permutation: Permutation
    router_name: str
    n_swaps: int
    routing_invocations: int
    routing_time: float
    swap_depth: int

    @property
    def depth_overhead(self) -> float:
        """Physical depth divided by logical depth (>= 1 in practice)."""
        ld = self.logical.depth()
        return self.physical.depth() / ld if ld else float("inf")

    @property
    def size_overhead(self) -> float:
        """Physical gate count divided by logical gate count."""
        ls = self.logical.size()
        return self.physical.size() / ls if ls else float("inf")

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        return (
            f"{self.logical.name}: {self.logical.n_qubits} qubits, "
            f"depth {self.logical.depth()} -> {self.physical.depth()} "
            f"(x{self.depth_overhead:.2f}), size {self.logical.size()} -> "
            f"{self.physical.size()} (+{self.n_swaps} swaps), router "
            f"{self.router_name} called {self.routing_invocations}x "
            f"({self.routing_time * 1e3:.1f} ms)"
        )


def transpile(
    circuit: QuantumCircuit,
    graph: Graph,
    router: Router | str = "local",
    mapping="identity",
    seed: int | None = None,
    completion: str = "minimal",
    **router_kwargs,
) -> TranspileResult:
    """Map and route ``circuit`` onto ``graph``.

    Parameters
    ----------
    circuit:
        Logical circuit (1q/2q gates).
    graph:
        Coupling graph.
    router:
        A :class:`~repro.routing.base.Router` instance or registry name
        (``"local"``, ``"naive"``, ``"ats"``, ``"hybrid"``, ...), or the
        special name ``"sabre"`` selecting the gate-at-a-time lookahead
        pass (:mod:`repro.transpile.sabre`) instead of permutation
        routing.
    mapping:
        ``"identity"`` / ``"random"`` / ``"center"`` or an explicit array.
    seed:
        Seed for randomized mapping strategies.
    completion:
        Don't-care completion strategy for routing permutations.
    router_kwargs:
        Forwarded to the router factory when ``router`` is a name.

    Raises
    ------
    TranspileError
        See :func:`~repro.transpile.router_pass.route_circuit`.
    """
    tau0 = resolve_mapping(mapping, circuit, graph, seed=seed)
    if isinstance(router, str) and router == "sabre":
        from .sabre import sabre_route_circuit

        res: RoutingPassResult = sabre_route_circuit(circuit, graph, tau0)
        router_name = "sabre"
    else:
        router_obj = (
            make_router(router, **router_kwargs)
            if isinstance(router, str)
            else router
        )
        res = route_circuit(circuit, graph, router_obj, tau0, completion=completion)
        router_name = router_obj.name
    return TranspileResult(
        logical=circuit,
        physical=res.circuit,
        initial_mapping=res.initial_mapping,
        final_mapping=res.final_mapping,
        physical_permutation=res.physical_permutation,
        router_name=router_name,
        n_swaps=res.n_swaps,
        routing_invocations=res.routing_invocations,
        routing_time=res.routing_time,
        swap_depth=res.swap_depth,
    )


def check_hardware_conformance(result: TranspileResult, graph: Graph) -> None:
    """Raise unless every physical 2q gate acts on a coupled pair."""
    for g in result.physical:
        if g.name != "barrier" and g.n_qubits == 2:
            u, v = g.qubits
            if not graph.has_edge(u, v):
                raise TranspileError(
                    f"gate {g} acts on uncoupled physical pair ({u}, {v})"
                )


def verify_transpilation(result: TranspileResult, graph: Graph) -> None:
    """Full semantic verification (small circuits only).

    Checks, in order:

    1. hardware conformance (every 2q gate on a coupled pair);
    2. mapping consistency: ``final = physical_permutation ∘ initial``;
    3. unitary equivalence: with ``P_in`` placing logical wires at their
       initial physical homes (don't-care wires filling the rest in
       index order) and ``P_out`` the same placement pushed through the
       routing permutation,
       ``U_phys = P_out (U_log ⊗ I) P_in^{-1}`` up to global phase.

    Raises
    ------
    TranspileError
        On any violation (or if the instance is too large to simulate).
    """
    from ..errors import SimulationError
    from ..sim.unitary import (
        allclose_up_to_global_phase,
        circuit_unitary,
        wire_permutation_unitary,
    )

    check_hardware_conformance(result, graph)

    expected_final = result.physical_permutation.targets[result.initial_mapping]
    if not np.array_equal(expected_final, result.final_mapping):
        raise TranspileError(
            "final mapping disagrees with the composed routing permutation"
        )

    n_log = result.logical.n_qubits
    n_phys = result.physical.n_qubits
    if n_phys > 12:
        raise TranspileError(
            f"unitary verification infeasible for {n_phys} physical qubits"
        )

    # Wire placement: logical l -> tau0[l]; don't-care extras fill the
    # remaining physical wires in index order.
    tau0 = result.initial_mapping
    extras = [v for v in range(n_phys) if v not in set(tau0.tolist())]
    wire_in = np.concatenate([tau0, np.asarray(extras, dtype=np.int64)])
    wire_out = result.physical_permutation.targets[wire_in]

    # Pad the logical circuit to the physical width (identity on extras).
    padded = QuantumCircuit(n_phys, name=result.logical.name)
    for g in result.logical:
        padded.append(g.name, g.qubits, g.params)

    try:
        u_log = circuit_unitary(padded)
        u_phys = circuit_unitary(result.physical)
    except SimulationError as exc:  # pragma: no cover - guarded above
        raise TranspileError(str(exc)) from exc

    p_in = wire_permutation_unitary(wire_in)
    p_out = wire_permutation_unitary(wire_out)
    expected = p_out @ u_log @ p_in.conj().T
    if not allclose_up_to_global_phase(expected, u_phys, atol=1e-7):
        raise TranspileError(
            "physical circuit is not equivalent to the logical circuit "
            "under the tracked wire relocations"
        )
