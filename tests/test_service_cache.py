"""Tests for the tiered LRU schedule cache (repro.service.cache)."""

from __future__ import annotations

import threading

import pytest

from repro.graphs import GridGraph
from repro.perm import random_permutation
from repro.routing import LocalGridRouter
from repro.service import LRUCache, ScheduleCache


def _schedule(seed: int = 0, size: int = 3):
    grid = GridGraph(size, size)
    return LocalGridRouter().route(grid, random_permutation(grid, seed=seed))


class TestLRUCache:
    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_put_and_stats(self):
        c = LRUCache(4)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.stats.hits == 1 and c.stats.misses == 1 and c.stats.puts == 1
        assert c.stats.lookups == 2 and c.stats.hit_rate == 0.5
        assert "a" in c and len(c) == 1

    def test_lru_eviction_order(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # refresh a; b is now LRU
        c.put("c", 3)
        assert "b" not in c
        assert "a" in c and "c" in c
        assert c.stats.evictions == 1

    def test_put_refreshes_existing(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)  # refresh, not insert: b must be evicted next
        c.put("c", 3)
        assert c.get("a") == 10 and "b" not in c

    def test_clear_keeps_stats(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0 and c.stats.hits == 1

    def test_as_dict_shape(self):
        d = LRUCache(2).stats.as_dict()
        assert {"hits", "misses", "evictions", "lookups", "hit_rate"} <= set(d)

    def test_thread_smoke(self):
        c = LRUCache(64)

        def worker(tag: int) -> None:
            for i in range(200):
                c.put(f"{tag}-{i % 32}", i)
                c.get(f"{tag}-{(i + 7) % 32}")

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(c) <= 64
        assert c.stats.lookups == 4 * 200


class TestScheduleCacheDisk:
    def test_memory_only_by_default(self):
        c = ScheduleCache(maxsize=4)
        c.put("k", _schedule())
        assert c.stats.disk_writes == 0

    def test_persists_across_instances(self, tmp_path):
        sched = _schedule(seed=3)
        c1 = ScheduleCache(maxsize=4, disk_dir=tmp_path)
        c1.put("k1", sched)
        assert c1.stats.disk_writes == 1

        c2 = ScheduleCache(maxsize=4, disk_dir=tmp_path)
        got = c2.get("k1")
        assert got == sched
        assert c2.stats.disk_hits == 1 and c2.stats.hits == 1
        # Promoted to memory: second get does not touch disk again.
        assert c2.get("k1") == sched
        assert c2.stats.disk_hits == 1

    def test_survives_memory_eviction(self, tmp_path):
        c = ScheduleCache(maxsize=1, disk_dir=tmp_path)
        s0, s1 = _schedule(0), _schedule(1)
        c.put("k0", s0)
        c.put("k1", s1)  # evicts k0 from memory; disk copy remains
        assert c.stats.evictions == 1
        assert c.get("k0") == s0
        assert c.stats.disk_hits == 1

    def test_corrupt_entry_is_a_miss_and_deleted(self, tmp_path):
        c = ScheduleCache(maxsize=4, disk_dir=tmp_path)
        bad = tmp_path / "kx.json"
        bad.write_text("{not json", encoding="utf-8")
        assert c.get("kx") is None
        assert c.stats.disk_errors == 1
        assert not bad.exists()

    def test_non_utf8_entry_is_a_miss_and_deleted(self, tmp_path):
        c = ScheduleCache(maxsize=4, disk_dir=tmp_path)
        bad = tmp_path / "kb.json"
        bad.write_bytes(b"\xff\xfe binary garbage")
        assert c.get("kb") is None
        assert c.stats.disk_errors == 1
        assert not bad.exists()

    def test_unwritable_dir_counts_error_but_serves_memory(self, tmp_path):
        blocked = tmp_path / "file"
        blocked.write_text("occupied", encoding="utf-8")
        # disk_dir points *through* a regular file -> mkdir fails.
        c = ScheduleCache(maxsize=4, disk_dir=blocked / "sub")
        sched = _schedule()
        c.put("k", sched)
        assert c.stats.disk_errors == 1
        assert c.get("k") == sched


class TestDiskEvictionRace:
    def test_concurrent_corrupt_eviction_tolerated_and_counted_once(
        self, tmp_path, monkeypatch
    ):
        """Two threads racing to drop the same corrupt disk entry.

        Both must survive (the loser's unlink sees the file already
        gone) and the eviction must be counted exactly once. A barrier
        inside the parse step guarantees both threads read the file
        before either unlinks it, which is the racing interleaving.
        """
        import repro.service.cache as cache_mod

        c = ScheduleCache(maxsize=4, disk_dir=tmp_path)
        (tmp_path / "kr.json").write_text("{not json", encoding="utf-8")

        barrier = threading.Barrier(2, timeout=30)
        real_parse = cache_mod.schedule_from_json

        def synchronized_parse(text):
            barrier.wait()
            return real_parse(text)

        monkeypatch.setattr(cache_mod, "schedule_from_json", synchronized_parse)

        results: list = []
        errors: list = []

        def load() -> None:
            try:
                results.append(c.get("kr"))
            except Exception as exc:  # noqa: BLE001 - the bug under test
                errors.append(exc)

        threads = [threading.Thread(target=load) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()

        assert errors == []  # the unlink loser must not crash
        assert results == [None, None]  # both observe a miss
        assert c.stats.disk_errors == 1  # the eviction is counted once
        assert c.stats.misses == 2
        assert not (tmp_path / "kr.json").exists()
