"""Tests for the simulated-annealing initial mapper."""

from __future__ import annotations

import pytest

from repro.circuit import QuantumCircuit, ghz, qft, random_circuit
from repro.errors import TranspileError
from repro.graphs import GridGraph
from repro.transpile import (
    annealed_mapping,
    center_mapping,
    initial_mapping,
    interaction_cost,
    transpile,
    verify_transpilation,
)


class TestInteractionCost:
    def test_adjacent_gates_cost_one(self):
        g = GridGraph(2, 2)
        qc = QuantumCircuit(4).cx(0, 1)
        import numpy as np

        assert interaction_cost(qc, g, np.arange(4)) == 1

    def test_counts_multiplicity(self):
        g = GridGraph(2, 2)
        qc = QuantumCircuit(4).cx(0, 3).cx(0, 3)
        import numpy as np

        assert interaction_cost(qc, g, np.arange(4)) == 4  # distance 2, twice


class TestAnnealedMapping:
    def test_injective_and_in_range(self):
        g = GridGraph(3, 3)
        qc = random_circuit(7, 8, seed=1)
        m = annealed_mapping(qc, g, seed=0)
        assert len(set(m.tolist())) == 7
        assert m.min() >= 0 and m.max() < 9

    def test_deterministic_given_seed(self):
        g = GridGraph(3, 3)
        qc = random_circuit(9, 6, seed=2)
        a = annealed_mapping(qc, g, seed=5)
        b = annealed_mapping(qc, g, seed=5)
        assert (a == b).all()

    def test_never_worse_than_center_on_average(self):
        g = GridGraph(4, 4)
        wins = ties = 0
        for seed in range(4):
            qc = random_circuit(16, 10, seed=seed)
            base = interaction_cost(qc, g, center_mapping(qc, g))
            ann = interaction_cost(qc, g, annealed_mapping(qc, g, seed=seed))
            if ann < base:
                wins += 1
            elif ann == base:
                ties += 1
        assert wins + ties >= 3  # annealing rarely regresses

    def test_linear_chain_maps_to_low_cost(self):
        """GHZ interactions form a path: annealing should find a
        placement whose cost is close to the gate count."""
        g = GridGraph(4, 4)
        qc = ghz(16)
        m = annealed_mapping(qc, g, seed=3, iterations=4000)
        cost = interaction_cost(qc, g, m)
        assert cost <= 2 * qc.num_two_qubit_gates()

    def test_rejects_oversized(self):
        with pytest.raises(TranspileError):
            annealed_mapping(ghz(10), GridGraph(3, 3))

    def test_rejects_bad_schedule(self):
        with pytest.raises(TranspileError):
            annealed_mapping(ghz(4), GridGraph(2, 2), t_start=-1.0)


class TestIntegration:
    def test_strategy_resolution(self):
        g = GridGraph(2, 3)
        qc = qft(6)
        m = initial_mapping("annealed", qc, g, seed=1)
        assert len(set(m.tolist())) == 6

    def test_transpile_with_annealed_mapping_verifies(self):
        g = GridGraph(2, 3)
        res = transpile(qft(6), g, router="local", mapping="annealed", seed=2)
        verify_transpilation(res, g)

    def test_annealed_reduces_swaps_vs_random(self):
        g = GridGraph(4, 4)
        qc = random_circuit(16, 8, seed=7)
        swaps_random = transpile(qc, g, router="local", mapping="random", seed=1).n_swaps
        swaps_annealed = transpile(qc, g, router="local", mapping="annealed", seed=1).n_swaps
        assert swaps_annealed <= swaps_random + 5
